//! Fig. 5: level-vs-full CSS-tree ratios as a function of `m`.
//!
//! §4.2 derives the comparison-count ratio of a level CSS-tree to a full
//! CSS-tree as
//!
//! ```text
//! (m + 1) · log_m(m + 1) / (m + 3)
//! ```
//!
//! (always < 1: level trees do fewer comparisons), while the cache-access
//! (and node-traversal) ratio is `log_{m}`-vs-`log_{m+1}` levels:
//!
//! ```text
//! log(m + 1) / log(m)
//! ```
//!
//! (always > 1: level trees are deeper). Fig. 5 plots both for
//! `m ∈ [10, 60]`; whether level trees win overall depends on the relative
//! cost of a comparison versus a cache access (§4.2, confirmed ±8 % in
//! §6.3).

/// One point of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPoint {
    /// Node slots `m`.
    pub m: usize,
    /// Level/full total-comparison ratio (< 1).
    pub comparison_ratio: f64,
    /// Level/full cache-access ratio (> 1).
    pub cache_access_ratio: f64,
}

/// `(m+1)·log_m(m+1) / (m+3)` — level-to-full comparison ratio.
pub fn comparison_ratio(m: usize) -> f64 {
    assert!(m >= 2, "ratio defined for m >= 2");
    let mf = m as f64;
    (mf + 1.0) * ((mf + 1.0).ln() / mf.ln()) / (mf + 3.0)
}

/// `log(m+1)/log(m)` — level-to-full cache-access (levels) ratio.
pub fn cache_access_ratio(m: usize) -> f64 {
    assert!(m >= 2, "ratio defined for m >= 2");
    let mf = m as f64;
    (mf + 1.0).ln() / mf.ln()
}

/// The Fig. 5 series for `m` in `[lo, hi]`.
pub fn figure5_series(lo: usize, hi: usize) -> Vec<RatioPoint> {
    (lo..=hi)
        .map(|m| RatioPoint {
            m,
            comparison_ratio: comparison_ratio(m),
            cache_access_ratio: cache_access_ratio(m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_ratio_is_below_one() {
        // §4.2: "a level CSS-tree always uses fewer comparisons than a
        // full CSS-tree".
        for m in 2..=200 {
            assert!(comparison_ratio(m) < 1.0, "m={m}: {}", comparison_ratio(m));
        }
    }

    #[test]
    fn cache_access_ratio_is_above_one_and_shrinks() {
        for m in 2..=200 {
            assert!(cache_access_ratio(m) > 1.0, "m={m}");
        }
        // Both ratios approach 1 as m grows (Fig. 5's converging curves).
        assert!(cache_access_ratio(10) > cache_access_ratio(60));
        assert!(cache_access_ratio(200) < 1.01);
        assert!(comparison_ratio(200) > 0.98);
    }

    #[test]
    fn figure5_range_values() {
        // Spot values in the plotted range: at m = 16,
        // comparisons: 17·log16(17)/19 ≈ 0.914; accesses: ln17/ln16 ≈ 1.022.
        let r = figure5_series(10, 60);
        assert_eq!(r.len(), 51);
        let at16 = r.iter().find(|p| p.m == 16).unwrap();
        assert!(
            (at16.comparison_ratio - 0.9136).abs() < 0.01,
            "{}",
            at16.comparison_ratio
        );
        assert!(
            (at16.cache_access_ratio - 1.0219).abs() < 0.005,
            "{}",
            at16.cache_access_ratio
        );
    }

    #[test]
    fn ratios_within_figure5_axis_bounds() {
        // Fig. 5's y-axis spans 0.8..1.2 over m in 10..60.
        for p in figure5_series(10, 60) {
            assert!((0.8..=1.2).contains(&p.comparison_ratio), "m={}", p.m);
            assert!((0.8..=1.2).contains(&p.cache_access_ratio), "m={}", p.m);
        }
    }
}
