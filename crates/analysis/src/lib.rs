//! Analytical time and space models from §5 of the paper.
//!
//! These are the closed-form models behind Figs. 5–8 and the basis for the
//! model-vs-measurement validation tests: the cache simulator's per-lookup
//! miss counts must agree with [`time_model`]'s predictions, and each index
//! structure's measured `space_bytes` must agree with [`space_model`].
//!
//! * [`params`] — Table 1's parameters and typical values,
//! * [`time_model`] — Fig. 6: branching factor, number of levels,
//!   comparisons, moving cost and cache misses per method,
//! * [`space_model`] — Fig. 7's formulas (indirect & direct) and Fig. 8's
//!   space-vs-n sweeps,
//! * [`csstree_ratios`] — Fig. 5: comparison and cache-access ratios of
//!   level vs full CSS-trees as a function of `m`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod csstree_ratios;
pub mod params;
pub mod space_model;
pub mod time_model;

pub use csstree_ratios::{cache_access_ratio, comparison_ratio, RatioPoint};
pub use params::Params;
pub use space_model::{space_direct, space_indirect, Method};
pub use time_model::{CostBreakdown, TimeEstimate};
