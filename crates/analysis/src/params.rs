//! Table 1: parameters and their typical values.

/// The paper's model parameters (Table 1).
///
/// | symbol | meaning | typical |
/// |---|---|---|
/// | `R` | record-identifier bytes | 4 |
/// | `K` | key bytes | 4 |
/// | `P` | child-pointer bytes | 4 |
/// | `n` | records indexed | 10⁷ |
/// | `h` | hashing fudge factor | 1.2 |
/// | `c` | cache-line bytes | 64 |
/// | `s` | node size in cache lines | 1 |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// RID size in bytes (`R`).
    pub r: usize,
    /// Key size in bytes (`K`).
    pub k: usize,
    /// Pointer size in bytes (`P`).
    pub p: usize,
    /// Number of records (`n`).
    pub n: usize,
    /// Hash fudge factor (`h`): hash table is `h×` the raw data.
    pub h: f64,
    /// Cache-line size in bytes (`c`).
    pub c: usize,
    /// Node size in cache lines (`s`).
    pub s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            r: 4,
            k: 4,
            p: 4,
            n: 10_000_000,
            h: 1.2,
            c: 64,
            s: 1.0,
        }
    }
}

impl Params {
    /// Slots per node: `m = s·c / K` (§5.1 — "we have a single parameter
    /// m, which is the number of slots per node").
    pub fn m(&self) -> usize {
        ((self.s * self.c as f64) / self.k as f64).round() as usize
    }

    /// Node size in bytes (`s·c`).
    pub fn node_bytes(&self) -> f64 {
        self.s * self.c as f64
    }

    /// Same parameters with a different `n`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Same parameters with a node of `m` slots (adjusts `s`).
    pub fn with_m(mut self, m: usize) -> Self {
        self.s = (m * self.k) as f64 / self.c as f64;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_values_match_table_1() {
        let p = Params::default();
        assert_eq!((p.r, p.k, p.p), (4, 4, 4));
        assert_eq!(p.n, 10_000_000);
        assert!((p.h - 1.2).abs() < 1e-12);
        assert_eq!(p.c, 64);
        assert_eq!(p.m(), 16, "64-byte node holds 16 4-byte slots");
    }

    #[test]
    fn with_m_round_trips() {
        let p = Params::default().with_m(8);
        assert_eq!(p.m(), 8);
        assert!((p.node_bytes() - 32.0).abs() < 1e-9);
        let p = Params::default().with_m(24); // the Fig. 12 bump point
        assert_eq!(p.m(), 24);
        assert!((p.s - 1.5).abs() < 1e-9);
    }
}
