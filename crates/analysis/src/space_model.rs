//! Fig. 7: space formulas, and the Fig. 8 space-vs-n sweeps.
//!
//! Two accounting modes (§5.2): "indirect" charges only what a method
//! needs beyond a rearrangeable RID list; "direct" additionally charges
//! methods that must hold RIDs internally (T-trees, hash tables) with
//! `n·R` bytes.

use crate::params::Params;

/// The methods of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Binary search on the sorted array (§3.2).
    BinarySearch,
    /// Interpolation search on the sorted array.
    InterpolationSearch,
    /// Pointer-based balanced binary search tree ("tree binary search").
    BinaryTree,
    /// T-tree, improved \[LC86b\] variant (§3.3).
    TTree,
    /// Bulk-loaded B+-tree (§3.4).
    BPlusTree,
    /// Full CSS-tree (§4.1).
    FullCss,
    /// Level CSS-tree (§4.2).
    LevelCss,
    /// Chained bucket hashing (§3.5).
    Hash,
}

impl Method {
    /// All methods, in the paper's presentation order.
    pub const ALL: [Method; 8] = [
        Method::BinarySearch,
        Method::InterpolationSearch,
        Method::BinaryTree,
        Method::TTree,
        Method::BPlusTree,
        Method::FullCss,
        Method::LevelCss,
        Method::Hash,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::BinarySearch => "array binary search",
            Method::InterpolationSearch => "interpolation search",
            Method::BinaryTree => "tree binary search",
            Method::TTree => "T-tree",
            Method::BPlusTree => "B+-tree",
            Method::FullCss => "full CSS-tree",
            Method::LevelCss => "level CSS-tree",
            Method::Hash => "hash",
        }
    }

    /// "RID-Ordered Access" column of Fig. 7.
    pub fn rid_ordered_access(&self) -> bool {
        !matches!(self, Method::Hash)
    }
}

/// Fig. 7 "Space (indirect)" in bytes.
pub fn space_indirect(method: Method, p: &Params) -> f64 {
    let n = p.n as f64;
    let (k, r, pt) = (p.k as f64, p.r as f64, p.p as f64);
    let sc = p.node_bytes();
    match method {
        Method::BinarySearch | Method::InterpolationSearch => 0.0,
        // Not in Fig. 7; each element pays two pointers (key + position
        // share the RID budget in the indirect mode).
        Method::BinaryTree => n * 2.0 * pt,
        // 2nP(K+R)/(sc − 2P)
        Method::TTree => 2.0 * n * pt * (k + r) / (sc - 2.0 * pt),
        // nK(P+K)/(sc − P − K)
        Method::BPlusTree => n * k * (pt + k) / (sc - pt - k),
        // nK²/(sc)
        Method::FullCss => n * k * k / sc,
        // nK²/(sc − K); assumes sc/K is a power of two
        Method::LevelCss => n * k * k / (sc - k),
        // (h − 1)·n·R
        Method::Hash => (p.h - 1.0) * n * r,
    }
}

/// Fig. 7 "Space (direct)" in bytes: T-trees and hash tables additionally
/// carry `n·R` of record identifiers.
pub fn space_direct(method: Method, p: &Params) -> f64 {
    let extra = match method {
        Method::TTree | Method::Hash => (p.n * p.r) as f64,
        _ => 0.0,
    };
    space_indirect(method, p) + extra
}

/// Fig. 8: space over a range of `n` (same typical parameters otherwise).
/// Returns `(n, bytes)` pairs.
pub fn sweep_n(
    method: Method,
    p: &Params,
    ns: impl IntoIterator<Item = usize>,
    direct: bool,
) -> Vec<(usize, f64)> {
    ns.into_iter()
        .map(|n| {
            let pn = p.with_n(n);
            let bytes = if direct {
                space_direct(method, &pn)
            } else {
                space_indirect(method, &pn)
            };
            (n, bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    /// Fig. 7's "Typical Value" column, n = 10^7, 64-byte single-line
    /// nodes.
    #[test]
    fn typical_values_match_figure_7() {
        let p = Params::default();
        let close = |v: f64, expect_mb: f64| (v / MB - expect_mb).abs() < 0.15;

        assert_eq!(space_indirect(Method::BinarySearch, &p), 0.0);
        assert_eq!(space_direct(Method::InterpolationSearch, &p), 0.0);
        assert!(close(space_indirect(Method::FullCss, &p), 2.5), "full css");
        assert!(
            close(space_indirect(Method::LevelCss, &p), 2.7),
            "level css"
        );
        assert!(close(space_indirect(Method::BPlusTree, &p), 5.7), "b+");
        assert!(
            close(space_indirect(Method::Hash, &p), 8.0),
            "hash indirect"
        );
        assert!(close(space_direct(Method::Hash, &p), 48.0), "hash direct");
        assert!(
            close(space_indirect(Method::TTree, &p), 11.4),
            "ttree indirect"
        );
        assert!(close(space_direct(Method::TTree, &p), 51.4), "ttree direct");
    }

    #[test]
    fn rid_ordered_access_column() {
        for m in Method::ALL {
            assert_eq!(m.rid_ordered_access(), m != Method::Hash, "{m:?}");
        }
    }

    #[test]
    fn css_trees_dominate_b_plus_in_space() {
        // §1: "CSS-trees also use less space than B+-trees of the same
        // node size" — across node sizes.
        for m in [8usize, 16, 32, 64] {
            let p = Params::default().with_m(m);
            assert!(
                space_indirect(Method::FullCss, &p) < space_indirect(Method::BPlusTree, &p),
                "m={m}"
            );
            assert!(
                space_indirect(Method::LevelCss, &p) < space_indirect(Method::BPlusTree, &p),
                "m={m}"
            );
        }
    }

    #[test]
    fn sweep_is_linear_in_n() {
        let p = Params::default();
        let pts = sweep_n(
            Method::FullCss,
            &p,
            [10_000_000, 20_000_000, 30_000_000],
            false,
        );
        assert_eq!(pts.len(), 3);
        let unit = pts[0].1 / pts[0].0 as f64;
        for (n, b) in &pts {
            assert!((b / *n as f64 - unit).abs() < 1e-9);
        }
    }

    #[test]
    fn level_uses_slightly_more_than_full() {
        let p = Params::default();
        let full = space_indirect(Method::FullCss, &p);
        let level = space_indirect(Method::LevelCss, &p);
        assert!(level > full);
        assert!(level / full < 1.1, "only 'a little more' (§4.2)");
    }
}
