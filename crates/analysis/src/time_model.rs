//! Fig. 6: the per-method lookup cost model.
//!
//! "The total cost of each searching method has three parts, namely the
//! comparison cost, the cost of moving across levels and the cache miss
//! cost" (§5.1). This module evaluates all three for each method, exactly
//! as tabulated in Fig. 6, including the two cache-miss regimes (node size
//! below/above one cache line) and the per-node miss estimate
//! `log2(mK/c) + c/(mK)` for oversized nodes.

use crate::params::Params;
use crate::space_model::Method;

/// Evaluated Fig. 6 row for one method at one `(n, m)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// The method.
    pub method: Method,
    /// Branching factor (`l` column).
    pub branching: f64,
    /// Number of levels.
    pub levels: f64,
    /// Comparisons per internal node.
    pub comparisons_per_internal: f64,
    /// Comparisons per leaf node.
    pub comparisons_per_leaf: f64,
    /// Total comparisons.
    pub total_comparisons: f64,
    /// Number of across-level moves (each costing a pointer dereference
    /// `D` or an arithmetic child computation `A`).
    pub moves: f64,
    /// Estimated cache misses per (cold) lookup.
    pub cache_misses: f64,
}

/// A cost model evaluation turned into simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeEstimate {
    /// Per-lookup cost in cycles.
    pub cycles: f64,
    /// Per-lookup cost in seconds at the given clock.
    pub seconds: f64,
}

fn log2(x: f64) -> f64 {
    x.log2()
}

/// Per-node cache misses for a node of `m` slots of `k`-byte keys against
/// `c`-byte lines: 1 when the node fits a line, else
/// `log2(mK/c) + c/(mK)` (§5.1).
pub fn misses_per_node(m: usize, k: usize, c: usize) -> f64 {
    let mk = (m * k) as f64;
    let cf = c as f64;
    if mk <= cf {
        1.0
    } else {
        (mk / cf).log2() + cf / mk
    }
}

/// Evaluate the Fig. 6 row for `method` (not defined for `Hash` and
/// `InterpolationSearch`, which the figure omits — returns `None`).
pub fn cost_breakdown(method: Method, p: &Params) -> Option<CostBreakdown> {
    let n = p.n as f64;
    let m = p.m() as f64;
    let per_node_misses = misses_per_node(p.m(), p.k, p.c);
    let row = match method {
        Method::BinarySearch | Method::BinaryTree => CostBreakdown {
            method,
            branching: 2.0,
            levels: log2(n),
            comparisons_per_internal: 1.0,
            comparisons_per_leaf: 1.0,
            total_comparisons: log2(n),
            moves: log2(n),
            cache_misses: log2(n),
        },
        Method::TTree => CostBreakdown {
            method,
            branching: 2.0,
            levels: log2(n / m) - 1.0,
            comparisons_per_internal: 1.0,
            comparisons_per_leaf: log2(m),
            total_comparisons: log2(n),
            moves: log2(n),
            cache_misses: log2(n),
        },
        Method::BPlusTree => {
            let branching = m / 2.0;
            CostBreakdown {
                method,
                branching,
                levels: (n / m).log2() / branching.log2(),
                comparisons_per_internal: log2(m) - 1.0,
                comparisons_per_leaf: log2(m),
                total_comparisons: log2(n),
                moves: (n / m).log2() / branching.log2(),
                cache_misses: n.log2() / (log2(m) - 1.0) * per_node_misses,
            }
        }
        Method::FullCss => {
            let f = m + 1.0;
            CostBreakdown {
                method,
                branching: f,
                levels: (n / m).log2() / f.log2(),
                comparisons_per_internal: (1.0 + 2.0 / f) * log2(m),
                comparisons_per_leaf: log2(m),
                total_comparisons: (1.0 + 2.0 / f) * (m.log2() / f.log2()) * log2(n),
                moves: (n / m).log2() / f.log2(),
                cache_misses: n.log2() / f.log2() * per_node_misses,
            }
        }
        Method::LevelCss => CostBreakdown {
            method,
            branching: m,
            levels: (n / m).log2() / m.log2(),
            comparisons_per_internal: log2(m),
            comparisons_per_leaf: log2(m),
            total_comparisons: log2(n),
            moves: (n / m).log2() / m.log2(),
            cache_misses: n.log2() / m.log2() * per_node_misses,
        },
        Method::Hash | Method::InterpolationSearch => return None,
    };
    Some(row)
}

/// Turn a breakdown into time with explicit cost coefficients: `cmp`
/// cycles per comparison, `mv` cycles per across-level move, `miss`
/// cycles per cache miss, at `clock_hz`.
pub fn estimate_time(
    b: &CostBreakdown,
    cmp: f64,
    mv: f64,
    miss: f64,
    clock_hz: f64,
) -> TimeEstimate {
    let cycles = b.total_comparisons * cmp + b.moves * mv + b.cache_misses * miss;
    TimeEstimate {
        cycles,
        seconds: cycles / clock_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::default() // n = 10^7, m = 16
    }

    #[test]
    fn branching_factors_match_figure_6() {
        let p = p();
        assert_eq!(
            cost_breakdown(Method::BinarySearch, &p).unwrap().branching,
            2.0
        );
        assert_eq!(cost_breakdown(Method::TTree, &p).unwrap().branching, 2.0);
        assert_eq!(
            cost_breakdown(Method::BPlusTree, &p).unwrap().branching,
            8.0
        );
        assert_eq!(cost_breakdown(Method::FullCss, &p).unwrap().branching, 17.0);
        assert_eq!(
            cost_breakdown(Method::LevelCss, &p).unwrap().branching,
            16.0
        );
    }

    #[test]
    fn css_has_fewest_cache_misses() {
        // §5.1: "CSS-trees have the lowest values for the cache related
        // component of the cost"; binary/T-tree worst, B+ in between.
        let p = p();
        let miss = |m| cost_breakdown(m, &p).unwrap().cache_misses;
        assert!(miss(Method::FullCss) < miss(Method::BPlusTree));
        assert!(miss(Method::LevelCss) < miss(Method::BPlusTree));
        assert!(miss(Method::BPlusTree) < miss(Method::BinarySearch));
        assert_eq!(miss(Method::BinarySearch), miss(Method::TTree));
        // Quantitatively: log17(10^7) ≈ 5.7 vs log2(10^7) ≈ 23.25.
        assert!((miss(Method::FullCss) - 5.74).abs() < 0.1);
        assert!((miss(Method::BinarySearch) - 23.25).abs() < 0.1);
    }

    #[test]
    fn total_comparisons_are_log2_n_except_full_css() {
        // §4.2/Fig. 6: every method does ~log2 n comparisons; full
        // CSS-trees do slightly more.
        let p = p();
        let log2n = (p.n as f64).log2();
        for m in [
            Method::BinarySearch,
            Method::TTree,
            Method::BPlusTree,
            Method::LevelCss,
        ] {
            let c = cost_breakdown(m, &p).unwrap().total_comparisons;
            assert!((c - log2n).abs() < 1e-9, "{m:?}: {c}");
        }
        let full = cost_breakdown(Method::FullCss, &p)
            .unwrap()
            .total_comparisons;
        assert!(full > log2n, "full CSS does extra comparisons");
        assert!(full / log2n < 1.2, "but only slightly ({full})");
    }

    #[test]
    fn miss_regimes_switch_at_line_size() {
        // m*K <= c: one miss per node.
        assert_eq!(misses_per_node(16, 4, 64), 1.0);
        assert_eq!(misses_per_node(8, 4, 64), 1.0);
        // m*K = 2c: log2(2) + 1/2 = 1.5.
        assert!((misses_per_node(32, 4, 64) - 1.5).abs() < 1e-12);
        // m*K = 4c: 2 + 1/4.
        assert!((misses_per_node(64, 4, 64) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn optimal_node_size_is_one_cache_line() {
        // §5.1: "the number of cache misses is minimized when the node
        // size is the same as cache line size."
        let at = |m: usize| {
            let p = Params::default().with_m(m);
            cost_breakdown(Method::FullCss, &p).unwrap().cache_misses
        };
        let best = at(16);
        for m in [2usize, 4, 8, 32, 64, 128] {
            assert!(at(m) >= best - 1e-9, "m={m}: {} vs {best}", at(m));
        }
    }

    #[test]
    fn larger_m_degrades_to_binary_search() {
        // §5.1: "as m gets larger, the number of cache misses for all the
        // methods approaches log2 n".
        let at = |m: usize| {
            let p = Params::default().with_m(m);
            cost_breakdown(Method::FullCss, &p).unwrap().cache_misses
        };
        // Monotonically worse past the cache-line optimum...
        assert!(at(16) < at(64) && at(64) < at(256) && at(256) < at(4096));
        // ...approaching the spatial-locality-adjusted binary-search cost
        // log2(n·K/c) (one huge node *is* binary search over the array).
        let p = Params::default();
        let limit = ((p.n * p.k / p.c) as f64).log2();
        assert!(at(65_536) / limit > 0.85, "{} vs {limit}", at(65_536));
    }

    #[test]
    fn hash_and_interpolation_are_not_modelled() {
        let p = p();
        assert!(cost_breakdown(Method::Hash, &p).is_none());
        assert!(cost_breakdown(Method::InterpolationSearch, &p).is_none());
    }

    #[test]
    fn time_estimate_composes_linearly() {
        let p = p();
        let b = cost_breakdown(Method::FullCss, &p).unwrap();
        let t = estimate_time(&b, 2.0, 3.0, 80.0, 296e6);
        let manual = b.total_comparisons * 2.0 + b.moves * 3.0 + b.cache_misses * 80.0;
        assert!((t.cycles - manual).abs() < 1e-9);
        assert!((t.seconds - manual / 296e6).abs() < 1e-15);
    }

    #[test]
    fn css_beats_binary_search_by_over_2x_in_model_time(/* §6.3 headline */) {
        let p = p();
        let time = |m| {
            let b = cost_breakdown(m, &p).unwrap();
            estimate_time(&b, 2.0, 3.0, 80.0, 296e6).seconds
        };
        assert!(time(Method::BinarySearch) / time(Method::FullCss) > 2.0);
        assert!(time(Method::BinarySearch) / time(Method::LevelCss) > 2.0);
        // And B+ falls in between.
        assert!(time(Method::BPlusTree) < time(Method::BinarySearch));
        assert!(time(Method::BPlusTree) > time(Method::FullCss));
    }
}
