//! The §6.2 specialisation ablation.
//!
//! "When our code was more 'generic' (including a binary search loop for
//! each node), we found the performance to be 20% to 45% worse than the
//! specialized code." — const-generic `FullCssTree<u32, 16>` vs the
//! runtime-`m` `GenericFullCss` over the same data and probes.

use ccindex_common::{SearchIndex, SortedArray};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use css_tree::generic_search::GenericFullCss;
use css_tree::FullCssTree;
use workload::{KeySetBuilder, LookupStream};

fn bench_ablation(c: &mut Criterion) {
    let n = 4_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, 4_096, 99);
    let probes = stream.probes();

    let specialised = FullCssTree::<u32, 16>::from_shared(arr.clone());
    let generic = GenericFullCss::from_shared(arr, 16);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("specialised-m16", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &p in probes {
                if specialised.search(p).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    group.bench_function("generic-m16", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &p in probes {
                if generic.search(p).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
