//! Sequential vs batched lookups (beyond-paper batching study).
//!
//! The observable: with the array far beyond the last-level cache, the
//! CSS variants' interleaved `search_batch` overrides overlap independent
//! probes' node fetches and beat their own sequential protocol, while the
//! sequential-default methods (binary search, B+-tree) bound the cost of
//! the batch plumbing itself.

use bench::methods::batched_comparison_methods;
use ccindex_common::SortedArray;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workload::{KeySetBuilder, LookupStream};

fn bench_batched(c: &mut Criterion) {
    let n = 8_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, 8_192, 21);
    let probes = stream.probes();

    let mut group = c.benchmark_group("batched");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.sample_size(10);
    for m in batched_comparison_methods(&arr, 16) {
        group.bench_with_input(BenchmarkId::new("sequential", &m.label), &m, |b, m| {
            b.iter(|| {
                let mut found = 0usize;
                for &p in probes {
                    if m.index.search(p).is_some() {
                        found += 1;
                    }
                }
                found
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", &m.label), &m, |b, m| {
            b.iter(|| {
                let mut found = 0usize;
                for chunk in probes.chunks(4096) {
                    found += m.index.search_batch(chunk).iter().flatten().count();
                }
                found
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched);
criterion_main!(benches);
