//! Criterion version of Fig. 9: CSS-tree construction cost.
//!
//! The paper's observables: build time is linear in the array size, level
//! CSS-trees build faster than full CSS-trees (the auxiliary slot avoids
//! subtree descents), and even 25 M keys build in well under a second on
//! a modern machine (their 1998 machine managed < 1 s too).

use ccindex_common::SortedArray;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use css_tree::{FullCssTree, LevelCssTree};
use workload::KeySetBuilder;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for &n in &[1_000_000usize, 4_000_000] {
        let keys: Vec<u32> = KeySetBuilder::new(n).build();
        let arr = SortedArray::from_slice(&keys);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("full-css-16", n), &arr, |b, arr| {
            b.iter(|| FullCssTree::<u32, 16>::from_shared(arr.clone()))
        });
        group.bench_with_input(BenchmarkId::new("level-css-16", n), &arr, |b, arr| {
            b.iter(|| LevelCssTree::<u32, 16>::from_shared(arr.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
