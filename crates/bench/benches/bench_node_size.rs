//! Criterion version of Figs. 12–13: lookup latency vs node size at a
//! fixed row count, for T-trees, B+-trees and both CSS variants.
//!
//! The paper's observable: CSS-trees bottom out when the node size equals
//! the cache line (16 ints on 64-byte lines), B+-trees at about twice
//! that, and full CSS-trees show a bump at m = 24 (nodes misaligned with
//! lines + non-shift child arithmetic — reproduced here by the generic
//! fallback implementation used for non-power sizes).

use bench::methods::{build_bplus, build_ttree};
use ccindex_common::{SearchIndex, SortedArray};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use css_tree::{CssVariant, DynCssTree};
use workload::{KeySetBuilder, LookupStream};

fn bench_node_sizes(c: &mut Criterion) {
    let n = 4_000_000usize;
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, 4_096, 7);
    let probes = stream.probes();

    let run = |b: &mut criterion::Bencher, idx: &dyn SearchIndex<u32>| {
        b.iter(|| {
            let mut found = 0usize;
            for &p in probes {
                if idx.search(p).is_some() {
                    found += 1;
                }
            }
            found
        })
    };

    let mut group = c.benchmark_group("node_size");
    group.sample_size(10);
    for &m in &[8usize, 16, 24, 32, 64, 128] {
        let full = DynCssTree::build(CssVariant::Full, m, arr.clone());
        group.bench_with_input(BenchmarkId::new("full-css", m), &m, |b, _| run(b, &full));
        if m.is_power_of_two() {
            let level = DynCssTree::build(CssVariant::Level, m, arr.clone());
            group.bench_with_input(BenchmarkId::new("level-css", m), &m, |b, _| run(b, &level));
        }
        let bp = build_bplus(&arr, m);
        group.bench_with_input(BenchmarkId::new("bplus", m), &m, |b, _| run(b, bp.as_ref()));
        let tt = build_ttree(&arr, m);
        group.bench_with_input(BenchmarkId::new("ttree", m), &m, |b, _| run(b, tt.as_ref()));
    }
    group.finish();
}

criterion_group!(benches, bench_node_sizes);
criterion_main!(benches);
