//! Criterion version of Figs. 10–11: lookup latency of all eight methods
//! at cache-resident and cache-exceeding array sizes (host hardware).
//!
//! The paper's observable: with the array far larger than the last-level
//! cache, CSS-trees beat binary search / BST / T-tree by > 2× and edge out
//! B+-trees; hash wins on raw speed. With the array cache-resident, the
//! methods converge.

use bench::methods::all_methods;
use ccindex_common::SortedArray;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workload::{KeySetBuilder, LookupStream};

fn bench_methods(c: &mut Criterion) {
    // 64 k keys (256 kB: L2-resident) and 8 M keys (32 MB: beyond L2/L3
    // on most hosts) — the two regimes of Figs. 10–11.
    for &n in &[65_536usize, 8_000_000] {
        let keys: Vec<u32> = KeySetBuilder::new(n).build();
        let arr = SortedArray::from_slice(&keys);
        let stream = LookupStream::successful(&keys, 4_096, 42);
        let probes = stream.probes();

        let mut group = c.benchmark_group(format!("search/n={n}"));
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.sample_size(10);
        for m in all_methods(&arr, 16) {
            group.bench_with_input(BenchmarkId::from_parameter(&m.label), &m, |b, m| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &p in probes {
                        if m.index.search(p).is_some() {
                            found += 1;
                        }
                    }
                    found
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
