//! Regenerate every table and figure of Rao & Ross (VLDB 1999).
//!
//! ```text
//! figures [OPTIONS] <WHAT>...
//!
//! WHAT:  fig1 table1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!        fig14 warmcache interp batched engine parallel sharded serve
//!        concurrent ablations slo coldstart all
//!
//! OPTIONS:
//!   --simulate <machine>   run timing figures on the cache simulator
//!                          (ultrasparc | pentium2 | modern) instead of
//!                          host wall-clock
//!   --scale <small|paper>  problem sizes (default small: ~100x reduced;
//!                          paper: the original sizes, n up to 25M)
//!   --lookups <N>          probes per measurement (default 100000)
//! ```
//!
//! The timing subcommands (`batched engine parallel sharded serve
//! concurrent`) also flush their measurements as machine-readable
//! `BENCH_<what>.json` files (name, params, ns/op, throughput) alongside
//! the human tables, so sweeps can be tracked across commits without
//! scraping stdout.
//!
//! `fig10`/`fig11` and `fig12`/`fig13` differ only in machine model, so
//! the unsimulated run prints host measurements once and notes the
//! mapping. Every figure's expected *shape* is described in the doc
//! comment of the function that prints it, below.

use analysis::space_model::{space_direct, space_indirect, Method};
use analysis::time_model::cost_breakdown;
use analysis::{csstree_ratios, Params};
use bench::methods::{
    all_methods, batched_comparison_methods, build_bplus, build_hash, build_ttree,
};
use bench::protocol::{
    compare_sequential_vs_batched, run_lookup_protocol, simulate_lookup_protocol, Measurement,
};
use bench::report::{format_num, print_series, write_bench_json, BenchRecord, Series};
use cachesim::Machine;
use ccindex_common::{SearchIndex, SortedArray};
use css_tree::{CssVariant, DynCssTree, FullCssTree, LevelCssTree};
use workload::{KeyDistribution, KeySetBuilder, LookupStream, DEFAULT_SEED};

use std::time::Instant;

#[derive(Clone)]
struct Options {
    simulate: Option<String>,
    paper_scale: bool,
    lookups: usize,
}

impl Options {
    fn scaled(&self, paper_n: usize) -> usize {
        if self.paper_scale {
            paper_n
        } else {
            (paper_n / 20).max(10_000)
        }
    }

    fn measure(&self, index: &dyn SearchIndex<u32>, probes: &[u32]) -> Measurement {
        match &self.simulate {
            Some(name) => {
                let mut machine =
                    Machine::by_name(name).unwrap_or_else(|| panic!("unknown machine '{name}'"));
                simulate_lookup_protocol(index, probes, &mut machine)
            }
            None => run_lookup_protocol(index, probes, 3),
        }
    }

    fn time_label(&self) -> String {
        match &self.simulate {
            Some(m) => format!("simulated seconds on {m} per batch"),
            None => "host wall-clock seconds per batch".to_string(),
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        simulate: None,
        paper_scale: false,
        lookups: 100_000,
    };
    let mut what: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--simulate" => {
                opts.simulate = Some(args.next().expect("--simulate needs a machine name"));
            }
            "--scale" => {
                let v = args.next().expect("--scale needs small|paper");
                opts.paper_scale = v == "paper";
            }
            "--lookups" => {
                opts.lookups = args
                    .next()
                    .expect("--lookups needs a count")
                    .parse()
                    .expect("invalid lookup count");
            }
            other if other.starts_with("--") => panic!("unknown option {other}"),
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    let all = what.iter().any(|w| w == "all");
    let want = |name: &str| all || what.iter().any(|w| w == name);

    if want("fig1") {
        fig1();
    }
    if want("table1") {
        table1();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9(&opts);
    }
    if want("fig10") || want("fig11") {
        fig10_11(&opts);
    }
    if want("fig12") || want("fig13") {
        fig12_13(&opts);
    }
    if want("fig2") || want("fig14") {
        fig14(&opts);
    }
    if want("warmcache") {
        warmcache(&opts);
    }
    if want("interp") {
        interp(&opts);
    }
    if want("batched") {
        batched(&opts);
    }
    if want("engine") {
        engine(&opts);
    }
    if want("parallel") {
        parallel(&opts);
    }
    if want("sharded") {
        sharded(&opts);
    }
    if want("distributed") {
        distributed(&opts);
    }
    if want("serve") {
        serve(&opts);
    }
    if want("concurrent") {
        concurrent(&opts);
    }
    if want("ablations") {
        ablations(&opts);
    }
    if want("slo") {
        slo(&opts);
    }
    if want("coldstart") {
        coldstart(&opts);
    }
}

/// Flush one subcommand's measurements as `BENCH_<figure>.json` next to
/// its human table; a write failure is reported, never fatal (the table
/// already printed).
fn flush_bench(figure: &str, records: &[BenchRecord]) {
    match write_bench_json(figure, records) {
        Ok(path) => println!("  (machine-readable copy: {})", path.display()),
        Err(e) => eprintln!("  could not write BENCH_{figure}.json: {e}"),
    }
}

/// Beyond-paper: the batch-formation serving front-end — N concurrent
/// clients, each pipelining point probes through a `BatchServer`, swept
/// over client counts x batch-window sizes against the one-probe-at-a-
/// time baseline (`batch_max = 1`: every request is its own window and
/// its own index descent). Wider windows coalesce same-column probes
/// into single interleaved `lower_bound_batch` descents, so requests/s
/// should climb with the window bound; every configuration's answers
/// are asserted byte-identical to the baseline's before it is timed.
/// The sharded rows route the same traffic through a 4-shard catalog's
/// scatter entry points.
fn serve(opts: &Options) {
    use ccindex_shard::ShardedDatabase;
    use mmdb::{Database, IndexKind, TableBuilder};

    let n = opts.scaled(2_000_000);
    let per_client = (opts.lookups / 50).clamp(64, 2_000);
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64 / 2)) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let mut base = Database::new();
    base.register(orders()).expect("fresh catalog");
    base.create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    let mut sharded = ShardedDatabase::hash(4).expect("four shards");
    sharded.register(orders(), "amount").expect("fresh catalog");
    sharded
        .create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");

    println!(
        "\n== Batch-formation serving (host): {} rows, {} probes/client, clients x batch window ==",
        format_num(n as f64),
        per_client
    );
    println!(
        "{:>22} {:>8} {:>10} {:>9} {:>14} {:>14} {:>9}",
        "catalog", "clients", "batch_max", "windows", "seconds", "requests/s", "vs 1-at-a-time"
    );
    let mut records = Vec::new();
    serve_rows("unsharded", &base, n, per_client, &mut records);
    serve_rows("hash x4", &sharded, n, per_client, &mut records);
    println!("  (all batch-formed answers asserted byte-identical to one-probe-at-a-time serving)");
    flush_bench("serve", &records);
}

/// One catalog's sweep of the `serve` figure — generic over the snapshot
/// source (the server pins a fresh generation per window, so the probe
/// path takes no locks regardless of which catalog is behind it).
fn serve_rows<S: ccindex_serve::ServeSource>(
    label: &str,
    source: &S,
    n: usize,
    per_client: usize,
    records: &mut Vec<BenchRecord>,
) {
    use ccindex_serve::{BatchServer, Request, ServeOptions};
    use std::time::Duration;

    // Each client pipelines `per_client` point probes (a mix that hits
    // and misses) and then waits for all of them.
    let probes_of = |client: usize| -> Vec<i64> {
        (0..per_client)
            .map(|k| ((client * 2_654_435_761 + k * 48_271) % n) as i64)
            .collect()
    };
    let session = |clients: usize, batch_max: usize| {
        let server = BatchServer::with_options(
            source,
            ServeOptions {
                batch_max,
                batch_wait: Duration::from_micros(200),
            },
        );
        server.serve_concurrent(clients, |c, client| {
            let pending: Vec<_> = probes_of(c)
                .into_iter()
                .map(|v| client.submit(Request::point("orders", "amount", v)))
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("served"))
                .collect::<Vec<_>>()
        })
    };

    for clients in [1usize, 4, 16] {
        let (reference, _) = session(clients, 1);
        let mut baseline_s = f64::INFINITY;
        for batch_max in [1usize, 16, 64] {
            let (answers, _) = session(clients, batch_max);
            assert_eq!(
                answers, reference,
                "batch-formed answers must be byte-identical \
                 ({label} clients={clients} batch_max={batch_max})"
            );
            let t0 = Instant::now();
            let (_, stats_timed) = session(clients, batch_max);
            let secs = t0.elapsed().as_secs_f64();
            if batch_max == 1 {
                baseline_s = secs;
            }
            println!(
                "{:>22} {:>8} {:>10} {:>9} {:>14} {:>14} {:>8.2}x",
                label,
                clients,
                batch_max,
                stats_timed.windows,
                format_num(secs),
                format_num(stats_timed.requests as f64 / secs),
                baseline_s / secs
            );
            records.push(
                BenchRecord::new("served point probes")
                    .param("catalog", label)
                    .param("clients", clients)
                    .param("batch_max", batch_max)
                    .param("windows", stats_timed.windows)
                    .timed(stats_timed.requests as f64, secs),
            );
        }
    }
}

/// Beyond-paper, the tentpole measurement of the snapshot catalog: a
/// serving session pinned to per-window snapshots while a writer thread
/// continuously commits generations through the rebuild cycle. The
/// sweep runs the same client traffic three times — no writer (the
/// read-only baseline), a paced writer, and a flat-out writer — over
/// both the unsharded and a 4-shard catalog, always through `Send`
/// reader handles so the writer keeps `&mut` access on its own thread.
///
/// The writer replaces (and rebuilds the index of) a small side table in
/// the same catalog, so generations churn at a high rate without the
/// rebuild itself monopolising the cores the clients probe on: what the
/// figure isolates is the cost of the commit/pin synchronisation, which
/// should be near zero because the probe path takes no locks (readers
/// pin an immutable generation; the writer swaps an `Arc` on commit).
///
/// On hosts with few cores the flat-out writer also steals CPU from the
/// clients, which is contention the snapshot machinery cannot remove. To
/// separate the two effects the sweep includes an *equally-loaded
/// control*: the same flat-out commit loop run against a private scratch
/// catalog that shares no commit slot with the served one. The tentpole
/// claim — served-probe throughput within ~10% — is judged against that
/// control (and against the read-only baseline directly when the host
/// has cores to spare).
///
/// Host-only: the cache simulator is single-threaded, so `--simulate`
/// is ignored here. Results are also flushed to `BENCH_concurrent.json`.
fn concurrent(opts: &Options) {
    use ccindex_shard::ShardedDatabase;
    use mmdb::{Database, IndexKind, TableBuilder, Value};

    if opts.simulate.is_some() {
        println!("\n(concurrent serving is host-only; ignoring --simulate)");
    }
    let n = opts.scaled(2_000_000);
    let clients = 4usize;
    // Long enough sessions that scheduler noise averages out — the
    // figure is a ratio of wall-clocks, so jitter shows up directly.
    let per_client = (opts.lookups / 5).clamp(256, 20_000);
    let feed_rows = 4_096usize;
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64 / 2)) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let feed = || {
        TableBuilder::new("feed")
            .int_column("value", (0..feed_rows).map(|i| (i as i64 * 7) % 1_000))
            .build()
            .expect("equal columns")
    };
    // The batch the writer commits over and over: same shape, same
    // values — every commit runs the full merge+rebuild cycle and swaps
    // a new generation in, while served answers stay byte-comparable.
    let feed_batch: Vec<Value> = (0..feed_rows)
        .map(|i| Value::Int((i as i64 * 7) % 1_000))
        .collect();
    let probes: Vec<Vec<i64>> = (0..clients)
        .map(|client| {
            (0..per_client)
                .map(|k| ((client * 2_654_435_761 + k * 48_271) % n) as i64)
                .collect()
        })
        .collect();

    println!(
        "\n== Concurrent serving vs committing writer (host): {} rows, {} clients x {} probes ==",
        format_num(n as f64),
        clients,
        per_client
    );
    println!(
        "{:>12} {:>18} {:>9} {:>12} {:>14} {:>14} {:>13}",
        "catalog", "writer", "commits", "generation", "seconds", "requests/s", "vs read-only"
    );
    let mut records = Vec::new();

    let mut base = Database::new();
    base.register(orders()).expect("fresh catalog");
    base.register(feed()).expect("fresh catalog");
    base.create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    base.create_index("feed", "value", IndexKind::FullCss)
        .expect("column");
    {
        let handle = base.handle();
        // The control writer's private catalog: the same feed table and
        // index, so a commit costs the same CPU, but no shared slot.
        let mut scratch = Database::new();
        scratch.register(feed()).expect("fresh catalog");
        scratch
            .create_index("feed", "value", IndexKind::FullCss)
            .expect("column");
        let mut commit = |db: &mut Database| {
            db.replace_column("feed", "value", feed_batch.clone())
                .expect("same shape");
        };
        concurrent_rows(
            "unsharded",
            &handle,
            &mut base,
            &mut scratch,
            &mut commit,
            clients,
            &probes,
            &mut records,
        );
    }

    let mut sharded = ShardedDatabase::hash(4).expect("four shards");
    sharded.register(orders(), "amount").expect("fresh catalog");
    sharded.register(feed(), "value").expect("fresh catalog");
    sharded
        .create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    sharded
        .create_index("feed", "value", IndexKind::FullCss)
        .expect("column");
    {
        let handle = sharded.handle();
        let mut scratch = ShardedDatabase::hash(4).expect("four shards");
        scratch.register(feed(), "value").expect("fresh catalog");
        scratch
            .create_index("feed", "value", IndexKind::FullCss)
            .expect("column");
        let mut commit = |db: &mut ShardedDatabase| {
            db.replace_column("feed", "value", feed_batch.clone())
                .expect("same shape");
        };
        concurrent_rows(
            "hash x4",
            &handle,
            &mut sharded,
            &mut scratch,
            &mut commit,
            clients,
            &probes,
            &mut records,
        );
    }

    println!("  (all writer-raced answers asserted byte-identical to the read-only baseline)");
    flush_bench("concurrent", &records);
}

/// One catalog's rows of the `concurrent` figure: the read-only
/// baseline, then the same traffic with a paced writer, the
/// equally-loaded control (the flat-out commit loop against `scratch`,
/// which shares no commit slot with the served catalog), and finally the
/// flat-out writer committing into the served catalog — all on this
/// thread while the serving session runs over the `Send + Sync` handle
/// on another. Continuous-vs-control isolates the synchronisation cost
/// of sharing the commit slot from plain CPU contention.
#[allow(clippy::too_many_arguments)]
fn concurrent_rows<S, D>(
    label: &str,
    handle: &S,
    db: &mut D,
    scratch: &mut D,
    commit: &mut dyn FnMut(&mut D),
    clients: usize,
    probes: &[Vec<i64>],
    records: &mut Vec<BenchRecord>,
) where
    S: ccindex_serve::ServeSource,
{
    use ccindex_serve::{BatchServer, Request, ServeOptions};
    use std::time::Duration;

    let mut session = |pace: Option<Option<Duration>>, db: &mut D| {
        let mut commits = 0u64;
        let (answers, stats, secs) = std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| {
                let server = BatchServer::with_options(
                    handle,
                    ServeOptions {
                        batch_max: 64,
                        batch_wait: Duration::from_micros(200),
                    },
                );
                let t0 = Instant::now();
                let (answers, stats) = server.serve_concurrent(clients, |c, client| {
                    let pending: Vec<_> = probes[c]
                        .iter()
                        .map(|&v| client.submit(Request::point("orders", "amount", v)))
                        .collect();
                    pending
                        .into_iter()
                        .map(|p| p.wait().expect("served"))
                        .collect::<Vec<_>>()
                });
                (answers, stats, t0.elapsed().as_secs_f64())
            });
            if let Some(gap) = pace {
                while !server_thread.is_finished() {
                    commit(db);
                    commits += 1;
                    if let Some(gap) = gap {
                        std::thread::sleep(gap);
                    }
                }
            }
            server_thread.join().expect("serving thread")
        });
        (answers, stats, secs, commits)
    };

    let requests = (clients * probes[0].len()) as f64;
    let mut reference = None;
    let mut baseline = f64::INFINITY;
    let mut control = f64::INFINITY;
    for (writer, pace, on_scratch) in [
        ("none", None, false),
        ("paced 500us", Some(Some(Duration::from_micros(500))), false),
        ("unshared control", Some(None), true),
        ("continuous", Some(None), false),
    ] {
        // Best of five repetitions: one-shot timings on a loaded host
        // are noisy and the figure is about ratios. Answers are checked
        // on every repetition, not just the kept one.
        let mut secs = f64::INFINITY;
        let mut best = None;
        for _ in 0..5 {
            let target = if on_scratch { &mut *scratch } else { &mut *db };
            let (answers, stats, run_secs, commits) = session(pace, target);
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(
                    &answers, r,
                    "writer-raced answers must be byte-identical ({label} writer={writer})"
                ),
            }
            if run_secs < secs {
                secs = run_secs;
                best = Some((stats, commits));
            }
        }
        let (stats, commits) = best.expect("three repetitions ran");
        if pace.is_none() {
            baseline = secs;
        }
        if on_scratch {
            control = secs;
        }
        let ratio = baseline / secs;
        println!(
            "{:>12} {:>18} {:>9} {:>12} {:>14} {:>14} {:>12.2}x",
            label,
            writer,
            commits,
            stats.snapshot.generation,
            format_num(secs),
            format_num(requests / secs),
            ratio
        );
        if writer == "continuous" {
            let vs_control = control / secs;
            println!(
                "{:>12} {:>18} at {:.1}% of read-only, {:.1}% of the equally-loaded control ({})",
                "",
                "",
                100.0 * ratio,
                100.0 * vs_control,
                if vs_control >= 0.9 {
                    "within the 10% acceptance band"
                } else {
                    "outside the 10% acceptance band on this host"
                }
            );
        }
        records.push(
            BenchRecord::new("served point probes vs writer")
                .param("catalog", label)
                .param("writer", writer)
                .param("clients", clients)
                .param("commits", commits)
                .param("generation", stats.snapshot.generation)
                .param("swaps", stats.snapshot.swaps)
                .timed(requests, secs),
        );
    }
}

/// Beyond-paper: the lookup protocol in sequential vs batched mode for
/// the baseline quartet (binary search, B+-tree, both CSS variants). The
/// CSS variants answer batches with interleaved multi-lane descents; the
/// other two take the sequential default, so their two columns bound the
/// overhead of the batch plumbing itself.
fn batched(opts: &Options) {
    let machine_label = opts.simulate.clone().unwrap_or_else(|| "host".to_string());
    let n = opts.scaled(5_000_000);
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, opts.lookups, 17);
    let methods = batched_comparison_methods(&arr, 16);
    let mut machine = opts
        .simulate
        .as_ref()
        .map(|name| Machine::by_name(name).unwrap_or_else(|| panic!("unknown machine '{name}'")));
    let block = 4096usize;
    let rows = compare_sequential_vs_batched(&methods, stream.probes(), 3, block, machine.as_mut());
    println!(
        "\n== Batched lookup protocol ({machine_label}): {} probes, block {block}, n = {} ==",
        stream.len(),
        format_num(n as f64)
    );
    println!(
        "{:>22} {:>16} {:>16} {:>9}",
        "Method", "sequential (s)", "batched (s)", "delta"
    );
    let mut records = Vec::new();
    for r in rows {
        println!(
            "{:>22} {:>16} {:>16} {:>8.1}%",
            r.label,
            format_num(r.sequential.total_seconds),
            format_num(r.batched.total_seconds),
            100.0 * (r.batched.total_seconds - r.sequential.total_seconds)
                / r.sequential.total_seconds.max(1e-12)
        );
        for (mode, secs) in [
            ("sequential", r.sequential.total_seconds),
            ("batched", r.batched.total_seconds),
        ] {
            records.push(
                BenchRecord::new("lookup protocol")
                    .param("method", &r.label)
                    .param("mode", mode)
                    .param("machine", &machine_label)
                    .param("n", n)
                    .timed(stream.len() as f64, secs),
            );
        }
    }
    flush_bench("batched", &records);
}

/// Beyond-paper: the §2.2 index consumers as *whole queries* through the
/// `Database` engine — one catalog serving point selection, a range/point
/// conjunction, an indexed nested-loop join, and the full
/// select-join-group pipeline, timed per access-path kind. CSS-trees
/// should win the range-driven queries; the hash index is picked
/// automatically for equality probes wherever it is registered.
fn engine(opts: &Options) {
    use mmdb::{between, eq, on, sum, Database, IndexKind, TableBuilder};

    let n_orders = opts.scaled(2_000_000);
    let n_customers = (n_orders / 20).max(100);
    let regions = ["north", "south", "east", "west", "nw", "ne", "sw", "se"];
    let orders = TableBuilder::new("orders")
        .int_column(
            "cust",
            (0..n_orders)
                .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n_customers as u64) as i64),
        )
        .int_column(
            "amount",
            (0..n_orders).map(|i| ((i as u64).wrapping_mul(48_271) % 10_000) as i64),
        )
        .build()
        .expect("equal columns");
    let customers = TableBuilder::new("customers")
        .int_column("id", 0..n_customers as i64)
        .str_column(
            "region",
            (0..n_customers).map(|i| regions[i % regions.len()]),
        )
        .build()
        .expect("equal columns");

    println!(
        "\n== Query engine: whole-query timings (host), {} orders x {} customers ==",
        format_num(n_orders as f64),
        format_num(n_customers as f64)
    );
    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>14} {:>16}",
        "access path", "build (s)", "point (s)", "conj (s)", "join (s)", "pipeline (s)"
    );
    let mut records = Vec::new();
    for kind in [
        IndexKind::FullCss,
        IndexKind::LevelCss,
        IndexKind::BPlusTree,
        IndexKind::TTree,
        IndexKind::BinarySearch,
    ] {
        let mut db = Database::new();
        db.register(orders.clone()).expect("fresh catalog");
        db.register(customers.clone()).expect("fresh catalog");
        let t0 = Instant::now();
        db.create_index("orders", "amount", kind).expect("column");
        db.create_index("customers", "id", kind).expect("column");
        let build = t0.elapsed().as_secs_f64();

        let t = Instant::now();
        let point = db
            .query("orders")
            .filter(eq("amount", 4_999))
            .run()
            .expect("planned");
        let t_point = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let conj = db
            .query("orders")
            .filter(between("amount", 4_000, 6_000))
            .filter(between("amount", 4_990, 5_010))
            .run()
            .expect("planned");
        let t_conj = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let joined = db
            .query("orders")
            .join("customers", on("cust", "id"))
            .run()
            .expect("planned");
        let t_join = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let pipeline = db
            .query("orders")
            .filter(between("amount", 5_000, 9_999))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()
            .expect("planned");
        let t_pipe = t.elapsed().as_secs_f64();

        assert_eq!(joined.len(), n_orders, "every order joins one customer");
        std::hint::black_box((&point, &conj, &pipeline));
        println!(
            "{:>14} {:>12} {:>14} {:>14} {:>14} {:>16}",
            format!("{kind:?}"),
            format_num(build),
            format_num(t_point),
            format_num(t_conj),
            format_num(t_join),
            format_num(t_pipe)
        );
        for (query, secs) in [
            ("build", build),
            ("point", t_point),
            ("conjunction", t_conj),
            ("join", t_join),
            ("pipeline", t_pipe),
        ] {
            records.push(
                BenchRecord::new("whole query")
                    .param("access_path", format!("{kind:?}"))
                    .param("query", query)
                    .param("orders", n_orders)
                    .timed(1.0, secs),
            );
        }
    }
    flush_bench("engine", &records);
}

/// Beyond-paper: partitioned parallel execution — the sequential baseline
/// against the scoped-worker-pool operators at thread counts 1/2/4/8, on
/// (a) batched CSS lower bounds (`lower_bound_batch_par`) and (b) whole
/// group-by pipelines through the `Database` engine
/// (`ExecOptions { threads, .. }`). At `--scale paper` the key count is
/// the acceptance target of 4 M; expect near-linear speedup up to the
/// machine's core count (this host reports its own count in the header —
/// on a single-core container every row sits near 1.0x by construction).
fn parallel(opts: &Options) {
    use ccindex_common::DEFAULT_BATCH_LANES;
    use mmdb::{between, on, sum, Database, ExecOptions, IndexKind, TableBuilder};

    let cores = ccindex_parallel::available_threads();
    let thread_counts = [1usize, 2, 4, 8];
    let repeats = 3usize;
    let best_of = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    // (a) Partitioned batched lower bounds over one full CSS-tree.
    let n = opts.scaled(4_000_000);
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let css = FullCssTree::<u32, 16>::build(&keys);
    let stream = LookupStream::successful(&keys, opts.lookups, 23);
    let probes = stream.probes();
    let lanes = DEFAULT_BATCH_LANES;
    println!(
        "\n== Parallel batched lower bounds (host, {cores} core(s)): n = {}, {} probes, {lanes} lanes ==",
        format_num(n as f64),
        format_num(probes.len() as f64),
    );
    println!(
        "{:>10} {:>14} {:>18} {:>9}",
        "threads", "seconds", "probes/s", "speedup"
    );
    let mut records = Vec::new();
    let baseline = best_of(&|| {
        std::hint::black_box(css.lower_bound_batch_lanes(probes, lanes));
    });
    println!(
        "{:>10} {:>14} {:>18} {:>8.2}x",
        "seq",
        format_num(baseline),
        format_num(probes.len() as f64 / baseline),
        1.0
    );
    records.push(
        BenchRecord::new("batched lower bounds")
            .param("threads", "seq")
            .param("n", n)
            .timed(probes.len() as f64, baseline),
    );
    let reference = css.lower_bound_batch_lanes(probes, lanes);
    for threads in thread_counts {
        assert_eq!(
            css.lower_bound_batch_par(probes, lanes, threads),
            reference,
            "parallel lower bounds must be byte-identical"
        );
        let t = best_of(&|| {
            std::hint::black_box(css.lower_bound_batch_par(probes, lanes, threads));
        });
        println!(
            "{:>10} {:>14} {:>18} {:>8.2}x",
            threads,
            format_num(t),
            format_num(probes.len() as f64 / t),
            baseline / t
        );
        records.push(
            BenchRecord::new("batched lower bounds")
                .param("threads", threads)
                .param("n", n)
                .timed(probes.len() as f64, t),
        );
    }

    // (b) Whole group-by pipelines through the engine.
    let n_orders = n;
    let n_customers = (n_orders / 20).max(100);
    let regions = ["north", "south", "east", "west", "nw", "ne", "sw", "se"];
    let mut db = Database::new();
    db.register(
        TableBuilder::new("orders")
            .int_column(
                "cust",
                (0..n_orders)
                    .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n_customers as u64) as i64),
            )
            .int_column(
                "amount",
                (0..n_orders).map(|i| ((i as u64).wrapping_mul(48_271) % 10_000) as i64),
            )
            .build()
            .expect("equal columns"),
    )
    .expect("fresh catalog");
    db.register(
        TableBuilder::new("customers")
            .int_column("id", 0..n_customers as i64)
            .str_column(
                "region",
                (0..n_customers).map(|i| regions[i % regions.len()]),
            )
            .build()
            .expect("equal columns"),
    )
    .expect("fresh catalog");
    db.create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    db.create_index("customers", "id", IndexKind::FullCss)
        .expect("column");
    println!(
        "\n== Parallel group-by pipeline (host, {cores} core(s)): {} orders, filter+join+group ==",
        format_num(n_orders as f64)
    );
    println!(
        "{:>10} {:>14} {:>18} {:>9}",
        "threads", "seconds", "rows/s", "speedup"
    );
    let run_pipeline = |db: &Database| -> Vec<mmdb::GroupRow> {
        db.query("orders")
            .filter(between("amount", 2_000, 8_000))
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()
            .expect("planned")
            .groups()
            .to_vec()
    };
    db.set_exec_options(ExecOptions::default());
    let reference = run_pipeline(&db);
    let baseline = best_of(&|| {
        std::hint::black_box(run_pipeline(&db));
    });
    println!(
        "{:>10} {:>14} {:>18} {:>8.2}x",
        "seq",
        format_num(baseline),
        format_num(n_orders as f64 / baseline),
        1.0
    );
    records.push(
        BenchRecord::new("group-by pipeline")
            .param("threads", "seq")
            .param("orders", n_orders)
            .timed(n_orders as f64, baseline),
    );
    for threads in thread_counts {
        db.set_exec_options(ExecOptions {
            threads,
            lanes: DEFAULT_BATCH_LANES,
            ..ExecOptions::default()
        });
        assert_eq!(
            run_pipeline(&db),
            reference,
            "parallel pipeline must be byte-identical"
        );
        let t = best_of(&|| {
            std::hint::black_box(run_pipeline(&db));
        });
        println!(
            "{:>10} {:>14} {:>18} {:>8.2}x",
            threads,
            format_num(t),
            format_num(n_orders as f64 / t),
            baseline / t
        );
        records.push(
            BenchRecord::new("group-by pipeline")
                .param("threads", threads)
                .param("orders", n_orders)
                .timed(n_orders as f64, t),
        );
    }
    flush_bench("parallel", &records);
}

/// Beyond-paper: sharded scatter-gather execution — the unsharded
/// `Database` baseline against `ShardedDatabase` catalogs at shard
/// counts 1/2/4/8 under **both** partitioners, on the acceptance
/// pipelines (shard-key point select, range select, filter+join, and
/// filter+join+group). Every sharded run is asserted **byte-identical**
/// to the unsharded baseline before it is timed; the printed delta is
/// the routing/merge overhead (or win, once shards span NUMA domains or
/// nodes — on one node the point is capacity, not speed).
fn sharded(opts: &Options) {
    use ccindex_shard::{RangePartitioner, ShardedDatabase};
    use mmdb::{between, eq, on, sum, Database, IndexKind, ResultRows, TableBuilder};

    let n_orders = opts.scaled(1_000_000);
    let n_customers = (n_orders / 20).max(100);
    let regions = ["north", "south", "east", "west"];
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "cust",
                (0..n_orders)
                    .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n_customers as u64) as i64),
            )
            .int_column(
                "amount",
                (0..n_orders).map(|i| ((i as u64).wrapping_mul(48_271) % 10_000) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let customers = || {
        TableBuilder::new("customers")
            .int_column("id", 0..n_customers as i64)
            .str_column(
                "region",
                (0..n_customers).map(|i| regions[i % regions.len()]),
            )
            .build()
            .expect("equal columns")
    };

    // Unsharded baseline.
    let mut base = Database::new();
    base.register(orders()).expect("fresh catalog");
    base.register(customers()).expect("fresh catalog");
    base.create_index("orders", "cust", IndexKind::Hash)
        .expect("column");
    base.create_index("orders", "cust", IndexKind::FullCss)
        .expect("column");
    base.create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    base.create_index("customers", "id", IndexKind::FullCss)
        .expect("column");

    let queries = |rows: &mut Vec<ResultRows>, run: &dyn Fn(usize) -> ResultRows| {
        rows.clear();
        for q in 0..4 {
            rows.push(run(q));
        }
    };
    // Both catalogs expose the same builder surface, so one macro drives
    // the identical pipeline through either (edits apply to both sides
    // of the byte-identical assertion by construction).
    macro_rules! run_pipeline {
        ($db:expr, $q:expr) => {
            match $q {
                0 => $db
                    .query("orders")
                    .filter(eq("cust", 17))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                1 => $db
                    .query("orders")
                    .filter(between("cust", 100, 900))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                2 => $db
                    .query("orders")
                    .filter(between("amount", 2_000, 4_000))
                    .join("customers", on("cust", "id"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                _ => $db
                    .query("orders")
                    .filter(between("amount", 2_000, 8_000))
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
            }
        };
    }
    let base_run = |q: usize| -> ResultRows { run_pipeline!(base, q) };
    let mut reference: Vec<ResultRows> = Vec::new();
    queries(&mut reference, &base_run);
    let repeats = 3usize;
    let best_of = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let baseline = best_of(&|| {
        let mut rows = Vec::new();
        queries(&mut rows, &base_run);
        std::hint::black_box(rows);
    });

    println!(
        "\n== Sharded scatter-gather (host): {} orders x {} customers, point/range/join/group ==",
        format_num(n_orders as f64),
        format_num(n_customers as f64)
    );
    println!(
        "{:>22} {:>14} {:>18} {:>9}",
        "catalog", "seconds", "queries/s", "vs base"
    );
    println!(
        "{:>22} {:>14} {:>18} {:>8.2}x",
        "unsharded",
        format_num(baseline),
        format_num(4.0 / baseline),
        1.0
    );
    let mut records = vec![BenchRecord::new("scatter-gather queries")
        .param("catalog", "unsharded")
        .param("orders", n_orders)
        .timed(4.0, baseline)];

    for shards in [1usize, 2, 4, 8] {
        for hash in [true, false] {
            let mut db = if hash {
                ShardedDatabase::hash(shards).expect("at least one shard")
            } else {
                ShardedDatabase::new(
                    RangePartitioner::int_spans(0, n_customers as i64 - 1, shards)
                        .expect("valid span"),
                )
                .expect("at least one shard")
            };
            db.register(orders(), "cust").expect("keys in range");
            db.register(customers(), "id").expect("keys in range");
            db.create_index("orders", "cust", IndexKind::Hash)
                .expect("column");
            db.create_index("orders", "cust", IndexKind::FullCss)
                .expect("column");
            db.create_index("orders", "amount", IndexKind::FullCss)
                .expect("column");
            db.create_index("customers", "id", IndexKind::FullCss)
                .expect("column");
            let db_run = |q: usize| -> ResultRows { run_pipeline!(db, q) };
            // The acceptance gate: byte-identical rows per query, per
            // shard count, per partitioner.
            let mut rows = Vec::new();
            queries(&mut rows, &db_run);
            assert_eq!(
                rows, reference,
                "sharded results must be byte-identical (shards={shards} hash={hash})"
            );
            let t = best_of(&|| {
                let mut rows = Vec::new();
                queries(&mut rows, &db_run);
                std::hint::black_box(rows);
            });
            let label = format!("{} x{shards}", if hash { "hash" } else { "range" });
            println!(
                "{:>22} {:>14} {:>18} {:>8.2}x",
                label,
                format_num(t),
                format_num(4.0 / t),
                baseline / t
            );
            records.push(
                BenchRecord::new("scatter-gather queries")
                    .param("catalog", &label)
                    .param("orders", n_orders)
                    .timed(4.0, t),
            );
        }
    }
    println!("  (all sharded rows asserted byte-identical to the unsharded baseline)");
    flush_bench("sharded", &records);
}

/// Beyond-paper: the transport-generic scatter-gather — the *same*
/// coordinator running its shards in-process (`LocalShard`) versus as
/// remote `ShardServer` processes behind loopback TCP (`RemoteShard`),
/// at shard counts 1/2/4/8 on the acceptance pipelines. Every
/// distributed run is asserted byte-identical to its in-process twin
/// before it is timed. The printed factor is the wire tax: framing +
/// checksum + syscalls + value shipping for the join/group paths, which
/// loopback pays without any of a real network's latency — so it is the
/// *floor* of distribution overhead, and the capacity story (shards on
/// separate machines) is what buying it back looks like.
fn distributed(opts: &Options) {
    use ccindex_serve::ShardServer;
    use ccindex_shard::ShardedDatabase;
    use mmdb::{between, eq, on, sum, Database, IndexKind, ResultRows, TableBuilder};

    let n_orders = opts.scaled(200_000);
    let n_customers = (n_orders / 20).max(100);
    let regions = ["north", "south", "east", "west"];
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "cust",
                (0..n_orders)
                    .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % n_customers as u64) as i64),
            )
            .int_column(
                "amount",
                (0..n_orders).map(|i| ((i as u64).wrapping_mul(48_271) % 10_000) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let customers = || {
        TableBuilder::new("customers")
            .int_column("id", 0..n_customers as i64)
            .str_column(
                "region",
                (0..n_customers).map(|i| regions[i % regions.len()]),
            )
            .build()
            .expect("equal columns")
    };
    let index_all = |create: &mut dyn FnMut(&str, &str, IndexKind)| {
        create("orders", "cust", IndexKind::Hash);
        create("orders", "cust", IndexKind::FullCss);
        create("orders", "amount", IndexKind::FullCss);
        create("customers", "id", IndexKind::FullCss);
    };

    macro_rules! run_pipeline {
        ($db:expr, $q:expr) => {
            match $q {
                0 => $db
                    .query("orders")
                    .filter(eq("cust", 17))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                1 => $db
                    .query("orders")
                    .filter(between("cust", 100, 900))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                2 => $db
                    .query("orders")
                    .filter(between("amount", 2_000, 4_000))
                    .join("customers", on("cust", "id"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
                _ => $db
                    .query("orders")
                    .filter(between("amount", 2_000, 8_000))
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .expect("planned")
                    .rows()
                    .clone(),
            }
        };
    }

    let repeats = 3usize;
    let best_of = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    println!(
        "\n== Distributed scatter-gather (loopback TCP): {} orders x {} customers, point/range/join/group ==",
        format_num(n_orders as f64),
        format_num(n_customers as f64)
    );
    println!(
        "{:>12} {:>14} {:>14} {:>18} {:>11}",
        "shards", "transport", "seconds", "queries/s", "wire tax"
    );
    let mut records = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // In-process coordinator: the LocalShard baseline.
        let mut local = ShardedDatabase::hash(shards).expect("at least one shard");
        local.register(orders(), "cust").expect("fresh catalog");
        local.register(customers(), "id").expect("fresh catalog");
        index_all(&mut |t, c, k| local.create_index(t, c, k).expect("column"));
        let local_run = |q: usize| -> ResultRows { run_pipeline!(local, q) };
        let reference: Vec<ResultRows> = (0..4).map(local_run).collect();

        // The same coordinator over RemoteShard clients: one ShardServer
        // per shard, every operation crossing loopback TCP.
        let servers: Vec<ShardServer> = (0..shards)
            .map(|_| ShardServer::spawn(Database::new()).expect("loopback bind"))
            .collect();
        let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();
        let mut remote = ShardedDatabase::connect(
            ccindex_shard::HashPartitioner::new(shards).expect("at least one shard"),
            &addrs,
        )
        .expect("handshake");
        remote.register(orders(), "cust").expect("fresh catalog");
        remote.register(customers(), "id").expect("fresh catalog");
        index_all(&mut |t, c, k| remote.create_index(t, c, k).expect("column"));
        let remote_run = |q: usize| -> ResultRows { run_pipeline!(remote, q) };

        // The acceptance gate: distributed answers are byte-identical.
        let got: Vec<ResultRows> = (0..4).map(remote_run).collect();
        assert_eq!(
            got, reference,
            "distributed results must be byte-identical (shards={shards})"
        );

        let t_local = best_of(&|| {
            std::hint::black_box((0..4).map(local_run).collect::<Vec<_>>());
        });
        let t_remote = best_of(&|| {
            std::hint::black_box((0..4).map(remote_run).collect::<Vec<_>>());
        });
        let factor = t_remote / t_local;
        println!(
            "{:>12} {:>14} {:>14} {:>18} {:>10.2}x",
            shards,
            "in-process",
            format_num(t_local),
            format_num(4.0 / t_local),
            1.0
        );
        println!(
            "{:>12} {:>14} {:>14} {:>18} {:>10.2}x",
            shards,
            "loopback tcp",
            format_num(t_remote),
            format_num(4.0 / t_remote),
            factor
        );
        records.push(
            BenchRecord::new("distributed scatter-gather queries")
                .param("shards", shards)
                .param("transport", "in-process")
                .param("orders", n_orders)
                .timed(4.0, t_local),
        );
        records.push(
            BenchRecord::new("distributed scatter-gather queries")
                .param("shards", shards)
                .param("transport", "loopback-tcp")
                .param("orders", n_orders)
                .param("wire_tax_vs_in_process", format!("{factor:.2}"))
                .timed(4.0, t_remote),
        );
        for server in servers {
            server.shutdown();
        }
    }
    println!(
        "  (all distributed rows asserted byte-identical to the in-process coordinator;\n   \
         the wire-tax factor is loopback framing/checksum/syscall overhead — the floor of\n   \
         distribution cost, bought back as capacity when shards span machines)"
    );
    flush_bench("distributed", &records);
}

/// Beyond-figure ablations: \[LC86a\]-vs-\[LC86b\] T-tree descents (bytes
/// touched per probe) and sequential-vs-interleaved batched CSS lookups.
fn ablations(opts: &Options) {
    use ccindex_common::CountingTracer;
    use ttree::TTree;

    let n = opts.scaled(5_000_000);
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let stream = LookupStream::successful(&keys, opts.lookups.min(20_000), 13);

    // T-tree: bytes read per probe, classic vs improved.
    let tt = TTree::<u32, 16>::build(&keys);
    let (mut classic, mut improved) = (0u64, 0u64);
    for &p in stream.probes() {
        let mut a = CountingTracer::new();
        tt.search_classic_with(p, &mut a);
        classic += a.bytes_read;
        let mut b = CountingTracer::new();
        tt.search_with(p, &mut b);
        improved += b.bytes_read;
    }
    let per = stream.len() as f64;
    println!("\n== Ablation: T-tree descent ([LC86a] classic vs [LC86b] improved) ==");
    println!(
        "bytes touched per probe: classic {} vs improved {} ({:.1}% saved)",
        format_num(classic as f64 / per),
        format_num(improved as f64 / per),
        100.0 * (1.0 - improved as f64 / classic as f64)
    );

    // CSS batched lookups: sequential vs 8-way interleaved wall clock.
    let css = FullCssTree::<u32, 16>::build(&keys);
    let t0 = Instant::now();
    let seq = css.lower_bound_batch_sequential(stream.probes());
    let t_seq = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let inter = css.lower_bound_batch_interleaved::<8>(stream.probes());
    let t_inter = t1.elapsed().as_secs_f64();
    assert_eq!(seq, inter);
    println!(
        "\n== Ablation: batched CSS lookups ({} probes) ==",
        stream.len()
    );
    println!(
        "sequential {} s, 8-way interleaved {} s ({:+.1}%)",
        format_num(t_seq),
        format_num(t_inter),
        100.0 * (t_inter - t_seq) / t_seq
    );
}

/// Fig. 1 (after \[CLH98\]): the processor-memory performance imbalance
/// that motivates the whole paper — CPU speeds growing 60 %/year against
/// DRAM's 10 %/year, so the relative cost of a cache miss grew by two
/// orders of magnitude between \[LC86b\] (1986) and the paper (1998).
fn fig1() {
    let mut cpu = Series::new("CPU (60%/yr)");
    let mut dram = Series::new("DRAM (10%/yr)");
    let mut gap = Series::new("relative gap");
    for year in (1980..=2000).step_by(2) {
        let t = (year - 1980) as f64;
        let c = 1.6f64.powf(t);
        let d = 1.1f64.powf(t);
        cpu.push(year as f64, c);
        dram.push(year as f64, d);
        gap.push(year as f64, c / d);
    }
    print_series(
        "Figure 1: processor-memory performance imbalance (normalised to 1980)",
        "year",
        "relative performance",
        &[cpu, dram, gap],
    );
    let g86 = 1.6f64.powf(6.0) / 1.1f64.powf(6.0);
    let g98 = 1.6f64.powf(18.0) / 1.1f64.powf(18.0);
    println!(
        "gap growth 1986 -> 1998: {:.0}x (the paper's 'two orders of magnitude')",
        g98 / g86
    );
}

/// Table 1: parameters and their typical values.
fn table1() {
    let p = Params::default();
    println!("\n== Table 1: Parameters and Their Typical Values ==");
    println!("{:>10}  {:>14}", "Parameter", "Typical Value");
    println!("{:>10}  {:>14}", "R", format!("{} bytes", p.r));
    println!("{:>10}  {:>14}", "K", format!("{} bytes", p.k));
    println!("{:>10}  {:>14}", "P", format!("{} bytes", p.p));
    println!("{:>10}  {:>14}", "n", format_num(p.n as f64));
    println!("{:>10}  {:>14}", "h", format!("{}", p.h));
    println!("{:>10}  {:>14}", "c", format!("{} bytes", p.c));
    println!("{:>10}  {:>14}", "s", format!("{} cache line(s)", p.s));
}

/// Fig. 5: level/full comparison and cache-access ratios vs m.
fn fig5() {
    let pts = csstree_ratios::figure5_series(10, 60);
    let mut cmp = Series::new("comparison ratio");
    let mut acc = Series::new("cache access ratio");
    for p in pts {
        cmp.push(p.m as f64, p.comparison_ratio);
        acc.push(p.m as f64, p.cache_access_ratio);
    }
    print_series(
        "Figure 5: level vs full CSS-tree ratios",
        "m",
        "ratio (level / full)",
        &[cmp, acc],
    );
}

/// Fig. 6: the analytic cost model at Table 1 values.
fn fig6() {
    let p = Params::default();
    println!(
        "\n== Figure 6: Time analysis (n = {}, m = {}) ==",
        format_num(p.n as f64),
        p.m()
    );
    println!(
        "{:>22} {:>10} {:>8} {:>12} {:>10} {:>12}",
        "Method", "branching", "levels", "comparisons", "moves", "cache misses"
    );
    for m in [
        Method::BinarySearch,
        Method::TTree,
        Method::BPlusTree,
        Method::FullCss,
        Method::LevelCss,
    ] {
        let b = cost_breakdown(m, &p).expect("modelled method");
        println!(
            "{:>22} {:>10} {:>8} {:>12} {:>10} {:>12}",
            m.name(),
            format_num(b.branching),
            format_num(b.levels),
            format_num(b.total_comparisons),
            format_num(b.moves),
            format_num(b.cache_misses)
        );
    }
}

/// Fig. 7: space formulas at typical values.
fn fig7() {
    let p = Params::default();
    println!(
        "\n== Figure 7: Space analysis (n = {}) ==",
        format_num(p.n as f64)
    );
    println!(
        "{:>22} {:>16} {:>16} {:>10}",
        "Method", "indirect (MB)", "direct (MB)", "RID-order"
    );
    for m in Method::ALL {
        if m == Method::BinaryTree {
            continue; // not part of Fig. 7
        }
        println!(
            "{:>22} {:>16} {:>16} {:>10}",
            m.name(),
            format_num(space_indirect(m, &p) / 1e6),
            format_num(space_direct(m, &p) / 1e6),
            if m.rid_ordered_access() { "Y" } else { "N" }
        );
    }
}

/// Fig. 8: space vs n under the typical configuration.
fn fig8() {
    let p = Params::default();
    let ns: Vec<usize> = (1..=9).map(|i| i * 10_000_000).collect();
    for (direct, title) in [
        (false, "Figure 8(a): space (indirect)"),
        (true, "Figure 8(b): space (direct)"),
    ] {
        let mut series = Vec::new();
        for m in Method::ALL {
            if m == Method::BinaryTree {
                continue;
            }
            let mut s = Series::new(m.name());
            for (n, bytes) in analysis::space_model::sweep_n(m, &p, ns.iter().copied(), direct) {
                s.push(n as f64, bytes);
            }
            series.push(s);
        }
        print_series(title, "n", "bytes", &series);
    }
}

/// Fig. 9: CSS-tree build time vs sorted-array size.
fn fig9(opts: &Options) {
    let max = opts.scaled(25_000_000);
    let steps = 6usize;
    let mut full = Series::new("full CSS-tree");
    let mut level = Series::new("level CSS-tree");
    for i in 1..=steps {
        let n = max * i / steps;
        let keys: Vec<u32> = KeySetBuilder::new(n).build();
        let arr = SortedArray::from_slice(&keys);
        let t0 = Instant::now();
        let f = FullCssTree::<u32, 16>::from_shared(arr.clone());
        let tf = t0.elapsed().as_secs_f64();
        std::hint::black_box(&f);
        let t1 = Instant::now();
        let l = LevelCssTree::<u32, 16>::from_shared(arr);
        let tl = t1.elapsed().as_secs_f64();
        std::hint::black_box(&l);
        full.push(n as f64, tf);
        level.push(n as f64, tl);
    }
    print_series(
        "Figure 9: CSS-tree build time (host)",
        "array size",
        "build seconds",
        &[full, level],
    );
}

/// Figs. 10 & 11: search time vs array size, node sizes 8 and 16 ints.
fn fig10_11(opts: &Options) {
    let machine = opts.simulate.clone().unwrap_or_else(|| "host".to_string());
    let max = opts.scaled(10_000_000);
    let mut sizes: Vec<usize> = vec![100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    sizes.retain(|&s| s <= max.max(100));
    for node_ints in [8usize, 16] {
        let mut series: Vec<Series> = Vec::new();
        for n in &sizes {
            let keys: Vec<u32> = KeySetBuilder::new(*n).build();
            let arr = SortedArray::from_slice(&keys);
            let stream = LookupStream::successful(&keys, opts.lookups, DEFAULT_SEED ^ *n as u64);
            for m in all_methods(&arr, node_ints) {
                let meas = opts.measure(m.index.as_ref(), stream.probes());
                if let Some(s) = series.iter_mut().find(|s| s.name == m.label) {
                    s.push(*n as f64, meas.total_seconds);
                } else {
                    let mut s = Series::new(m.label.clone());
                    s.push(*n as f64, meas.total_seconds);
                    series.push(s);
                }
            }
        }
        print_series(
            &format!(
                "Figures 10/11 ({machine}): varying array size, {node_ints} integers per node"
            ),
            "array size",
            &opts.time_label(),
            &series,
        );
    }
}

/// Figs. 12 & 13: search time vs node size at fixed n (5 M and 10 M rows).
fn fig12_13(opts: &Options) {
    let machine = opts.simulate.clone().unwrap_or_else(|| "host".to_string());
    for paper_n in [5_000_000usize, 10_000_000] {
        let n = opts.scaled(paper_n);
        let keys: Vec<u32> = KeySetBuilder::new(n).build();
        let arr = SortedArray::from_slice(&keys);
        let stream = LookupStream::successful(&keys, opts.lookups, DEFAULT_SEED ^ n as u64);

        let node_sizes = [4usize, 8, 16, 24, 32, 48, 64, 128];
        let mut ttree = Series::new("T-tree");
        let mut bplus = Series::new("B+-tree");
        let mut full = Series::new("full CSS-tree");
        let mut level = Series::new("level CSS-tree");
        for &m in &node_sizes {
            let t = build_ttree(&arr, m);
            ttree.push(
                m as f64,
                opts.measure(t.as_ref(), stream.probes()).total_seconds,
            );
            let b = build_bplus(&arr, m);
            bplus.push(
                m as f64,
                opts.measure(b.as_ref(), stream.probes()).total_seconds,
            );
            let f = DynCssTree::build(CssVariant::Full, m, arr.clone());
            full.push(m as f64, opts.measure(&f, stream.probes()).total_seconds);
            if m.is_power_of_two() {
                let l = DynCssTree::build(CssVariant::Level, m, arr.clone());
                level.push(m as f64, opts.measure(&l, stream.probes()).total_seconds);
            }
        }
        // Hash directory sweep (the hash points of Fig. 12).
        let mut hash = Series::new("hash (dir sweep)");
        let mut dir = (n / 4).next_power_of_two().max(64);
        for _ in 0..5 {
            let h = build_hash(&arr, dir);
            hash.push(
                dir as f64,
                opts.measure(h.as_ref(), stream.probes()).total_seconds,
            );
            dir /= 2;
        }
        print_series(
            &format!(
                "Figures 12/13 ({machine}): varying node size, {} rows",
                format_num(n as f64)
            ),
            "entries/node",
            &opts.time_label(),
            &[ttree, bplus, full, level],
        );
        print_series(
            &format!(
                "Figure 12 hash sweep ({machine}), {} rows",
                format_num(n as f64)
            ),
            "directory size",
            &opts.time_label(),
            &[hash],
        );
    }
}

/// Figs. 2/14: the space/time trade-off frontier.
fn fig14(opts: &Options) {
    let machine = opts.simulate.clone().unwrap_or_else(|| "host".to_string());
    let n = opts.scaled(5_000_000);
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let stream = LookupStream::successful(&keys, opts.lookups, DEFAULT_SEED);

    println!(
        "\n== Figures 2/14 ({machine}): space/time trade-offs, n = {} ==",
        format_num(n as f64)
    );
    println!(
        "{:>28} {:>16} {:>16}",
        "Method (config)", "time (s/batch)", "space direct (B)"
    );
    let mut rows: Vec<(String, f64, usize)> = Vec::new();

    // Zero-space methods.
    for m in all_methods(&arr, 16) {
        if m.label == "array binary search" || m.label == "interpolation search" {
            let meas = opts.measure(m.index.as_ref(), stream.probes());
            rows.push((
                m.label.clone(),
                meas.total_seconds,
                m.index.space().direct_bytes,
            ));
        }
    }
    // Node-size sweeps.
    for m in [8usize, 16, 32, 64, 128] {
        let t = build_ttree(&arr, m);
        rows.push((
            format!("T-tree m={m}"),
            opts.measure(t.as_ref(), stream.probes()).total_seconds,
            t.space().direct_bytes,
        ));
        let b = build_bplus(&arr, m);
        rows.push((
            format!("B+-tree m={m}"),
            opts.measure(b.as_ref(), stream.probes()).total_seconds,
            b.space().direct_bytes,
        ));
        let f = DynCssTree::build(CssVariant::Full, m, arr.clone());
        rows.push((
            format!("full CSS m={m}"),
            opts.measure(&f, stream.probes()).total_seconds,
            f.space().direct_bytes,
        ));
        let l = DynCssTree::build(CssVariant::Level, m, arr.clone());
        rows.push((
            format!("level CSS m={m}"),
            opts.measure(&l, stream.probes()).total_seconds,
            l.space().direct_bytes,
        ));
    }
    // Hash directory sweep.
    let mut dir = (n / 2).next_power_of_two().max(64);
    for _ in 0..4 {
        let h = build_hash(&arr, dir);
        rows.push((
            format!("hash dir={dir}"),
            opts.measure(h.as_ref(), stream.probes()).total_seconds,
            h.space().direct_bytes,
        ));
        dir /= 4;
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (label, t, space) in rows {
        println!(
            "{:>28} {:>16} {:>16}",
            label,
            format_num(t),
            format_num(space as f64)
        );
    }
}

/// §5.1's warm-cache observation: hot-key (Zipf) streams vs uniform.
fn warmcache(opts: &Options) {
    let n = opts.scaled(5_000_000);
    let keys: Vec<u32> = KeySetBuilder::new(n).build();
    let arr = SortedArray::from_slice(&keys);
    let machine_name = opts.simulate.clone().unwrap_or_else(|| "ultrasparc".into());
    let mut machine = Machine::by_name(&machine_name).expect("machine");
    println!("\n== Warm cache: uniform vs Zipf-skewed probes (simulated {machine_name}) ==");
    println!(
        "{:>22} {:>16} {:>16}",
        "Method", "uniform L2/miss", "zipf L2/miss"
    );
    let uniform = LookupStream::successful(&keys, opts.lookups, 1);
    let zipf = LookupStream::zipf(&keys, opts.lookups, 1.0, 1);
    for m in all_methods(&arr, 16) {
        let u = simulate_lookup_protocol(m.index.as_ref(), uniform.probes(), &mut machine);
        let z = simulate_lookup_protocol(m.index.as_ref(), zipf.probes(), &mut machine);
        let lvl = u.misses_per_lookup.len() - 1;
        println!(
            "{:>22} {:>16} {:>16}",
            m.label,
            format_num(u.misses_per_lookup[lvl]),
            format_num(z.misses_per_lookup[lvl])
        );
    }
}

/// §6.3's interpolation-search claim: great on linear data, worse than
/// binary search on non-uniform data.
fn interp(opts: &Options) {
    let n = opts.scaled(5_000_000);
    println!("\n== Interpolation search vs distribution (host) ==");
    println!(
        "{:>14} {:>18} {:>18}",
        "distribution", "interp (s)", "binary (s)"
    );
    for (name, dist) in [
        ("linear", KeyDistribution::EvenlySpaced { gap: 10 }),
        (
            "jittered",
            KeyDistribution::JitteredSpaced {
                gap: 100,
                jitter: 40,
            },
        ),
        ("random", KeyDistribution::UniformRandom),
        ("polynomial", KeyDistribution::Polynomial { exponent: 4 }),
    ] {
        let keys: Vec<u32> = KeySetBuilder::new(n).distribution(dist).build();
        let arr = SortedArray::from_slice(&keys);
        let stream = LookupStream::successful(&keys, opts.lookups, 3);
        let methods = all_methods(&arr, 16);
        let interp = methods
            .iter()
            .find(|m| m.label == "interpolation search")
            .expect("present");
        let binary = methods
            .iter()
            .find(|m| m.label == "array binary search")
            .expect("present");
        let ti = run_lookup_protocol(interp.index.as_ref(), stream.probes(), 3);
        let tb = run_lookup_protocol(binary.index.as_ref(), stream.probes(), 3);
        println!(
            "{:>14} {:>18} {:>18}",
            name,
            format_num(ti.total_seconds),
            format_num(tb.total_seconds)
        );
    }
}

/// Beyond-paper: the observability layer under saturation. Sixteen
/// clients drive point probes through a `BatchServer` faster than each
/// batch window drains, so queueing is visible; every measurement
/// window reports its own p50/p99 end-to-end latency straight from the
/// server's `serve.latency.ns` histogram — the numbers an operator
/// would scrape, not an external timer. The cost of recording is then
/// asserted away against a `Registry::disabled` control (best-of-3
/// each, throughput within 5%), and one remote query renders the
/// cross-process latency tree the wire's trace field carried back from
/// the server.
fn slo(opts: &Options) {
    use ccindex_obs::{format_ns, Registry, Span};
    use ccindex_serve::{BatchServer, Request, ServeOptions, ServeStats, ShardServer};
    use ccindex_shard::RemoteShard;
    use ccindex_wire::Spec;
    use mmdb::{eq, Database, IndexKind, TableBuilder};
    use std::sync::Arc;
    use std::time::Duration;

    let n = opts.scaled(500_000);
    let per_client = (opts.lookups / 50).clamp(64, 2_000);
    let clients = 16usize;
    let batch_max = 8usize;
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64 / 2)) as i64),
            )
            .build()
            .expect("equal columns")
    };
    let mut db = Database::new();
    db.register(orders()).expect("fresh catalog");
    db.create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");

    // One saturated serving session against the supplied registry; the
    // tight window bound keeps the queue ahead of the drain so the
    // latency histogram sees real waiting, not just execute time.
    let session = |registry: Arc<Registry>| -> (f64, ServeStats) {
        let server = BatchServer::with_metrics(
            &db,
            ServeOptions {
                batch_max,
                batch_wait: Duration::from_micros(100),
            },
            Arc::clone(&registry),
        );
        let t0 = Instant::now();
        let (_, stats) = server.serve_concurrent(clients, |c, client| {
            let pending: Vec<_> = (0..per_client)
                .map(|k| {
                    let v = ((c * 2_654_435_761 + k * 48_271) % n) as i64;
                    client.submit(Request::point("orders", "amount", v))
                })
                .collect();
            for p in pending {
                p.wait().expect("served");
            }
            per_client
        });
        (t0.elapsed().as_secs_f64(), stats)
    };

    println!(
        "\n== SLO windows: {} rows, {} clients x {} probes, batch_max {} ==",
        format_num(n as f64),
        clients,
        per_client,
        batch_max
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12} {:>12} {:>9}",
        "window", "requests", "seconds", "requests/s", "p50", "p99", "depth hw"
    );
    let mut records = Vec::new();
    let requests = (clients * per_client) as f64;
    for window in 0..4usize {
        // A fresh registry per window makes each percentile pair that
        // window's own, not a lifetime blend.
        let registry = Arc::new(Registry::new());
        let (secs, stats) = session(Arc::clone(&registry));
        let latency = registry
            .find_histogram("serve.latency.ns")
            .expect("the server registers serve.latency.ns")
            .snapshot();
        let (p50, p99) = (latency.percentile(50.0), latency.percentile(99.0));
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>12} {:>12} {:>9}",
            window,
            requests as u64,
            format_num(secs),
            format_num(requests / secs),
            format_ns(p50),
            format_ns(p99),
            stats.queue_depth_high_water
        );
        records.push(
            BenchRecord::new("slo window")
                .param("window", window)
                .param("clients", clients)
                .param("batch_max", batch_max)
                .param("p50_ns", p50)
                .param("p99_ns", p99)
                .param("queue_depth_high_water", stats.queue_depth_high_water)
                .timed(requests, secs),
        );
    }

    // The overhead gate: the same session with recording on versus a
    // disabled registry (every record() call an early-out). The runs
    // interleave and each side keeps its best of five, so warmup drift
    // cannot masquerade as recording cost.
    session(Arc::new(Registry::disabled()));
    let mut on_secs = f64::INFINITY;
    let mut off_secs = f64::INFINITY;
    for _ in 0..5 {
        on_secs = on_secs.min(session(Arc::new(Registry::new())).0);
        off_secs = off_secs.min(session(Arc::new(Registry::disabled())).0);
    }
    let (on, off) = (requests / on_secs, requests / off_secs);
    println!(
        "  recording overhead: metrics-on {} req/s vs metrics-off {} req/s ({:.1}% of control)",
        format_num(on),
        format_num(off),
        100.0 * on / off
    );
    assert!(
        on >= 0.95 * off,
        "metric recording must stay within 5% of the metrics-off control \
         (on {on:.0} req/s, off {off:.0} req/s)"
    );
    records.push(
        BenchRecord::new("slo control")
            .param("metrics", "on")
            .timed(requests, on_secs),
    );
    records.push(
        BenchRecord::new("slo control")
            .param("metrics", "off")
            .timed(requests, off_secs),
    );

    // One traced query across loopback TCP: the request frame carries
    // the client's span id, the response frame carries the server's
    // decode/execute breakdown, and the client renders one tree.
    let mut server_db = Database::new();
    server_db.register(orders()).expect("fresh catalog");
    server_db
        .create_index("orders", "amount", IndexKind::FullCss)
        .expect("column");
    let server = ShardServer::spawn(server_db).expect("loopback bind");
    let shard = RemoteShard::connect(server.addr());
    let shard = shard.expect("handshake");
    let spec = Spec {
        table: "orders".into(),
        filters: vec![eq("amount", 42)],
        ..Spec::default()
    };
    let mut span = Span::root("client");
    let rows = shard
        .run_spec_traced(&spec, &mut span)
        .expect("remote query");
    let matched = match &rows {
        mmdb::ResultRows::Rids(r) => r.len(),
        mmdb::ResultRows::Joined(r) => r.len(),
        mmdb::ResultRows::Groups(r) => r.len(),
    };
    let tree = span.finish();
    println!("  cross-process latency tree ({matched} matching row(s)):");
    for line in tree.render().lines() {
        println!("    {line}");
    }
    assert!(
        tree.find("decode").is_some() && tree.find("execute").is_some(),
        "the server's span children must propagate back over the wire:\n{}",
        tree.render()
    );
    records.push(
        BenchRecord::new("slo traced query")
            .param("transport", "loopback tcp")
            .timed(1.0, tree.elapsed_ns as f64 / 1e9),
    );
    flush_bench("slo", &records);
}

/// Beyond-paper: cold start from the paged on-disk catalog versus a
/// full rebuild from rows. The rebuild path re-sorts every RID list and
/// re-builds every index; the open path decodes validated pages — the
/// CSS directory levels load as stored, no per-key work — so opening
/// should beat rebuilding by a wide margin (the acceptance bar is 5x at
/// the 4M-key paper scale). Before anything is timed, the three
/// catalogs — live, reopened from disk, and snapshot-transferred over
/// loopback TCP — are asserted to answer the probe battery
/// byte-identically.
fn coldstart(opts: &Options) {
    use ccindex_serve::ShardServer;
    use ccindex_shard::{RemoteShard, ShardBackend};
    use mmdb::{between, eq, sum, Database, IndexKind, ResultRows, TableBuilder};

    let n = opts.scaled(4_000_000);
    let orders = || {
        TableBuilder::new("orders")
            .int_column(
                "amount",
                (0..n).map(|i| ((i as u64).wrapping_mul(48_271) % (n as u64)) as i64),
            )
            .str_column("day", (0..n).map(|i| ["mon", "tue", "wed", "thu"][i % 4]))
            .build()
            .expect("equal columns")
    };
    let build = || {
        let mut db = Database::new();
        db.register(orders()).expect("fresh catalog");
        db.create_index("orders", "amount", IndexKind::FullCss)
            .expect("column");
        db.create_index("orders", "amount", IndexKind::LevelCss)
            .expect("column");
        db.create_index("orders", "amount", IndexKind::Hash)
            .expect("column");
        db.create_index("orders", "day", IndexKind::Hash)
            .expect("column");
        db
    };
    let battery = |db: &Database| -> Vec<ResultRows> {
        vec![
            db.query("orders")
                .filter(eq("amount", (n / 3) as i64))
                .run()
                .expect("point")
                .rows()
                .clone(),
            db.query("orders")
                .filter(between("amount", (n / 4) as i64, (n / 2) as i64))
                .using(IndexKind::FullCss)
                .run()
                .expect("range")
                .rows()
                .clone(),
            db.query("orders")
                .filter(between("amount", 0, (n / 5) as i64))
                .group_by("day", sum("amount"))
                .run()
                .expect("group")
                .rows()
                .clone(),
        ]
    };

    println!(
        "\n== Cold start: open-from-disk vs rebuild-from-rows, {} keys ==",
        format_num(n as f64)
    );

    // The reference build (also the first rebuild timing sample).
    let t0 = Instant::now();
    let live = build();
    let rebuild_secs = t0.elapsed().as_secs_f64();
    let reference = battery(&live);

    // Save once; the open path is what cold start measures.
    let dir = std::env::temp_dir().join(format!("ccindex-coldstart-{}", std::process::id()));
    let created = std::fs::create_dir_all(&dir);
    created.expect("temp dir");
    let path = dir.join("catalog.ccsp");
    let t0 = Instant::now();
    live.save_to(&path).expect("save");
    let save_secs = t0.elapsed().as_secs_f64();
    let saved_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let t0 = Instant::now();
    let reopened = Database::open_from(&path).expect("open");
    let open_secs = t0.elapsed().as_secs_f64();
    assert_eq!(battery(&reopened), reference, "reopened catalog diverged");

    // Snapshot transfer: a fresh server bootstrapped over loopback TCP
    // from the reopened catalog's serialized pages, in CRC-checked
    // chunks — the path a rebalanced shard takes.
    let server = ShardServer::spawn(reopened).expect("server");
    let client = RemoteShard::connect(server.addr().as_str());
    let client = client.expect("connect");
    let t0 = Instant::now();
    let fetched = client.fetch_snapshot().expect("fetch");
    let transferred = Database::open_from_bytes(fetched, "snapshot").expect("decode");
    let transfer_secs = t0.elapsed().as_secs_f64();
    server.shutdown();
    assert_eq!(
        battery(&transferred),
        reference,
        "snapshot-transferred catalog diverged"
    );
    std::fs::remove_dir_all(&dir).ok();

    let speedup = rebuild_secs / open_secs.max(1e-9);
    println!("{:>22} {:>12} {:>14}", "path", "seconds", "keys/s");
    for (label, secs) in [
        ("rebuild from rows", rebuild_secs),
        ("save to disk", save_secs),
        ("open from disk", open_secs),
        ("snapshot transfer", transfer_secs),
    ] {
        println!(
            "{:>22} {:>12} {:>14}",
            label,
            format_num(secs),
            format_num(n as f64 / secs.max(1e-9))
        );
    }
    println!(
        "  open-from-disk speedup over rebuild: {:.1}x  (container: {} bytes)",
        speedup, saved_bytes
    );
    if opts.paper_scale && speedup < 5.0 {
        println!("  WARNING: below the 5x acceptance bar at paper scale");
    }

    let records = vec![
        BenchRecord::new("cold start")
            .param("path", "rebuild_from_rows")
            .param("keys", n)
            .timed(n as f64, rebuild_secs),
        BenchRecord::new("cold start")
            .param("path", "save_to_disk")
            .param("keys", n)
            .param("container_bytes", saved_bytes)
            .timed(n as f64, save_secs),
        BenchRecord::new("cold start")
            .param("path", "open_from_disk")
            .param("keys", n)
            .param("speedup_vs_rebuild", format!("{speedup:.2}"))
            .timed(n as f64, open_secs),
        BenchRecord::new("cold start")
            .param("path", "snapshot_transfer")
            .param("keys", n)
            .timed(n as f64, transfer_secs),
    ];
    flush_bench("coldstart", &records);
}
