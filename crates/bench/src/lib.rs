//! Shared benchmark-harness code for regenerating the paper's tables and
//! figures.
//!
//! The `figures` binary (in `src/bin`) prints each table/figure's rows or
//! series; the Criterion benches under `benches/` provide statistically
//! robust wall-clock versions of the timing experiments. Both share the
//! setup code here: building every index method over a common key set,
//! running the paper's 100 k-lookup protocol, measuring wall-clock and
//! simulated time, and formatting the output.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod methods;
pub mod protocol;
pub mod report;

pub use methods::{all_methods, batched_comparison_methods, MethodInstance};
pub use protocol::{
    compare_sequential_vs_batched, run_lookup_protocol, run_lookup_protocol_with,
    simulate_lookup_protocol, simulate_lookup_protocol_with, BatchComparison, Measurement,
    ProbeMode,
};
pub use report::{
    print_series, render_bench_json, validate_bench_json, write_bench_json, BenchRecord, Series,
};
