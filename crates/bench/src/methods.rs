//! Building the paper's competing methods over one key set.

use bplus::BPlusTree;
use bst_index::BinaryTreeIndex;
use ccindex_common::{SearchIndex, SortedArray};
use css_tree::{CssVariant, DynCssTree};
use hashindex::HashIndex;
use sorted_search::{BinarySearch, InterpolationSearch};
use ttree::TTree;

/// One built method, ready for the lookup protocol.
pub struct MethodInstance {
    /// Label used in figure output (matches the paper's legends).
    pub label: String,
    /// The built index.
    pub index: Box<dyn SearchIndex<u32>>,
}

impl MethodInstance {
    fn new(label: impl Into<String>, index: Box<dyn SearchIndex<u32>>) -> Self {
        Self {
            label: label.into(),
            index,
        }
    }
}

/// Build a T-tree whose *entry count* is the given sweep value (entries
/// per node in the Fig. 12/13 sense).
pub fn build_ttree(keys: &SortedArray<u32>, entries: usize) -> Box<dyn SearchIndex<u32>> {
    macro_rules! sizes {
        ($($cap:literal),+) => {
            match entries {
                $( $cap => Box::new(TTree::<u32, $cap>::build(keys.as_slice())) as Box<dyn SearchIndex<u32>>, )+
                other => panic!("unsupported T-tree entry count {other}"),
            }
        };
    }
    sizes!(4, 8, 12, 16, 24, 32, 48, 64, 96, 128)
}

/// Build a B+-tree whose *slot count* is the given sweep value (slots =
/// 2 × branching).
pub fn build_bplus(keys: &SortedArray<u32>, slots: usize) -> Box<dyn SearchIndex<u32>> {
    macro_rules! sizes {
        ($($slots:literal => $br:literal),+ $(,)?) => {
            match slots {
                $( $slots => Box::new(BPlusTree::<u32, $br>::from_shared(keys.clone())) as Box<dyn SearchIndex<u32>>, )+
                other => panic!("unsupported B+-tree slot count {other}"),
            }
        };
    }
    sizes!(4 => 2, 8 => 4, 16 => 8, 24 => 12, 32 => 16, 48 => 24, 64 => 32, 128 => 64)
}

/// Build a hash index with an explicit directory size.
pub fn build_hash(keys: &SortedArray<u32>, directory: usize) -> Box<dyn SearchIndex<u32>> {
    Box::new(HashIndex::<u32, 7>::build_with_directory(
        keys.as_slice(),
        directory,
    ))
}

/// The methods of the sequential-vs-batched comparison: both CSS
/// variants (which override the batch entry points with interleaved
/// descents) against the B+-tree and array binary search (which answer
/// batches with the sequential default) — the baseline quartet of the
/// batching study.
pub fn batched_comparison_methods(
    keys: &SortedArray<u32>,
    node_ints: usize,
) -> Vec<MethodInstance> {
    vec![
        MethodInstance::new(
            "array binary search",
            Box::new(BinarySearch::from_shared(keys.clone())),
        ),
        MethodInstance::new("B+-tree", build_bplus(keys, node_ints)),
        MethodInstance::new(
            "full CSS-tree",
            Box::new(DynCssTree::build(CssVariant::Full, node_ints, keys.clone())),
        ),
        MethodInstance::new(
            "level CSS-tree",
            Box::new(DynCssTree::build(
                CssVariant::Level,
                node_ints,
                keys.clone(),
            )),
        ),
    ]
}

/// All eight methods of Figs. 10–11 at one node size (keys per node for
/// the tree methods; 8 or 16 integers in the paper).
pub fn all_methods(keys: &SortedArray<u32>, node_ints: usize) -> Vec<MethodInstance> {
    let css = |variant| {
        Box::new(DynCssTree::build(variant, node_ints, keys.clone())) as Box<dyn SearchIndex<u32>>
    };
    vec![
        MethodInstance::new(
            "array binary search",
            Box::new(BinarySearch::from_shared(keys.clone())),
        ),
        MethodInstance::new(
            "tree binary search",
            Box::new(BinaryTreeIndex::build(keys.as_slice())),
        ),
        MethodInstance::new(
            "interpolation search",
            Box::new(InterpolationSearch::from_shared(keys.clone())),
        ),
        MethodInstance::new("T-tree", build_ttree(keys, node_ints)),
        MethodInstance::new("B+-tree", build_bplus(keys, node_ints)),
        MethodInstance::new("full CSS-tree", css(CssVariant::Full)),
        MethodInstance::new("level CSS-tree", css(CssVariant::Level)),
        MethodInstance::new(
            "hash",
            Box::new(HashIndex::<u32, 7>::build(keys.as_slice())),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_are_built_and_consistent() {
        let keys = SortedArray::from_slice(&(0..10_000u32).map(|i| i * 2).collect::<Vec<_>>());
        for node_ints in [8usize, 16] {
            let methods = all_methods(&keys, node_ints);
            assert_eq!(methods.len(), 8);
            for m in &methods {
                assert_eq!(m.index.search(5000 * 2), Some(5000), "{}", m.label);
                assert_eq!(m.index.search(5000 * 2 + 1), None, "{}", m.label);
            }
        }
    }

    #[test]
    fn sweep_builders_cover_figure_12_sizes() {
        let keys = SortedArray::from_slice(&(0..5_000u32).collect::<Vec<_>>());
        for entries in [4usize, 8, 12, 16, 24, 32, 48, 64, 96, 128] {
            let t = build_ttree(&keys, entries);
            assert_eq!(t.search(100), Some(100), "ttree {entries}");
        }
        for slots in [4usize, 8, 16, 24, 32, 48, 64, 128] {
            let b = build_bplus(&keys, slots);
            assert_eq!(b.search(100), Some(100), "b+ {slots}");
        }
        let h = build_hash(&keys, 1 << 10);
        assert_eq!(h.search(100), Some(100));
    }
}
