//! The paper's measurement protocol (§6.1).
//!
//! "We performed 100,000 searches on randomly chosen matching keys. We
//! repeated each test five times and report the minimal time." —
//! [`run_lookup_protocol`] for host wall-clock, and
//! [`simulate_lookup_protocol`] for the cache-simulated 1998 machines.

use cachesim::{Machine, SimTracer};
use ccindex_common::SearchIndex;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Total seconds for the whole probe batch (minimum over repeats for
    /// wall-clock; single deterministic pass for simulation).
    pub total_seconds: f64,
    /// Per-lookup nanoseconds.
    pub ns_per_lookup: f64,
    /// Simulated cache misses per lookup, by level (empty for wall-clock).
    pub misses_per_lookup: Vec<f64>,
    /// Hits observed (sanity check: all-matching streams must all hit).
    pub hits: usize,
}

/// Wall-clock: best of `repeats` runs over the probe stream.
pub fn run_lookup_protocol(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    repeats: usize,
) -> Measurement {
    assert!(repeats >= 1);
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        let mut found = 0usize;
        for &p in probes {
            if index.search(p).is_some() {
                found += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        hits = found;
        if elapsed < best {
            best = elapsed;
        }
    }
    Measurement {
        total_seconds: best,
        ns_per_lookup: best * 1e9 / probes.len().max(1) as f64,
        misses_per_lookup: Vec::new(),
        hits,
    }
}

/// Simulation: replay the probe stream's memory trace through `machine`'s
/// cache hierarchy (cold start, then successive lookups warm the upper
/// levels exactly as in the paper's runs) and evaluate its time model.
pub fn simulate_lookup_protocol(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    machine: &mut Machine,
) -> Measurement {
    machine.hierarchy.flush(true);
    let mut hits = 0usize;
    {
        let mut tracer = SimTracer::new(&mut machine.hierarchy);
        for &p in probes {
            if index.search_traced(p, &mut tracer).is_some() {
                hits += 1;
            }
        }
    }
    let stats = machine.hierarchy.stats();
    let outcome = machine.spec.time_model().evaluate(&stats);
    let lookups = probes.len().max(1) as f64;
    Measurement {
        total_seconds: outcome.seconds,
        ns_per_lookup: outcome.seconds * 1e9 / lookups,
        misses_per_lookup: stats
            .levels
            .iter()
            .map(|l| l.misses as f64 / lookups)
            .collect(),
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::all_methods;
    use ccindex_common::SortedArray;
    use workload::LookupStream;

    #[test]
    fn wall_clock_protocol_counts_hits() {
        let keys = SortedArray::from_slice(&(0..10_000u32).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 1000, 7);
        for m in all_methods(&keys, 16) {
            let r = run_lookup_protocol(m.index.as_ref(), stream.probes(), 2);
            assert_eq!(r.hits, 1000, "{}", m.label);
            assert!(r.total_seconds >= 0.0);
        }
    }

    #[test]
    fn simulation_reports_per_level_misses() {
        let keys = SortedArray::from_slice(&(0..200_000u32).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 2000, 7);
        let mut machine = Machine::ultrasparc2();
        let methods = all_methods(&keys, 16);
        let css = methods.iter().find(|m| m.label == "full CSS-tree").unwrap();
        let bin = methods
            .iter()
            .find(|m| m.label == "array binary search")
            .unwrap();
        let r_css = simulate_lookup_protocol(css.index.as_ref(), stream.probes(), &mut machine);
        let r_bin = simulate_lookup_protocol(bin.index.as_ref(), stream.probes(), &mut machine);
        assert_eq!(r_css.misses_per_lookup.len(), 2);
        // The paper's core claim, on simulated 1998 hardware: CSS-trees
        // take far fewer L2 misses per lookup than binary search.
        assert!(
            r_css.misses_per_lookup[1] < r_bin.misses_per_lookup[1] / 2.0,
            "css {:?} vs binary {:?}",
            r_css.misses_per_lookup,
            r_bin.misses_per_lookup
        );
        assert!(r_css.total_seconds < r_bin.total_seconds);
    }
}
