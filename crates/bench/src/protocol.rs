//! The paper's measurement protocol (§6.1), in sequential and batched
//! form.
//!
//! "We performed 100,000 searches on randomly chosen matching keys. We
//! repeated each test five times and report the minimal time." —
//! [`run_lookup_protocol`] for host wall-clock, and
//! [`simulate_lookup_protocol`] for the cache-simulated 1998 machines.
//!
//! Beyond the paper, every protocol also runs in a *batched* mode
//! ([`ProbeMode::Batched`]) that hands the index whole probe blocks via
//! `search_batch`, so the sequential-vs-interleaved trade-off of the
//! batch-aware structures is measurable for every method under the same
//! probe stream — [`compare_sequential_vs_batched`] emits the paired
//! measurements.

use crate::methods::MethodInstance;
use cachesim::{Machine, SimTracer};
use ccindex_common::SearchIndex;
use std::time::Instant;

/// How the lookup protocol hands probes to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// One `search` call per probe — the paper's original protocol.
    Sequential,
    /// `search_batch` calls over blocks of the given size; batch-aware
    /// indexes answer each block with an interleaved multi-lane descent.
    Batched {
        /// Probes per `search_batch` call.
        block: usize,
    },
}

/// One measured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Total seconds for the whole probe batch (minimum over repeats for
    /// wall-clock; single deterministic pass for simulation).
    pub total_seconds: f64,
    /// Per-lookup nanoseconds.
    pub ns_per_lookup: f64,
    /// Simulated cache misses per lookup, by level (empty for wall-clock).
    pub misses_per_lookup: Vec<f64>,
    /// Hits observed (sanity check: all-matching streams must all hit).
    pub hits: usize,
}

/// Wall-clock, sequential: best of `repeats` runs over the probe stream.
pub fn run_lookup_protocol(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    repeats: usize,
) -> Measurement {
    run_lookup_protocol_with(index, probes, repeats, ProbeMode::Sequential)
}

/// Wall-clock with an explicit probe mode: best of `repeats` runs.
pub fn run_lookup_protocol_with(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    repeats: usize,
    mode: ProbeMode,
) -> Measurement {
    assert!(repeats >= 1);
    let mut best = f64::INFINITY;
    let mut hits = 0usize;
    for _ in 0..repeats {
        let start = Instant::now();
        let mut found = 0usize;
        match mode {
            ProbeMode::Sequential => {
                for &p in probes {
                    if index.search(p).is_some() {
                        found += 1;
                    }
                }
            }
            ProbeMode::Batched { block } => {
                assert!(block >= 1, "batch block must be non-empty");
                for chunk in probes.chunks(block) {
                    found += index.search_batch(chunk).iter().flatten().count();
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        hits = found;
        if elapsed < best {
            best = elapsed;
        }
    }
    Measurement {
        total_seconds: best,
        ns_per_lookup: best * 1e9 / probes.len().max(1) as f64,
        misses_per_lookup: Vec::new(),
        hits,
    }
}

/// Simulation, sequential: replay the probe stream's memory trace through
/// `machine`'s cache hierarchy (cold start, then successive lookups warm
/// the upper levels exactly as in the paper's runs) and evaluate its time
/// model.
pub fn simulate_lookup_protocol(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    machine: &mut Machine,
) -> Measurement {
    simulate_lookup_protocol_with(index, probes, machine, ProbeMode::Sequential)
}

/// Simulation with an explicit probe mode. In batched mode the trace the
/// hierarchy replays is the *interleaved* access pattern the batch-aware
/// structures emit, which is the whole point of measuring it separately.
pub fn simulate_lookup_protocol_with(
    index: &dyn SearchIndex<u32>,
    probes: &[u32],
    machine: &mut Machine,
    mode: ProbeMode,
) -> Measurement {
    machine.hierarchy.flush(true);
    let mut hits = 0usize;
    {
        let mut tracer = SimTracer::new(&mut machine.hierarchy);
        match mode {
            ProbeMode::Sequential => {
                for &p in probes {
                    if index.search_traced(p, &mut tracer).is_some() {
                        hits += 1;
                    }
                }
            }
            ProbeMode::Batched { block } => {
                assert!(block >= 1, "batch block must be non-empty");
                for chunk in probes.chunks(block) {
                    hits += index
                        .search_batch_traced(chunk, &mut tracer)
                        .iter()
                        .flatten()
                        .count();
                }
            }
        }
    }
    let stats = machine.hierarchy.stats();
    let outcome = machine.spec.time_model().evaluate(&stats);
    let lookups = probes.len().max(1) as f64;
    Measurement {
        total_seconds: outcome.seconds,
        ns_per_lookup: outcome.seconds * 1e9 / lookups,
        misses_per_lookup: stats
            .levels
            .iter()
            .map(|l| l.misses as f64 / lookups)
            .collect(),
        hits,
    }
}

/// Paired sequential/batched measurements for one method.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// Method label (matches [`MethodInstance::label`]).
    pub label: String,
    /// The paper's per-probe protocol.
    pub sequential: Measurement,
    /// The batched protocol at the requested block size.
    pub batched: Measurement,
}

/// Measure every method under both probe modes over the same stream.
///
/// With `machine` set the measurements are cache-simulated (the batched
/// trace differs from the sequential one exactly for batch-aware
/// methods); otherwise they are host wall-clock, best of `repeats`.
pub fn compare_sequential_vs_batched(
    methods: &[MethodInstance],
    probes: &[u32],
    repeats: usize,
    block: usize,
    mut machine: Option<&mut Machine>,
) -> Vec<BatchComparison> {
    methods
        .iter()
        .map(|m| {
            let (sequential, batched) = match machine.as_deref_mut() {
                Some(machine) => (
                    simulate_lookup_protocol_with(
                        m.index.as_ref(),
                        probes,
                        machine,
                        ProbeMode::Sequential,
                    ),
                    simulate_lookup_protocol_with(
                        m.index.as_ref(),
                        probes,
                        machine,
                        ProbeMode::Batched { block },
                    ),
                ),
                None => (
                    run_lookup_protocol_with(
                        m.index.as_ref(),
                        probes,
                        repeats,
                        ProbeMode::Sequential,
                    ),
                    run_lookup_protocol_with(
                        m.index.as_ref(),
                        probes,
                        repeats,
                        ProbeMode::Batched { block },
                    ),
                ),
            };
            BatchComparison {
                label: m.label.clone(),
                sequential,
                batched,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::all_methods;
    use ccindex_common::SortedArray;
    use workload::LookupStream;

    #[test]
    fn wall_clock_protocol_counts_hits() {
        let keys = SortedArray::from_slice(&(0..10_000u32).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 1000, 7);
        for m in all_methods(&keys, 16) {
            let r = run_lookup_protocol(m.index.as_ref(), stream.probes(), 2);
            assert_eq!(r.hits, 1000, "{}", m.label);
            assert!(r.total_seconds >= 0.0);
        }
    }

    #[test]
    fn batched_protocol_counts_the_same_hits() {
        let keys = SortedArray::from_slice(&(0..20_000u32).map(|i| i * 2).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 1000, 11);
        for m in all_methods(&keys, 16) {
            let seq = run_lookup_protocol_with(
                m.index.as_ref(),
                stream.probes(),
                1,
                ProbeMode::Sequential,
            );
            for block in [1usize, 7, 256, 5_000] {
                let bat = run_lookup_protocol_with(
                    m.index.as_ref(),
                    stream.probes(),
                    1,
                    ProbeMode::Batched { block },
                );
                assert_eq!(bat.hits, seq.hits, "{} block={block}", m.label);
            }
        }
    }

    #[test]
    fn compare_emits_paired_rows_for_the_baseline_quartet() {
        let keys = SortedArray::from_slice(&(0..50_000u32).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 2_000, 5);
        let methods = crate::methods::batched_comparison_methods(&keys, 16);

        // Wall-clock pairing.
        let rows = compare_sequential_vs_batched(&methods, stream.probes(), 1, 256, None);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "array binary search",
                "B+-tree",
                "full CSS-tree",
                "level CSS-tree"
            ]
        );
        for r in &rows {
            assert_eq!(r.sequential.hits, 2_000, "{}", r.label);
            assert_eq!(r.batched.hits, 2_000, "{}", r.label);
        }

        // Simulated pairing: identical work, so identical per-level miss
        // *totals* for non-batch-aware methods; batch-aware methods may
        // differ in pattern but must still answer everything.
        let mut machine = Machine::ultrasparc2();
        let rows =
            compare_sequential_vs_batched(&methods, stream.probes(), 1, 256, Some(&mut machine));
        for r in &rows {
            assert_eq!(r.sequential.hits, r.batched.hits, "{}", r.label);
            assert!(!r.sequential.misses_per_lookup.is_empty(), "{}", r.label);
            assert!(!r.batched.misses_per_lookup.is_empty(), "{}", r.label);
        }
    }

    #[test]
    fn simulation_reports_per_level_misses() {
        let keys = SortedArray::from_slice(&(0..200_000u32).collect::<Vec<_>>());
        let stream = LookupStream::successful(keys.as_slice(), 2000, 7);
        let mut machine = Machine::ultrasparc2();
        let methods = all_methods(&keys, 16);
        let css = methods.iter().find(|m| m.label == "full CSS-tree").unwrap();
        let bin = methods
            .iter()
            .find(|m| m.label == "array binary search")
            .unwrap();
        let r_css = simulate_lookup_protocol(css.index.as_ref(), stream.probes(), &mut machine);
        let r_bin = simulate_lookup_protocol(bin.index.as_ref(), stream.probes(), &mut machine);
        assert_eq!(r_css.misses_per_lookup.len(), 2);
        // The paper's core claim, on simulated 1998 hardware: CSS-trees
        // take far fewer L2 misses per lookup than binary search.
        assert!(
            r_css.misses_per_lookup[1] < r_bin.misses_per_lookup[1] / 2.0,
            "css {:?} vs binary {:?}",
            r_css.misses_per_lookup,
            r_bin.misses_per_lookup
        );
        assert!(r_css.total_seconds < r_bin.total_seconds);
    }
}
