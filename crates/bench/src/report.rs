//! Plain-text figure output.
//!
//! Each figure is printed as aligned columns (x value, then one column per
//! series) so the output can be eyeballed against the paper or piped to
//! gnuplot.

/// One plotted line.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Print a table of series sharing an x axis.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("\n== {title} ==");
    println!("(y: {y_label})");
    print!("{:>14}", x_label);
    for s in series {
        print!("  {:>22}", truncate(&s.name, 22));
    }
    println!();
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(Vec::new(), |mut acc, x| {
            if !acc.iter().any(|&v: &f64| (v - x).abs() < 1e-9) {
                acc.push(x);
            }
            acc
        });
    for x in xs {
        print!("{:>14}", format_num(x));
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.0 - x).abs() < 1e-9)
                .map(|p| p.1)
            {
                Some(y) => print!("  {:>22}", format_num(y)),
                None => print!("  {:>22}", "-"),
            }
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Compact human formatting: integers plainly, small floats with
/// significant digits, big numbers with thousands grouping.
pub fn format_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let i = v as i64;
        if i.abs() >= 10_000 {
            group_thousands(i)
        } else {
            format!("{i}")
        }
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

fn group_thousands(mut v: i64) -> String {
    let neg = v < 0;
    v = v.abs();
    let mut parts = Vec::new();
    while v >= 1000 {
        parts.push(format!("{:03}", v % 1000));
        v /= 1000;
    }
    parts.push(format!("{v}"));
    parts.reverse();
    format!("{}{}", if neg { "-" } else { "" }, parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_num(5.0), "5");
        assert_eq!(format_num(25_000_000.0), "25,000,000");
        assert_eq!(format_num(0.123456789), "0.123457");
        assert_eq!(format_num(2.34567), "2.346");
        assert_eq!(format_num(12345.678), "12345.7");
        assert_eq!(format_num(-12000.0), "-12,000");
    }

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("css");
        s.push(1.0, 2.0);
        s.push(10.0, 3.0);
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn print_does_not_panic_on_ragged_series() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        a.push(2.0, 2.0);
        let mut b = Series::new("b");
        b.push(2.0, 4.0);
        print_series("test", "x", "y", &[a, b]);
    }
}
