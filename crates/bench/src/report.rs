//! Plain-text figure output.
//!
//! Each figure is printed as aligned columns (x value, then one column per
//! series) so the output can be eyeballed against the paper or piped to
//! gnuplot.

/// One plotted line.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Print a table of series sharing an x axis.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("\n== {title} ==");
    println!("(y: {y_label})");
    print!("{:>14}", x_label);
    for s in series {
        print!("  {:>22}", truncate(&s.name, 22));
    }
    println!();
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(Vec::new(), |mut acc, x| {
            if !acc.iter().any(|&v: &f64| (v - x).abs() < 1e-9) {
                acc.push(x);
            }
            acc
        });
    for x in xs {
        print!("{:>14}", format_num(x));
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.0 - x).abs() < 1e-9)
                .map(|p| p.1)
            {
                Some(y) => print!("  {:>22}", format_num(y)),
                None => print!("  {:>22}", "-"),
            }
        }
        println!();
    }
}

/// One machine-readable benchmark measurement: what ran (`name` plus
/// free-form `params`), and how fast (`ns_per_op` / `ops_per_sec`). The
/// `figures` subcommands collect these alongside their human tables and
/// flush them with [`write_bench_json`].
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    /// What was measured (e.g. `"served points"`, `"group-by pipeline"`).
    pub name: String,
    /// Configuration axes as ordered key/value pairs (client counts,
    /// shard counts, writer modes, ...). Values are kept as strings so
    /// one schema covers every figure.
    pub params: Vec<(String, String)>,
    /// Nanoseconds per operation (probe, request, query — the `name`
    /// says which).
    pub ns_per_op: f64,
    /// Operations per second — `1e9 / ns_per_op`, recorded explicitly so
    /// consumers need no arithmetic.
    pub ops_per_sec: f64,
}

impl BenchRecord {
    /// A record with no parameters or timings yet.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Append one configuration axis.
    pub fn param(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.params.push((key.to_owned(), value.to_string()));
        self
    }

    /// Fill both timing fields from `ops` operations taking `seconds`.
    pub fn timed(mut self, ops: f64, seconds: f64) -> Self {
        if ops > 0.0 && seconds > 0.0 {
            self.ns_per_op = seconds * 1e9 / ops;
            self.ops_per_sec = ops / seconds;
        }
        self
    }
}

/// Write `records` as `BENCH_<figure>.json` in the working directory and
/// return the path. The JSON is hand-rolled (the workspace takes no
/// dependencies): an object with the figure name and one entry per
/// record — `{"name", "params": {..}, "ns_per_op", "ops_per_sec"}`.
/// Every write is validated against the shared schema first
/// ([`validate_bench_json`]), so a malformed emitter fails its own run
/// instead of shipping a file downstream tooling can't parse.
pub fn write_bench_json(
    figure: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let json = render_bench_json(figure, records);
    validate_bench_json(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let path = std::path::PathBuf::from(format!("BENCH_{figure}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Check `json` against the shared `BENCH_*.json` schema: a single
/// object `{"figure": <string>, "records": [...]}` where every record
/// is `{"name": <string>, "params": {<string>: <string>, ...},
/// "ns_per_op": <number ≥ 0>, "ops_per_sec": <number ≥ 0>}` — the shape
/// [`render_bench_json`] produces and CI asserts for every emitted
/// figure file. Returns a one-line description of the first violation.
pub fn validate_bench_json(json: &str) -> Result<(), String> {
    let mut p = SchemaParser::new(json);
    p.expect_char('{')?;
    p.expect_key("figure")?;
    p.parse_string()?;
    p.expect_char(',')?;
    p.expect_key("records")?;
    p.expect_char('[')?;
    if !p.try_char(']') {
        loop {
            p.parse_record()?;
            if p.try_char(']') {
                break;
            }
            p.expect_char(',')?;
        }
    }
    p.expect_char('}')?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

/// The minimal recursive-descent reader behind [`validate_bench_json`]:
/// just enough JSON to prove the fixed bench schema, not a general
/// parser.
struct SchemaParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SchemaParser<'a> {
    fn new(json: &'a str) -> Self {
        Self {
            bytes: json.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.try_char(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}", self.pos))
        }
    }

    fn try_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `"key":` with the exact expected name.
    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let got = self.parse_string()?;
        if got != key {
            return Err(format!("expected key \"{key}\", found \"{got}\""));
        }
        self.expect_char(':')
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            // 4 hex digits; decoded value unused by the
                            // schema, so just consume them.
                            for _ in 0..4 {
                                self.pos += 1;
                                if !self.bytes.get(self.pos).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at byte {}", self.pos));
                                }
                            }
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }

    /// One `records[]` entry, all four fields in render order.
    fn parse_record(&mut self) -> Result<(), String> {
        self.expect_char('{')?;
        self.expect_key("name")?;
        self.parse_string()?;
        self.expect_char(',')?;
        self.expect_key("params")?;
        self.expect_char('{')?;
        if !self.try_char('}') {
            loop {
                self.parse_string()?;
                self.expect_char(':')?;
                self.parse_string()?;
                if self.try_char('}') {
                    break;
                }
                self.expect_char(',')?;
            }
        }
        self.expect_char(',')?;
        self.expect_key("ns_per_op")?;
        let ns = self.parse_number()?;
        self.expect_char(',')?;
        self.expect_key("ops_per_sec")?;
        let ops = self.parse_number()?;
        self.expect_char('}')?;
        if !(ns.is_finite() && ns >= 0.0 && ops.is_finite() && ops >= 0.0) {
            return Err(format!(
                "timings must be finite and non-negative, got ns_per_op={ns} ops_per_sec={ops}"
            ));
        }
        Ok(())
    }
}

/// The JSON text [`write_bench_json`] writes, for callers (and tests)
/// that want the bytes without the file.
pub fn render_bench_json(figure: &str, records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"figure\": {},\n", json_string(figure)));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": {}, ", json_string(&r.name)));
        out.push_str("\"params\": {");
        for (j, (k, v)) in r.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
        }
        out.push_str("}, ");
        out.push_str(&format!(
            "\"ns_per_op\": {}, \"ops_per_sec\": {}",
            json_number(r.ns_per_op),
            json_number(r.ops_per_sec)
        ));
        out.push_str(if i + 1 < records.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no Infinity/NaN literals; clamp non-finite values to 0.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Compact human formatting: integers plainly, small floats with
/// significant digits, big numbers with thousands grouping.
pub fn format_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let i = v as i64;
        if i.abs() >= 10_000 {
            group_thousands(i)
        } else {
            format!("{i}")
        }
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

fn group_thousands(mut v: i64) -> String {
    let neg = v < 0;
    v = v.abs();
    let mut parts = Vec::new();
    while v >= 1000 {
        parts.push(format!("{:03}", v % 1000));
        v /= 1000;
    }
    parts.push(format!("{v}"));
    parts.reverse();
    format!("{}{}", if neg { "-" } else { "" }, parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_num(5.0), "5");
        assert_eq!(format_num(25_000_000.0), "25,000,000");
        assert_eq!(format_num(0.123456789), "0.123457");
        assert_eq!(format_num(2.34567), "2.346");
        assert_eq!(format_num(12345.678), "12345.7");
        assert_eq!(format_num(-12000.0), "-12,000");
    }

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("css");
        s.push(1.0, 2.0);
        s.push(10.0, 3.0);
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn bench_records_render_as_valid_json() {
        let records = [
            BenchRecord::new("served points")
                .param("clients", 4)
                .param("writer", "continuous")
                .timed(1_000.0, 0.5),
            BenchRecord::new("a \"quoted\"\nname").timed(0.0, 0.0),
        ];
        let json = render_bench_json(concat!("test_", "figure"), &records);
        assert!(json.contains("\"figure\": \"test_figure\""));
        assert!(json.contains("\"name\": \"served points\""));
        assert!(json.contains("\"clients\": \"4\", \"writer\": \"continuous\""));
        assert!(json.contains("\"ns_per_op\": 500000"));
        assert!(json.contains("\"ops_per_sec\": 2000"));
        // Escapes keep the output parseable; untimed records stay 0.
        assert!(json.contains("\\\"quoted\\\"\\nname"));
        assert!(json.contains("\"ns_per_op\": 0, \"ops_per_sec\": 0"));
        // Balanced braces/brackets (a cheap well-formedness proxy given
        // the workspace has no JSON parser to round-trip through).
        let count = |c: char| json.matches(c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    fn validator_accepts_everything_the_renderer_emits() {
        let cases: Vec<Vec<BenchRecord>> = vec![
            vec![],
            vec![BenchRecord::new("plain").timed(1_000.0, 0.5)],
            vec![
                BenchRecord::new("a \"quoted\"\nname")
                    .param("clients", 4)
                    .param("writer", "continuous")
                    .timed(1_000.0, 0.5),
                BenchRecord::new("untimed"),
            ],
        ];
        for records in &cases {
            let json = render_bench_json("fig", records);
            assert_eq!(validate_bench_json(&json), Ok(()), "{json}");
        }
    }

    #[test]
    fn validator_rejects_schema_violations() {
        let reject = |json: &str, why: &str| {
            assert!(validate_bench_json(json).is_err(), "{why}: {json}");
        };
        reject("", "empty input");
        reject("{}", "missing keys");
        reject("{\"figure\": \"f\", \"records\": []}trailing", "junk after");
        reject(
            "{\"figure\": \"f\", \"records\": [{\"name\": \"x\"}]}",
            "record missing timing fields",
        );
        reject(
            "{\"figure\": \"f\", \"records\": [{\"name\": \"x\", \"params\": {}, \
             \"ns_per_op\": -1, \"ops_per_sec\": 0}]}",
            "negative timing",
        );
        reject(
            "{\"figure\": \"f\", \"records\": [{\"name\": \"x\", \"params\": \
             {\"k\": 3}, \"ns_per_op\": 1, \"ops_per_sec\": 1}]}",
            "non-string param value",
        );
        reject(
            "{\"figure\": 7, \"records\": []}",
            "figure must be a string",
        );
    }

    #[test]
    fn non_finite_timings_clamp_to_zero() {
        let r = BenchRecord::new("x").timed(10.0, 0.0);
        assert_eq!(r.ns_per_op, 0.0);
        let json = render_bench_json(
            "clamp",
            &[BenchRecord {
                name: "y".into(),
                params: Vec::new(),
                ns_per_op: f64::INFINITY,
                ops_per_sec: f64::NAN,
            }],
        );
        assert!(json.contains("\"ns_per_op\": 0, \"ops_per_sec\": 0"));
    }

    #[test]
    fn print_does_not_panic_on_ragged_series() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        a.push(2.0, 2.0);
        let mut b = Series::new("b");
        b.push(2.0, 4.0);
        print_series("test", "x", "y", &[a, b]);
    }
}
