//! Bottom-up bulk load of the B+-tree directory.
//!
//! §3.4/§6.2: in the OLAP setting every slot is used ("we can use all the
//! slots in a B+-tree node and rebuild the tree when batch updates
//! arrive"), so the build packs nodes 100% full left-to-right, level by
//! level. Separator `keys[i]` is the largest key in child `i`'s subtree —
//! for the lowest level that is the last key of the child leaf segment,
//! and each higher level propagates its children's maxima.

use crate::node::{BPlusLayout, BPlusNode};
use ccindex_common::{AlignedBuf, Key};

/// One built directory level.
#[derive(Debug)]
pub(crate) struct Level<K, const BR: usize> {
    /// The nodes of this level.
    pub nodes: AlignedBuf<BPlusNode<K, BR>>,
}

/// Build all directory levels, bottom (leaf-pointing) first.
pub(crate) fn build_directory<K: Key, const BR: usize>(
    keys: &[K],
    layout: &BPlusLayout,
) -> Vec<Level<K, BR>> {
    assert!(
        keys.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let mut levels: Vec<Level<K, BR>> = Vec::with_capacity(layout.directory_levels());
    if layout.leaves <= 1 {
        return levels;
    }
    // max key under each child of the level currently being grouped.
    let mut child_max: Vec<K> = (0..layout.leaves)
        .map(|leaf| {
            let (_, end) = layout.leaf_range(leaf);
            keys[end - 1]
        })
        .collect();
    let mut width = layout.leaves;
    for &n_nodes in &layout.level_nodes {
        let mut nodes: AlignedBuf<BPlusNode<K, BR>> = AlignedBuf::new_zeroed(n_nodes);
        let mut next_max: Vec<K> = Vec::with_capacity(n_nodes);
        for node_idx in 0..n_nodes {
            let first_child = node_idx * BR;
            let n_children = BR.min(width - first_child);
            debug_assert!(n_children >= 1);
            let node = &mut nodes[node_idx];
            // Pad everything first: MAX separators, last-real-child clamp.
            let last_real = (first_child + n_children - 1) as u32;
            node.keys = [K::MAX_KEY; BR];
            node.children = [last_real; BR];
            for c in 0..n_children {
                node.children[c] = (first_child + c) as u32;
                if c + 1 < n_children {
                    // Separator i = max of child i (only needed between
                    // real children; padded slots keep MAX_KEY).
                    node.keys[c] = child_max[first_child + c];
                }
            }
            next_max.push(child_max[first_child + n_children - 1]);
        }
        levels.push(Level { nodes });
        child_max = next_max;
        width = n_nodes;
    }
    debug_assert_eq!(width, 1, "top level must be the root");
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separators_are_child_maxima() {
        let keys: Vec<u32> = (0..200).map(|i| i * 5).collect();
        let layout = BPlusLayout::new(keys.len(), 4); // leaf_slots 8, 25 leaves
        let levels = build_directory::<u32, 4>(&keys, &layout);
        assert_eq!(levels.len(), 3); // 25 -> 7 -> 2 -> 1
        let bottom = &levels[0].nodes;
        // Node 0 groups leaves 0..4; separator 0 = last key of leaf 0 =
        // keys[7] = 35.
        assert_eq!(bottom[0].keys[0], 35);
        assert_eq!(bottom[0].keys[1], 75);
        assert_eq!(bottom[0].keys[2], 115);
        assert_eq!(bottom[0].children, [0, 1, 2, 3]);
    }

    #[test]
    fn partial_nodes_are_padded() {
        let keys: Vec<u32> = (0..200).map(|i| i * 5).collect();
        let layout = BPlusLayout::new(keys.len(), 4);
        let levels = build_directory::<u32, 4>(&keys, &layout);
        // 25 leaves / 4 = 7 bottom nodes; the last has a single child (24).
        let last = &levels[0].nodes[6];
        assert_eq!(last.children, [24, 24, 24, 24]);
        assert_eq!(last.keys, [u32::MAX; 4]);
    }

    #[test]
    fn root_covers_everything() {
        let keys: Vec<u32> = (0..1000).collect();
        let layout = BPlusLayout::new(keys.len(), 8); // 63 leaves -> 8 -> 1
        let levels = build_directory::<u32, 8>(&keys, &layout);
        let root = &levels.last().unwrap().nodes[0];
        // Root's separators must be increasing over real children.
        let real: Vec<u32> = root
            .keys
            .iter()
            .copied()
            .filter(|&k| k != u32::MAX)
            .collect();
        assert!(real.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn no_directory_for_single_leaf() {
        let keys: Vec<u32> = (0..10).collect();
        let layout = BPlusLayout::new(keys.len(), 8);
        assert!(build_directory::<u32, 8>(&keys, &layout).is_empty());
    }
}
