//! Bulk-loaded in-memory B+-tree with cache-line-sized nodes.
//!
//! §3.4: B+-trees "have a much better cache behavior than T-trees. In each
//! internal node we store keys and child pointers ... Multiple keys are
//! used to search within a node. ... But B+-trees still need to store child
//! pointers within each node. So for any given node size, only half of the
//! space can be used to store keys."
//!
//! Layout decisions mirroring the paper (§6.2):
//! * the tree is a **directory over the sorted array**: leaf "nodes" are
//!   `m`-key segments of the array itself, so the directory's bottom level
//!   points at array offsets (this is what makes the paper's B+ space
//!   `nK(P+K)/(sc−P−K)` ≈ 2× a CSS-tree rather than a full key copy);
//! * internal nodes interleave keys and 4-byte child pointers ("we forced
//!   each key and child pointer to be adjacent to each other physically");
//!   with an even number of slots one slot stays empty ("Since there is
//!   always one more pointer than keys, for nodes with an even number of
//!   slots, we leave one slot empty");
//! * all nodes live in one cache-line-aligned arena, built in one pass;
//!   in the OLAP setting the tree is rebuilt on batch updates, so nodes are
//!   packed 100% full ("In an OLAP environment, we can use all the slots in
//!   a B+-tree node and rebuild the tree when batch updates arrive").

#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod node;
pub mod search;

pub use node::BPlusLayout;
pub use search::BPlusTree;
