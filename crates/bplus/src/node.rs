//! B+-tree node layout and directory geometry.
//!
//! A directory node with branching factor `BR` holds `BR − 1` separator
//! keys and `BR` 4-byte child pointers. With 4-byte keys that is `2·BR`
//! slots — the paper's `m`-slot node of which "only half of the space can
//! be used to store keys" (§3.4), including the one empty slot for even
//! slot counts (§6.2). Leaf "nodes" are `2·BR`-key segments of the shared
//! sorted array itself, which is what produces the paper's B+ space formula
//! `nK(P+K)/(sc−P−K)` (directory only) rather than a full key copy.

use ccindex_common::{ceil_div, Key};

/// One internal (directory) node.
///
/// `keys[0..BR-1]` are separators (`keys[i]` = largest key under child
/// `i`); `keys[BR-1]` is the deliberately unused slot. Unused separator
/// slots in partially filled nodes are padded with `K::MAX_KEY` and their
/// children clamped to the last real child, so the search needs no per-node
/// fanout field.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct BPlusNode<K, const BR: usize> {
    /// Separator keys (last slot unused, per §6.2).
    pub keys: [K; BR],
    /// Child pointers: arena indices one level down, or leaf-segment
    /// numbers at the lowest directory level.
    pub children: [u32; BR],
}

impl<K: Key, const BR: usize> Default for BPlusNode<K, BR> {
    fn default() -> Self {
        Self {
            keys: [K::MAX_KEY; BR],
            children: [0; BR],
        }
    }
}

/// Geometry of a B+-tree directory over `n` keys with branching `BR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BPlusLayout {
    /// Indexed key count.
    pub n: usize,
    /// Keys per leaf segment (`2·BR`).
    pub leaf_slots: usize,
    /// Number of leaf segments.
    pub leaves: usize,
    /// Directory level sizes, bottom (level 0, pointing at leaves) first;
    /// the last entry is always 1 (the root) when non-empty.
    pub level_nodes: Vec<usize>,
}

impl BPlusLayout {
    /// Compute the directory geometry.
    pub fn new(n: usize, branching: usize) -> Self {
        assert!(branching >= 2, "branching factor must be >= 2");
        let leaf_slots = 2 * branching;
        let leaves = ceil_div(n, leaf_slots);
        let mut level_nodes = Vec::new();
        let mut width = leaves;
        while width > 1 {
            width = ceil_div(width, branching);
            level_nodes.push(width);
        }
        Self {
            n,
            leaf_slots,
            leaves,
            level_nodes,
        }
    }

    /// Directory levels (0 when a single leaf suffices).
    pub fn directory_levels(&self) -> usize {
        self.level_nodes.len()
    }

    /// Total directory nodes.
    pub fn total_nodes(&self) -> usize {
        self.level_nodes.iter().sum()
    }

    /// Directory bytes for `node_bytes`-sized nodes.
    pub fn space_bytes(&self, node_bytes: usize) -> usize {
        self.total_nodes() * node_bytes
    }

    /// Key range `[start, end)` of leaf segment `leaf`.
    pub fn leaf_range(&self, leaf: usize) -> (usize, usize) {
        let start = leaf * self.leaf_slots;
        (start, (start + self.leaf_slots).min(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_exactly_two_br_slots_for_u32() {
        assert_eq!(core::mem::size_of::<BPlusNode<u32, 8>>(), 8 * 8); // 64 B
        assert_eq!(core::mem::size_of::<BPlusNode<u32, 4>>(), 32);
        assert_eq!(core::mem::size_of::<BPlusNode<u32, 16>>(), 128);
    }

    #[test]
    fn layout_small_cases() {
        // 100 keys, BR=4 -> leaf_slots 8, 13 leaves, levels: ceil(13/4)=4, 1.
        let l = BPlusLayout::new(100, 4);
        assert_eq!(l.leaf_slots, 8);
        assert_eq!(l.leaves, 13);
        assert_eq!(l.level_nodes, vec![4, 1]);
        assert_eq!(l.directory_levels(), 2);
        assert_eq!(l.total_nodes(), 5);
    }

    #[test]
    fn single_leaf_has_no_directory() {
        let l = BPlusLayout::new(10, 8);
        assert_eq!(l.leaves, 1);
        assert!(l.level_nodes.is_empty());
        assert_eq!(l.space_bytes(64), 0);
    }

    #[test]
    fn empty_input() {
        let l = BPlusLayout::new(0, 8);
        assert_eq!(l.leaves, 0);
        assert!(l.level_nodes.is_empty());
    }

    #[test]
    fn leaf_ranges_partition_the_array() {
        let l = BPlusLayout::new(103, 4);
        let mut covered = 0;
        for leaf in 0..l.leaves {
            let (s, e) = l.leaf_range(leaf);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, 103);
    }

    #[test]
    fn directory_space_tracks_paper_formula_at_scale() {
        // Paper (Fig. 7): B+ space = nK(P+K)/(sc−P−K); with K=P=4 and
        // 64-byte nodes (BR=8): 10^7·4·8/56 ≈ 5.71 MB. The exact node
        // count should land within a few percent of the formula.
        let n = 10_000_000usize;
        let l = BPlusLayout::new(n, 8);
        let measured = l.space_bytes(64) as f64;
        let formula = n as f64 * 4.0 * 8.0 / (64.0 - 8.0);
        let ratio = measured / formula;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn root_level_is_singleton() {
        for n in [1usize, 17, 64, 65, 4096, 1_000_000] {
            for br in [2usize, 4, 8, 16] {
                let l = BPlusLayout::new(n, br);
                if let Some(&root) = l.level_nodes.last() {
                    assert_eq!(root, 1, "n={n} br={br}");
                }
            }
        }
    }
}
