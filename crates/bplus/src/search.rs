//! B+-tree search: directory descent plus leaf-segment binary search.
//!
//! Within a node "multiple keys are used to search" (§3.4): the descent
//! picks the leftmost separator ≥ the probe (guaranteeing leftmost-match
//! semantics for duplicates, §3.6) and follows its pointer. The separator
//! scan is over a const-size array, so each instantiation compiles to the
//! specialised, unrolled code §6.2 calls for.

use crate::build::{build_directory, Level};
use crate::node::{BPlusLayout, BPlusNode};
use ccindex_common::{
    AccessTracer, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray, SpaceReport,
};

/// A bulk-loaded B+-tree directory over a shared sorted array, with
/// branching factor `BR` (node size `2·BR` 4-byte slots; leaf segments of
/// `2·BR` keys).
#[derive(Debug)]
pub struct BPlusTree<K: Key, const BR: usize> {
    array: SortedArray<K>,
    /// Directory levels, bottom first; the root is the single node of the
    /// last level.
    levels: Vec<Level<K, BR>>,
    layout: BPlusLayout,
}

impl<K: Key, const BR: usize> BPlusTree<K, BR> {
    /// Build over a sorted slice.
    pub fn build(keys: &[K]) -> Self {
        Self::from_shared(SortedArray::from_slice(keys))
    }

    /// Build over an existing shared array without copying it.
    pub fn from_shared(array: SortedArray<K>) -> Self {
        let layout = BPlusLayout::new(array.len(), BR);
        let levels = build_directory::<K, BR>(array.as_slice(), &layout);
        Self {
            array,
            levels,
            layout,
        }
    }

    /// The directory geometry.
    pub fn layout(&self) -> &BPlusLayout {
        &self.layout
    }

    /// The underlying shared array.
    pub fn array(&self) -> &SortedArray<K> {
        &self.array
    }

    #[inline]
    fn node_addr(&self, level: usize, idx: u32) -> usize {
        self.levels[level].nodes.base_addr()
            + idx as usize * core::mem::size_of::<BPlusNode<K, BR>>()
    }

    /// Pick the child slot: leftmost separator `>= key`, else last child.
    /// The loop bound is the const `BR`, so each instantiation unrolls.
    #[inline]
    fn choose_child<T: AccessTracer>(node: &BPlusNode<K, BR>, key: K, tracer: &mut T) -> usize {
        // Binary search over the BR-1 separators.
        let mut lo = 0usize;
        let mut hi = BR - 1;
        while lo < hi {
            let mid = (lo + hi) >> 1;
            tracer.compare();
            if node.keys[mid] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Descend the directory to the leaf segment that must contain the
    /// lower bound for `key`.
    #[inline]
    fn descend_to_leaf<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        let mut idx = 0u32; // root is node 0 of the top level
        for level in (0..self.levels.len()).rev() {
            let node = &self.levels[level].nodes[idx as usize];
            // One node = one (or s) cache line(s): the whole node is the
            // fetch unit.
            tracer.read(
                self.node_addr(level, idx),
                core::mem::size_of::<BPlusNode<K, BR>>(),
            );
            let slot = Self::choose_child(node, key, tracer);
            idx = node.children[slot];
            tracer.descend();
        }
        idx as usize
    }

    /// Leftmost position with key `>= key`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        if self.array.is_empty() {
            return 0;
        }
        let leaf = self.descend_to_leaf(key, tracer);
        let (start, end) = self.layout.leaf_range(leaf);
        let a = self.array.as_slice();
        // Hard-coded binary search of the leaf segment.
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + ((hi - lo) >> 1);
            tracer.compare();
            tracer.read(self.array.addr_of(mid), K::WIDTH);
            if a[mid] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(key, tracer);
        if pos < self.array.len() {
            tracer.compare();
            if self.array.get_traced(pos, tracer) == key {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key, const BR: usize> SearchIndex<K> for BPlusTree<K, BR> {
    fn name(&self) -> &'static str {
        "B+-tree"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        // Fig. 7: identical in both columns (the directory stores no RIDs).
        SpaceReport::same(
            self.layout
                .space_bytes(core::mem::size_of::<BPlusNode<K, BR>>()),
        )
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.layout.directory_levels() as u32 + 1,
            internal_nodes: self.layout.total_nodes(),
            branching: BR,
            node_bytes: core::mem::size_of::<BPlusNode<K, BR>>(),
        }
    }
}

impl<K: Key, const BR: usize> OrderedIndex<K> for BPlusTree<K, BR> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 7 + 3).collect();
        let t = BPlusTree::<u32, 8>::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.search(k), Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_are_none() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 7 + 3).collect();
        let t = BPlusTree::<u32, 8>::build(&keys);
        assert_eq!(t.search(0), None);
        for i in (0..9999).step_by(97) {
            assert_eq!(t.search(i * 7 + 4), None);
        }
        assert_eq!(t.search(u32::MAX), None);
    }

    #[test]
    fn lower_bound_matches_partition_point_many_branchings() {
        let keys: Vec<u32> = (0..1023).map(|i| (i / 3) * 9).collect(); // duplicates
        macro_rules! check {
            ($br:literal) => {{
                let t = BPlusTree::<u32, $br>::build(&keys);
                for probe in (0..3100u32).step_by(1) {
                    assert_eq!(
                        t.lower_bound(probe),
                        keys.partition_point(|&k| k < probe),
                        "br {} probe {probe}",
                        $br
                    );
                }
            }};
        }
        check!(2);
        check!(4);
        check!(8);
        check!(16);
        check!(64);
    }

    #[test]
    fn duplicates_return_leftmost_across_leaves() {
        // 50 equal keys span several 8-key leaves (BR=4).
        let mut keys = vec![1u32];
        keys.extend(std::iter::repeat_n(5u32, 50));
        keys.push(9);
        let t = BPlusTree::<u32, 4>::build(&keys);
        assert_eq!(t.search(5), Some(1));
        assert_eq!(t.lower_bound(5), 1);
        assert_eq!(t.lower_bound(6), 51);
    }

    #[test]
    fn descent_depth_matches_layout() {
        let keys: Vec<u32> = (0..100_000).collect();
        let t = BPlusTree::<u32, 8>::build(&keys);
        let mut tracer = CountingTracer::new();
        t.search_with(54_321, &mut tracer);
        assert_eq!(tracer.descends as usize, t.layout().directory_levels());
    }

    #[test]
    fn single_leaf_degenerates_to_binary_search() {
        let keys: Vec<u32> = (0..10).collect();
        let t = BPlusTree::<u32, 8>::build(&keys);
        assert_eq!(t.layout().directory_levels(), 0);
        assert_eq!(t.search(7), Some(7));
        assert_eq!(t.space().indirect_bytes, 0);
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::<u32, 8>::build(&[]);
        assert_eq!(t.search(1), None);
        assert_eq!(t.lower_bound(1), 0);
    }

    #[test]
    fn space_is_directory_only() {
        let keys: Vec<u32> = (0..1_000_000).collect();
        let t = BPlusTree::<u32, 8>::build(&keys);
        let s = t.space();
        assert_eq!(s.indirect_bytes, s.direct_bytes);
        // ~ n*K*(P+K)/(sc-P-K) = 10^6*32/56 ≈ 571 kB; allow ±15%.
        let formula = 1_000_000.0 * 32.0 / 56.0;
        let ratio = s.indirect_bytes as f64 / formula;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn u64_keys_work() {
        let keys: Vec<u64> = (0..5000u64).map(|i| i << 20).collect();
        let t = BPlusTree::<u64, 8>::build(&keys);
        for (i, &k) in keys.iter().enumerate().step_by(17) {
            assert_eq!(t.search(k), Some(i));
            assert_eq!(t.search(k + 1), None);
        }
    }
}
