//! Pointer-based balanced binary search tree ("tree binary search").
//!
//! The explicit-pointer counterpart of array binary search from Figs. 10–11.
//! The paper's point (§3.3, §6.3) is that a pointer-based binary tree has
//! the *same* poor cache behaviour as binary search on an array — roughly
//! one cache miss per comparison once the data outgrows the cache — while
//! paying extra space for two child pointers per key; array-based binary
//! search is sometimes even faster because it needs no pointer loads.
//!
//! Nodes are allocated contiguously in one arena (§6.2 discipline) in
//! *preorder* of the recursive median construction, which reproduces the
//! locality of a typical pointer-based build: parent and left spine share
//! lines near the root of each subtree, but the accesses of a random probe
//! still spread across Θ(log n) distinct lines.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod tree;

pub use tree::BinaryTreeIndex;
