//! Balanced pointer-based binary search tree over a sorted array.
//!
//! One node per array element, holding the key, the element's position in
//! the sorted array, and two 4-byte child links (arena indices standing in
//! for the paper's 4-byte pointers). A probe touches Θ(log₂ n) nodes spread
//! across distinct cache lines — the "essentially one cache miss per
//! comparison" behaviour of §6.3 that CSS-trees eliminate.

use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SpaceReport,
};

/// Sentinel child link meaning "no child".
const NO_NODE: u32 = u32::MAX;

/// One tree node. `#[repr(C)]` keeps the layout exactly key + position +
/// two links, matching the space model (K + R + 2P bytes per element).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
struct Node<K> {
    key: K,
    pos: u32,
    left: u32,
    right: u32,
}

/// A balanced, bulk-built binary search tree ("tree binary search" in
/// Figs. 10–11).
#[derive(Debug, Clone)]
pub struct BinaryTreeIndex<K: Key> {
    nodes: AlignedBuf<Node<K>>,
    root: u32,
    len: usize,
    height: u32,
}

impl<K: Key> BinaryTreeIndex<K> {
    /// Build from a sorted slice (duplicates allowed). Nodes are allocated
    /// in one aligned arena in preorder of the recursive median split.
    pub fn build(keys: &[K]) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        assert!(keys.len() < NO_NODE as usize, "too many keys for u32 links");
        let mut nodes: AlignedBuf<Node<K>> = AlignedBuf::new_zeroed(keys.len());
        let mut next = 0u32;
        let root = Self::build_range(keys, 0, keys.len(), &mut nodes, &mut next);
        let height = if keys.is_empty() {
            0
        } else {
            usize::BITS - keys.len().leading_zeros()
        };
        Self {
            nodes,
            root,
            len: keys.len(),
            height,
        }
    }

    /// Recursively place the median of `[lo, hi)`; returns the node id.
    fn build_range(
        keys: &[K],
        lo: usize,
        hi: usize,
        nodes: &mut AlignedBuf<Node<K>>,
        next: &mut u32,
    ) -> u32 {
        if lo >= hi {
            return NO_NODE;
        }
        let mid = lo + ((hi - lo) >> 1);
        let id = *next;
        *next += 1;
        nodes[id as usize] = Node {
            key: keys[mid],
            pos: mid as u32,
            left: NO_NODE,
            right: NO_NODE,
        };
        let left = Self::build_range(keys, lo, mid, nodes, next);
        let right = Self::build_range(keys, mid + 1, hi, nodes, next);
        nodes[id as usize].left = left;
        nodes[id as usize].right = right;
        id
    }

    #[inline]
    fn node_addr(&self, id: u32) -> usize {
        self.nodes.base_addr() + id as usize * core::mem::size_of::<Node<K>>()
    }

    /// Descend to the leftmost node whose key is `>= key`; returns its
    /// `(position, key)`, or `(len, None)` when every key is smaller.
    #[inline]
    fn lower_bound_entry<T: AccessTracer>(&self, key: K, tracer: &mut T) -> (usize, Option<K>) {
        let mut cur = self.root;
        let mut best = self.len;
        let mut best_key = None;
        while cur != NO_NODE {
            let node = &self.nodes[cur as usize];
            tracer.read(self.node_addr(cur), core::mem::size_of::<Node<K>>());
            tracer.compare();
            if node.key >= key {
                best = node.pos as usize;
                best_key = Some(node.key);
                cur = node.left;
            } else {
                cur = node.right;
            }
            tracer.descend();
        }
        (best, best_key)
    }

    /// Leftmost position with key `>= key`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
        self.lower_bound_entry(key, tracer).0
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        let (pos, found) = self.lower_bound_entry(key, tracer);
        tracer.compare();
        (found == Some(key)).then_some(pos)
    }

    /// Height of the tree (levels a worst-case probe visits).
    pub fn height(&self) -> u32 {
        self.height
    }
}

impl<K: Key> SearchIndex<K> for BinaryTreeIndex<K> {
    fn name(&self) -> &'static str {
        "tree binary search"
    }
    fn len(&self) -> usize {
        self.len
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        // Each element carries key + position + two links in the arena.
        SpaceReport::same(self.nodes.size_bytes())
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.height,
            internal_nodes: self.len,
            branching: 2,
            node_bytes: core::mem::size_of::<Node<K>>(),
        }
    }
}

impl<K: Key> OrderedIndex<K> for BinaryTreeIndex<K> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..5000).map(|i| i * 3).collect();
        let t = BinaryTreeIndex::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.search(k), Some(i), "key {k}");
        }
        assert_eq!(t.search(1), None);
        assert_eq!(t.search(3 * 5000), None);
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let keys: Vec<u32> = vec![5, 5, 7, 7, 7, 9, 100, 100];
        let t = BinaryTreeIndex::build(&keys);
        for probe in 0..=110u32 {
            assert_eq!(
                t.lower_bound(probe),
                keys.partition_point(|&k| k < probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        let keys = vec![1u32, 4, 4, 4, 9];
        let t = BinaryTreeIndex::build(&keys);
        assert_eq!(t.search(4), Some(1));
    }

    #[test]
    fn tree_is_balanced() {
        let keys: Vec<u32> = (0..1_000_000).collect();
        let t = BinaryTreeIndex::build(&keys);
        let mut tracer = CountingTracer::new();
        t.lower_bound_with(999_999, &mut tracer);
        // Height of a balanced tree over 10^6 keys is 20; the probe may
        // not take the longest path but must stay within the bound.
        assert!(tracer.descends <= 20, "descends = {}", tracer.descends);
    }

    #[test]
    fn empty_and_single() {
        let t = BinaryTreeIndex::<u32>::build(&[]);
        assert_eq!(t.search(5), None);
        assert_eq!(t.lower_bound(5), 0);
        let t = BinaryTreeIndex::build(&[9u32]);
        assert_eq!(t.search(9), Some(0));
        assert_eq!(t.lower_bound(10), 1);
    }

    #[test]
    fn space_counts_nodes() {
        let keys: Vec<u32> = (0..100).collect();
        let t = BinaryTreeIndex::build(&keys);
        assert_eq!(t.space().indirect_bytes, 100 * 16);
    }

    #[test]
    fn probe_touches_about_log_n_nodes() {
        let keys: Vec<u32> = (0..1 << 16).collect();
        let t = BinaryTreeIndex::build(&keys);
        let mut tracer = CountingTracer::new();
        t.search_with(12345, &mut tracer);
        assert!(
            (14..=18).contains(&(tracer.reads as usize)),
            "reads = {}",
            tracer.reads
        );
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn rejects_unsorted() {
        let _ = BinaryTreeIndex::build(&[3u32, 1]);
    }
}
