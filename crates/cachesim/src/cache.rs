//! A single set-associative cache level with LRU replacement.
//!
//! §3.1 of the paper: "A cache can be parameterized by capacity, block size
//! and associativity." This module implements exactly that parameterisation.
//! Associativity 1 gives a direct-mapped cache (both caches of the paper's
//! UltraSparc II are direct-mapped); associativity equal to the number of
//! blocks gives a fully associative cache.

use crate::stats::CacheStats;

/// One cache level.
///
/// Replacement is true LRU within each set, maintained as a small
/// recency-ordered list (associativities in practice are ≤ 16, so linear
/// set operations are faster than any clever structure).
#[derive(Debug, Clone)]
pub struct Cache {
    capacity: usize,
    block_bytes: usize,
    associativity: usize,
    sets: usize,
    /// `tags[set]` holds the resident block numbers of that set, most
    /// recently used first. `u64::MAX` never occurs as a real tag because
    /// block numbers are `addr >> log2(block)` of usize addresses.
    tags: Vec<Vec<u64>>,
    stats: CacheStats,
    block_shift: u32,
}

impl Cache {
    /// Build a cache of `capacity` bytes with `block_bytes` lines and the
    /// given associativity.
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// an integral number of sets, non-power-of-two block size, zero
    /// associativity).
    pub fn new(capacity: usize, block_bytes: usize, associativity: usize) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(associativity >= 1, "associativity must be >= 1");
        assert!(
            capacity >= block_bytes * associativity,
            "cache too small for one set"
        );
        let blocks = capacity / block_bytes;
        assert_eq!(
            blocks * block_bytes,
            capacity,
            "capacity must be a multiple of block size"
        );
        assert_eq!(
            blocks % associativity,
            0,
            "blocks must divide evenly into sets"
        );
        let sets = blocks / associativity;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        Self {
            capacity,
            block_bytes,
            associativity,
            sets,
            tags: vec![Vec::with_capacity(associativity); sets],
            stats: CacheStats::default(),
            block_shift: block_bytes.trailing_zeros(),
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Line (block) size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Block number containing `addr`.
    #[inline]
    pub fn block_of(&self, addr: usize) -> u64 {
        (addr >> self.block_shift) as u64
    }

    /// Touch the single block `block`; returns `true` on hit, `false` on
    /// miss (after which the block is resident and most recently used).
    pub fn access_block(&mut self, block: u64) -> bool {
        let set = (block as usize) & (self.sets - 1);
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == block) {
            // Hit: move to MRU position.
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Miss: install at MRU, evicting LRU if the set is full.
            if ways.len() == self.associativity {
                ways.pop();
            }
            ways.insert(0, block);
            self.stats.misses += 1;
            false
        }
    }

    /// Touch every block overlapped by `len` bytes at `addr`; returns the
    /// number of misses incurred.
    pub fn access(&mut self, addr: usize, len: usize) -> u32 {
        if len == 0 {
            return 0;
        }
        let first = self.block_of(addr);
        let last = self.block_of(addr + len - 1);
        let mut misses = 0;
        for block in first..=last {
            if !self.access_block(block) {
                misses += 1;
            }
        }
        misses
    }

    /// Is the block holding `addr` currently resident? (Read-only probe for
    /// tests; does not update LRU state or counters.)
    pub fn contains(&self, addr: usize) -> bool {
        let block = self.block_of(addr);
        let set = (block as usize) & (self.sets - 1);
        self.tags[set].contains(&block)
    }

    /// Flush all contents (cold cache) and optionally the statistics.
    pub fn flush(&mut self, reset_stats: bool) {
        for ways in &mut self.tags {
            ways.clear();
        }
        if reset_stats {
            self.stats = CacheStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 blocks of 64 B, direct-mapped: sets = 4.
        Cache::new(256, 64, 1)
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let c = Cache::new(16 * 1024, 32, 4);
        assert_eq!(c.sets(), 128);
        assert_eq!(c.block_bytes(), 32);
        assert_eq!(c.associativity(), 4);
        assert_eq!(c.capacity(), 16 * 1024);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, 4), 1);
        assert_eq!(c.access(0, 4), 0);
        assert_eq!(c.access(60, 8), 1); // straddles blocks 0 and 1: block 0 hits
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn straddling_access_touches_every_line() {
        let mut c = tiny();
        // 130 bytes from addr 0 covers blocks 0,1,2.
        assert_eq!(c.access(0, 130), 3);
        assert_eq!(c.access(0, 130), 0);
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut c = tiny(); // 4 sets, direct mapped
        assert_eq!(c.access(0, 1), 1); // block 0 -> set 0
        assert_eq!(c.access(256, 1), 1); // block 4 -> set 0, evicts block 0
        assert_eq!(c.access(0, 1), 1); // conflict miss again
        assert!(!c.contains(256));
    }

    #[test]
    fn two_way_set_avoids_that_conflict() {
        let mut c = Cache::new(512, 64, 2); // 8 blocks, 2-way, 4 sets
        assert_eq!(c.access(0, 1), 1); // block 0 -> set 0
        assert_eq!(c.access(256, 1), 1); // block 4 -> set 0, second way
        assert_eq!(c.access(0, 1), 0); // both resident now
        assert_eq!(c.access(256, 1), 0);
    }

    #[test]
    fn lru_order_within_set() {
        let mut c = Cache::new(512, 64, 2); // 4 sets, 2-way
                                            // Three blocks mapping to set 0: 0, 4, 8.
        c.access(0, 1); // miss: {0}
        c.access(4 * 64, 1); // miss: {4,0}
        c.access(0, 1); // hit: {0,4}
        c.access(8 * 64, 1); // miss, evicts LRU=4: {8,0}
        assert!(c.contains(0));
        assert!(!c.contains(4 * 64));
        assert!(c.contains(8 * 64));
    }

    #[test]
    fn fully_associative_cache() {
        let mut c = Cache::new(256, 64, 4); // one set of 4 ways
        assert_eq!(c.sets(), 1);
        for b in 0..4 {
            assert_eq!(c.access(b * 64, 1), 1);
        }
        for b in 0..4 {
            assert_eq!(c.access(b * 64, 1), 0);
        }
        c.access(4 * 64, 1); // evicts the LRU block 0
        assert!(!c.contains(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, 64);
        c.flush(false);
        assert!(!c.contains(0));
        assert_eq!(c.stats().misses, 1);
        c.flush(true);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut c = tiny();
        assert_eq!(c.access(0, 0), 0);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_block_size() {
        let _ = Cache::new(256, 48, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of block size")]
    fn rejects_ragged_capacity() {
        let _ = Cache::new(200, 64, 1);
    }

    #[test]
    fn paper_machine_geometries_construct() {
        // UltraSparc II: <16k, 32B, 1> on-chip and <1M, 64B, 1> L2.
        let l1 = Cache::new(16 * 1024, 32, 1);
        let l2 = Cache::new(1024 * 1024, 64, 1);
        assert_eq!(l1.sets(), 512);
        assert_eq!(l2.sets(), 16384);
        // Pentium II: <16k, 32B, 4> and <512k, 32B, 4>.
        let p1 = Cache::new(16 * 1024, 32, 4);
        let p2 = Cache::new(512 * 1024, 32, 4);
        assert_eq!(p1.sets(), 128);
        assert_eq!(p2.sets(), 4096);
    }
}
