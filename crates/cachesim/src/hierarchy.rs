//! A multi-level cache hierarchy and the [`SimTracer`] adapter that lets it
//! consume the access streams produced by instrumented index traversals.

use crate::cache::Cache;
use crate::stats::{CacheStats, LevelStats};
use ccindex_common::AccessTracer;

/// An inclusive multi-level cache hierarchy (L1 closest to the processor).
///
/// An access probes L1; on a miss it probes L2, and so on. This models the
/// paper's two-level machines; the simulated time model charges each level's
/// misses its own penalty, exactly as §6.3 discusses ("the miss penalty for
/// the second level of cache is larger than that of the on-chip cache").
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
    compares: u64,
    descends: u64,
    accesses: u64,
}

impl CacheHierarchy {
    /// Build a hierarchy from the given levels (index 0 = L1). At least one
    /// level is required.
    pub fn new(levels: Vec<Cache>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        Self {
            levels,
            compares: 0,
            descends: 0,
            accesses: 0,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Immutable view of one level.
    pub fn level(&self, i: usize) -> &Cache {
        &self.levels[i]
    }

    /// Issue a read/write of `len` bytes at `addr`. Lower levels are probed
    /// only for the lines that missed above them.
    pub fn access(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.accesses += 1;
        // Iterate at the granularity of the *smallest* line so that every
        // level sees each distinct line exactly once per access.
        let min_block = self
            .levels
            .iter()
            .map(Cache::block_bytes)
            .min()
            .expect("non-empty");
        let mut a = addr;
        let end = addr + len;
        loop {
            let line_end = (a / min_block + 1) * min_block;
            for cache in &mut self.levels {
                let hit = cache.access_block(cache.block_of(a));
                if hit {
                    break; // satisfied at this level
                }
            }
            if line_end >= end {
                break;
            }
            a = line_end;
        }
    }

    /// Record a key comparison (cost model input).
    pub fn compare(&mut self) {
        self.compares += 1;
    }

    /// Record a node descent (cost model input).
    pub fn descend(&mut self) {
        self.descends += 1;
    }

    /// Snapshot of per-level statistics.
    pub fn stats(&self) -> LevelStats {
        LevelStats {
            levels: self.levels.iter().map(Cache::stats).collect(),
            compares: self.compares,
            descends: self.descends,
            accesses: self.accesses,
        }
    }

    /// Statistics of one level.
    pub fn level_stats(&self, i: usize) -> CacheStats {
        self.levels[i].stats()
    }

    /// Cold-start the hierarchy (§5.1 assumes a cold start; §6 performs
    /// many successive lookups, so upper levels warm up across probes).
    pub fn flush(&mut self, reset_stats: bool) {
        for cache in &mut self.levels {
            cache.flush(reset_stats);
        }
        if reset_stats {
            self.compares = 0;
            self.descends = 0;
            self.accesses = 0;
        }
    }
}

/// Adapter implementing [`AccessTracer`] on top of a [`CacheHierarchy`], so
/// any `search_traced`/`search_with` call can be replayed through the
/// simulator.
#[derive(Debug)]
pub struct SimTracer<'a> {
    hierarchy: &'a mut CacheHierarchy,
}

impl<'a> SimTracer<'a> {
    /// Wrap a hierarchy.
    pub fn new(hierarchy: &'a mut CacheHierarchy) -> Self {
        Self { hierarchy }
    }
}

impl AccessTracer for SimTracer<'_> {
    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        self.hierarchy.access(addr, len);
    }
    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        self.hierarchy.access(addr, len);
    }
    #[inline]
    fn compare(&mut self) {
        self.hierarchy.compare();
    }
    #[inline]
    fn descend(&mut self) {
        self.hierarchy.descend();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> CacheHierarchy {
        CacheHierarchy::new(vec![
            Cache::new(256, 32, 1),  // tiny L1: 8 lines of 32 B
            Cache::new(1024, 64, 1), // L2: 16 lines of 64 B
        ])
    }

    #[test]
    fn miss_propagates_to_l2() {
        let mut h = two_level();
        h.access(0, 4);
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 1);
        assert_eq!(s.levels[1].misses, 1);
        // Second touch hits L1; L2 sees nothing.
        h.access(0, 4);
        let s = h.stats();
        assert_eq!(s.levels[0].hits, 1);
        assert_eq!(s.levels[1].accesses(), 1);
    }

    #[test]
    fn l1_conflict_can_still_hit_l2() {
        let mut h = two_level();
        h.access(0, 1); // L1 set 0 (block 0), L2 miss
        h.access(256, 1); // L1 block 8 -> set 0 conflict; L2 block 4 miss
        h.access(0, 1); // L1 conflict miss again, but L2 block 0 still resident -> L2 hit
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 3);
        assert_eq!(s.levels[1].misses, 2);
        assert_eq!(s.levels[1].hits, 1);
    }

    #[test]
    fn wide_access_counts_each_small_line_once() {
        let mut h = two_level();
        // 64 bytes = two 32-B L1 lines = one 64-B L2 line.
        h.access(0, 64);
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 2);
        // L2 is probed for both L1 misses; the first misses, the second
        // hits the (just-installed) 64-B line.
        assert_eq!(s.levels[1].misses, 1);
        assert_eq!(s.levels[1].hits, 1);
    }

    #[test]
    fn flush_makes_cache_cold_again() {
        let mut h = two_level();
        h.access(0, 4);
        h.access(0, 4);
        h.flush(false);
        h.access(0, 4);
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 2);
    }

    #[test]
    fn tracer_feeds_hierarchy() {
        let mut h = two_level();
        {
            let mut t = SimTracer::new(&mut h);
            t.read(0, 4);
            t.write(64, 4);
            t.compare();
            t.descend();
        }
        let s = h.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.compares, 1);
        assert_eq!(s.descends, 1);
        assert_eq!(s.levels[0].misses, 2);
    }

    #[test]
    fn sequential_scan_exploits_spatial_locality() {
        // Scanning 32 4-byte ints = 128 B touches 4 L1 lines -> 4 misses,
        // 28 hits when accessed one int at a time.
        let mut h = two_level();
        for i in 0..32 {
            h.access(i * 4, 4);
        }
        let s = h.stats();
        assert_eq!(s.levels[0].misses, 4);
        assert_eq!(s.levels[0].hits, 28);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        let _ = CacheHierarchy::new(vec![]);
    }
}
