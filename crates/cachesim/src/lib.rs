//! Trace-driven cache simulator.
//!
//! The paper's experimental machines are a 296 MHz UltraSparc II and a
//! 333 MHz Pentium II (§6.1). We cannot rerun 1998 hardware, so this crate
//! provides the closest synthetic equivalent: a multi-level, set-associative
//! LRU cache simulator driven by the *exact* address traces the index
//! structures emit through [`ccindex_common::AccessTracer`]. The simulator
//! reproduces the quantity the paper's argument rests on — cache misses per
//! lookup for a given cache geometry — and a simple cycle model
//! ([`TimeModel`]) converts (comparisons, node traversals, per-level misses)
//! into simulated seconds, mirroring the cost decomposition of Fig. 6.
//!
//! Machine presets for the paper's two platforms (and a modern reference
//! machine) live in [`machine`].

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod hierarchy;
pub mod machine;
pub mod stats;
pub mod timemodel;

pub use cache::Cache;
pub use hierarchy::{CacheHierarchy, SimTracer};
pub use machine::{Machine, MachineSpec};
pub use stats::{CacheStats, LevelStats};
pub use timemodel::{SimOutcome, TimeModel};
