//! Machine models: cache geometry plus cycle-cost parameters.
//!
//! Presets reproduce the paper's two experimental platforms (§6.1):
//!
//! * **UltraSparc II**, 296 MHz, on-chip `<16 K, 32 B, 1>`, L2
//!   `<1 M, 64 B, 1>`;
//! * **Pentium II**, 333 MHz, on-chip `<16 K, 32 B, 4>`, L2
//!   `<512 K, 32 B, 4>`;
//!
//! plus a modern three-level reference machine to show that the paper's
//! ranking persists as the CPU–memory gap keeps widening (its §8 prediction).
//!
//! Miss penalties are representative public figures for the respective
//! eras; the reproduction target is the *shape* of the curves (which method
//! wins, where crossovers fall), which depends on the geometry and the
//! penalty *ratios*, not on exact 1998 cycle counts.

use crate::cache::Cache;
use crate::hierarchy::CacheHierarchy;
use crate::timemodel::TimeModel;

/// Static description of a machine (geometry + cost parameters).
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Human-readable name ("Ultra Sparc II", ...).
    pub name: &'static str,
    /// Clock rate in Hz, used to convert simulated cycles to seconds.
    pub clock_hz: f64,
    /// `(capacity, block bytes, associativity)` per level, L1 first.
    pub caches: Vec<(usize, usize, usize)>,
    /// Cycles to fetch from the level *below* each cache on a miss
    /// (same length as `caches`; the last entry is the memory penalty).
    pub miss_penalty_cycles: Vec<f64>,
    /// Cycles per key comparison (branch + compare).
    pub compare_cycles: f64,
    /// Cycles per node-to-node move (child address computation).
    pub descend_cycles: f64,
    /// Cycles per issued access that hits L1 (load latency).
    pub access_cycles: f64,
}

/// A runnable machine: spec + instantiated hierarchy.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The machine description.
    pub spec: MachineSpec,
    /// The simulated cache hierarchy.
    pub hierarchy: CacheHierarchy,
}

impl MachineSpec {
    /// The paper's UltraSparc II (296 MHz).
    pub fn ultrasparc2() -> Self {
        Self {
            name: "Ultra Sparc II",
            clock_hz: 296e6,
            caches: vec![(16 * 1024, 32, 1), (1024 * 1024, 64, 1)],
            // ~3:1 between L2 and L1 penalties, memory ~2 orders of
            // magnitude above a cycle — the gap Fig. 1 is about.
            miss_penalty_cycles: vec![10.0, 80.0],
            compare_cycles: 2.0,
            descend_cycles: 3.0,
            access_cycles: 1.0,
        }
    }

    /// The paper's Pentium II (333 MHz).
    pub fn pentium2() -> Self {
        Self {
            name: "Pentium II",
            clock_hz: 333e6,
            caches: vec![(16 * 1024, 32, 4), (512 * 1024, 32, 4)],
            // Half-speed off-die L2 -> larger L1-miss penalty than Sparc.
            miss_penalty_cycles: vec![14.0, 70.0],
            compare_cycles: 2.0,
            descend_cycles: 3.0,
            access_cycles: 1.0,
        }
    }

    /// A modern three-level x86 machine (3 GHz, 64 B lines).
    pub fn modern() -> Self {
        Self {
            name: "Modern x86-64",
            clock_hz: 3.0e9,
            caches: vec![
                (32 * 1024, 64, 8),
                (1024 * 1024, 64, 16),
                (32 * 1024 * 1024, 64, 16),
            ],
            miss_penalty_cycles: vec![10.0, 40.0, 250.0],
            compare_cycles: 1.0,
            descend_cycles: 2.0,
            access_cycles: 1.0,
        }
    }

    /// Instantiate the cache hierarchy described by this spec.
    pub fn build_hierarchy(&self) -> CacheHierarchy {
        CacheHierarchy::new(
            self.caches
                .iter()
                .map(|&(cap, block, assoc)| Cache::new(cap, block, assoc))
                .collect(),
        )
    }

    /// The cycle-cost model for this machine.
    pub fn time_model(&self) -> TimeModel {
        TimeModel {
            clock_hz: self.clock_hz,
            miss_penalty_cycles: self.miss_penalty_cycles.clone(),
            compare_cycles: self.compare_cycles,
            descend_cycles: self.descend_cycles,
            access_cycles: self.access_cycles,
        }
    }

    /// Line size of the given cache level in bytes.
    pub fn line_bytes(&self, level: usize) -> usize {
        self.caches[level].1
    }
}

impl Machine {
    /// Instantiate a machine from its spec.
    pub fn new(spec: MachineSpec) -> Self {
        let hierarchy = spec.build_hierarchy();
        Self { spec, hierarchy }
    }

    /// Shorthand for [`MachineSpec::ultrasparc2`].
    pub fn ultrasparc2() -> Self {
        Self::new(MachineSpec::ultrasparc2())
    }

    /// Shorthand for [`MachineSpec::pentium2`].
    pub fn pentium2() -> Self {
        Self::new(MachineSpec::pentium2())
    }

    /// Shorthand for [`MachineSpec::modern`].
    pub fn modern() -> Self {
        Self::new(MachineSpec::modern())
    }

    /// Look up a machine preset by name (`ultrasparc`, `pentium2`,
    /// `modern`); used by the `figures` CLI.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ultrasparc" | "ultrasparc2" | "sparc" => Some(Self::ultrasparc2()),
            "pentium" | "pentium2" | "p2" => Some(Self::pentium2()),
            "modern" | "x86" => Some(Self::modern()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_geometries() {
        let u = Machine::ultrasparc2();
        assert_eq!(u.hierarchy.depth(), 2);
        assert_eq!(u.hierarchy.level(0).capacity(), 16 * 1024);
        assert_eq!(u.hierarchy.level(0).block_bytes(), 32);
        assert_eq!(u.hierarchy.level(0).associativity(), 1);
        assert_eq!(u.hierarchy.level(1).capacity(), 1024 * 1024);
        assert_eq!(u.hierarchy.level(1).block_bytes(), 64);

        let p = Machine::pentium2();
        assert_eq!(p.hierarchy.level(0).associativity(), 4);
        assert_eq!(p.hierarchy.level(1).capacity(), 512 * 1024);
        assert_eq!(p.hierarchy.level(1).block_bytes(), 32);
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(
            Machine::by_name("ultrasparc").unwrap().spec.name,
            "Ultra Sparc II"
        );
        assert_eq!(Machine::by_name("P2").unwrap().spec.name, "Pentium II");
        assert_eq!(
            Machine::by_name("modern").unwrap().spec.name,
            "Modern x86-64"
        );
        assert!(Machine::by_name("vax").is_none());
    }

    #[test]
    fn penalties_align_with_cache_levels() {
        for spec in [
            MachineSpec::ultrasparc2(),
            MachineSpec::pentium2(),
            MachineSpec::modern(),
        ] {
            assert_eq!(
                spec.caches.len(),
                spec.miss_penalty_cycles.len(),
                "{}",
                spec.name
            );
            // Penalties must grow with depth (memory is the most expensive).
            for w in spec.miss_penalty_cycles.windows(2) {
                assert!(w[0] < w[1], "{}", spec.name);
            }
        }
    }

    #[test]
    fn modern_memory_gap_is_wider() {
        // §8: "the gap between CPU and memory speed is widening" — the
        // modern preset must charge relatively more for a memory miss.
        let old = MachineSpec::ultrasparc2();
        let new = MachineSpec::modern();
        let old_ratio = old.miss_penalty_cycles.last().unwrap() / old.compare_cycles;
        let new_ratio = new.miss_penalty_cycles.last().unwrap() / new.compare_cycles;
        assert!(new_ratio > old_ratio);
    }
}
