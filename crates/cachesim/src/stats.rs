//! Hit/miss accounting for the simulator.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses satisfied by this level.
    pub hits: u64,
    /// Accesses that had to go to the next level (or memory).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses seen by this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Component-wise difference, used to attribute counters to a phase
    /// (e.g. misses incurred during the probe phase only).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Per-level statistics for a whole hierarchy, index 0 being the cache
/// closest to the processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// One entry per cache level.
    pub levels: Vec<CacheStats>,
    /// Comparisons reported by the traced code.
    pub compares: u64,
    /// Node descents reported by the traced code.
    pub descends: u64,
    /// Total read/write accesses issued to the hierarchy.
    pub accesses: u64,
}

impl LevelStats {
    /// Misses at the given level (0 = L1).
    pub fn misses(&self, level: usize) -> u64 {
        self.levels.get(level).map_or(0, |s| s.misses)
    }

    /// Component-wise difference (see [`CacheStats::since`]).
    pub fn since(&self, earlier: &LevelStats) -> LevelStats {
        assert_eq!(self.levels.len(), earlier.levels.len());
        LevelStats {
            levels: self
                .levels
                .iter()
                .zip(&earlier.levels)
                .map(|(a, &b)| a.since(b))
                .collect(),
            compares: self.compares - earlier.compares,
            descends: self.descends - earlier.descends,
            accesses: self.accesses - earlier.accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let early = CacheStats {
            hits: 10,
            misses: 2,
        };
        let late = CacheStats {
            hits: 15,
            misses: 5,
        };
        assert_eq!(late.since(early), CacheStats { hits: 5, misses: 3 });
    }

    #[test]
    fn level_stats_since() {
        let early = LevelStats {
            levels: vec![CacheStats { hits: 1, misses: 1 }, CacheStats::default()],
            compares: 10,
            descends: 2,
            accesses: 2,
        };
        let late = LevelStats {
            levels: vec![
                CacheStats { hits: 4, misses: 2 },
                CacheStats { hits: 0, misses: 1 },
            ],
            compares: 25,
            descends: 6,
            accesses: 6,
        };
        let d = late.since(&early);
        assert_eq!(d.levels[0], CacheStats { hits: 3, misses: 1 });
        assert_eq!(d.levels[1], CacheStats { hits: 0, misses: 1 });
        assert_eq!(d.compares, 15);
        assert_eq!(d.descends, 4);
        assert_eq!(d.accesses, 4);
    }
}
