//! Converts simulator counters into simulated time.
//!
//! Fig. 6 decomposes a lookup's cost into three parts: total comparisons,
//! the cost of moving across levels, and cache misses. [`TimeModel`]
//! evaluates exactly that sum with per-machine coefficients:
//!
//! ```text
//! cycles = compares·C_cmp + descends·C_move + accesses·C_acc
//!        + Σ_level misses(level)·penalty(level)
//! ```

use crate::stats::LevelStats;

/// Cycle-cost coefficients for one machine.
#[derive(Debug, Clone)]
pub struct TimeModel {
    /// Clock rate in Hz.
    pub clock_hz: f64,
    /// Miss penalty per cache level (L1 first; last = memory).
    pub miss_penalty_cycles: Vec<f64>,
    /// Cycles per key comparison.
    pub compare_cycles: f64,
    /// Cycles per node descent.
    pub descend_cycles: f64,
    /// Cycles per issued access (L1-hit latency).
    pub access_cycles: f64,
}

/// Result of evaluating a [`TimeModel`] over a set of counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Total simulated cycles.
    pub cycles: f64,
    /// `cycles / clock_hz`.
    pub seconds: f64,
    /// The portion of `cycles` attributable to cache misses (the paper's
    /// dominant term on large data, §5.1).
    pub miss_cycles: f64,
}

impl TimeModel {
    /// Evaluate the model over accumulated counters.
    pub fn evaluate(&self, stats: &LevelStats) -> SimOutcome {
        let mut miss_cycles = 0.0;
        for (i, level) in stats.levels.iter().enumerate() {
            let penalty = self
                .miss_penalty_cycles
                .get(i)
                .copied()
                .unwrap_or_else(|| *self.miss_penalty_cycles.last().expect("penalties"));
            miss_cycles += level.misses as f64 * penalty;
        }
        let compute = stats.compares as f64 * self.compare_cycles
            + stats.descends as f64 * self.descend_cycles
            + stats.accesses as f64 * self.access_cycles;
        let cycles = compute + miss_cycles;
        SimOutcome {
            cycles,
            seconds: cycles / self.clock_hz,
            miss_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheStats;

    fn model() -> TimeModel {
        TimeModel {
            clock_hz: 100e6,
            miss_penalty_cycles: vec![10.0, 100.0],
            compare_cycles: 2.0,
            descend_cycles: 3.0,
            access_cycles: 1.0,
        }
    }

    #[test]
    fn cost_decomposition() {
        let stats = LevelStats {
            levels: vec![
                CacheStats { hits: 5, misses: 4 },
                CacheStats { hits: 1, misses: 3 },
            ],
            compares: 10,
            descends: 2,
            accesses: 9,
        };
        let out = model().evaluate(&stats);
        // misses: 4*10 + 3*100 = 340; compute: 10*2 + 2*3 + 9*1 = 35.
        assert!((out.miss_cycles - 340.0).abs() < 1e-9);
        assert!((out.cycles - 375.0).abs() < 1e-9);
        assert!((out.seconds - 375.0 / 100e6).abs() < 1e-18);
    }

    #[test]
    fn zero_counters_cost_nothing() {
        let out = model().evaluate(&LevelStats {
            levels: vec![CacheStats::default(), CacheStats::default()],
            ..Default::default()
        });
        assert_eq!(out.cycles, 0.0);
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    fn extra_levels_reuse_last_penalty() {
        // A three-level stats vector against a two-penalty model charges
        // the memory penalty for the extra level instead of panicking.
        let stats = LevelStats {
            levels: vec![
                CacheStats { hits: 0, misses: 1 },
                CacheStats { hits: 0, misses: 1 },
                CacheStats { hits: 0, misses: 1 },
            ],
            ..Default::default()
        };
        let out = model().evaluate(&stats);
        assert!((out.miss_cycles - 210.0).abs() < 1e-9);
    }
}
