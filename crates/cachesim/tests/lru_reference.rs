//! Property tests: the production cache against an independent,
//! deliberately naive reference model of a set-associative LRU cache.

use cachesim::{Cache, CacheHierarchy};
use proptest::collection::vec;
use proptest::prelude::*;

/// Reference model: per-set `Vec` of blocks ordered oldest-first, written
/// with no attention to efficiency and structured differently from the
/// production code (recency appended at the back, eviction from the
/// front).
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    block: usize,
}

impl RefCache {
    fn new(capacity: usize, block: usize, assoc: usize) -> Self {
        Self {
            sets: vec![Vec::new(); capacity / block / assoc],
            assoc,
            block,
        }
    }

    /// Returns true on hit.
    fn access_byte(&mut self, addr: usize) -> bool {
        let block = (addr / self.block) as u64;
        let set = (block as usize) % self.sets.len();
        let ways = &mut self.sets[set];
        if let Some(i) = ways.iter().position(|&b| b == block) {
            ways.remove(i);
            ways.push(block);
            true
        } else {
            if ways.len() == self.assoc {
                ways.remove(0);
            }
            ways.push(block);
            false
        }
    }

    /// Access a byte range; count misses (each block at most once).
    fn access(&mut self, addr: usize, len: usize) -> u32 {
        if len == 0 {
            return 0;
        }
        let first = addr / self.block;
        let last = (addr + len - 1) / self.block;
        let mut misses = 0;
        for b in first..=last {
            if !self.access_byte(b * self.block) {
                misses += 1;
            }
        }
        misses
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_model(
        geometry in prop_oneof![
            Just((512usize, 32usize, 1usize)),
            Just((512, 32, 2)),
            Just((1024, 64, 4)),
            Just((2048, 64, 8)),
            Just((256, 64, 4)), // fully associative (one set)
        ],
        trace in vec((0usize..4096, 1usize..96), 1..400),
    ) {
        let (cap, block, assoc) = geometry;
        let mut cache = Cache::new(cap, block, assoc);
        let mut reference = RefCache::new(cap, block, assoc);
        for (addr, len) in trace {
            let got = cache.access(addr, len);
            let want = reference.access(addr, len);
            prop_assert_eq!(got, want, "addr={} len={} geom={:?}", addr, len, geometry);
        }
    }

    #[test]
    fn hierarchy_l1_equals_standalone_cache(
        trace in vec((0usize..8192, 1usize..64), 1..300),
    ) {
        // The L1 of a hierarchy must behave exactly like the same cache
        // standalone (lower levels never affect upper-level state).
        let mut solo = Cache::new(1024, 32, 2);
        let mut hier = CacheHierarchy::new(vec![
            Cache::new(1024, 32, 2),
            Cache::new(16 * 1024, 64, 4),
        ]);
        for (addr, len) in trace {
            solo.access(addr, len);
            hier.access(addr, len);
        }
        prop_assert_eq!(solo.stats(), hier.level_stats(0));
    }

    #[test]
    fn miss_count_is_trace_prefix_monotone(
        trace in vec((0usize..2048, 1usize..32), 1..200),
    ) {
        // Replaying a longer prefix can only add misses.
        let mut cache = Cache::new(512, 64, 2);
        let mut last = 0u64;
        for (addr, len) in trace {
            cache.access(addr, len);
            let misses = cache.stats().misses;
            prop_assert!(misses >= last);
            last = misses;
        }
    }

    #[test]
    fn flush_restores_cold_behaviour(
        trace in vec((0usize..2048, 1usize..32), 1..100),
    ) {
        // Cold run == run after flush, miss-for-miss.
        let mut a = Cache::new(512, 32, 4);
        let mut b = Cache::new(512, 32, 4);
        // Warm b with arbitrary junk, then flush.
        for i in 0..64 {
            b.access(i * 31, 8);
        }
        b.flush(true);
        for &(addr, len) in &trace {
            prop_assert_eq!(a.access(addr, len), b.access(addr, len));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
