//! Workspace lint runner: `cargo run -p check --bin lint [root]`.
//!
//! Walks every crate's `src/` under the workspace root (default: the
//! workspace this binary was built from), applies the rules documented
//! in [`check::lint`], prints each violation as `file:line: [rule]
//! message`, and exits non-zero when any rule is broken — which is what
//! makes it enforceable as a required CI job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let violations = match check::lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("lint: workspace clean under rules S1/O1/F1/H1/W1/M1");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    eprintln!("lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
