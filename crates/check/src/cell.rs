//! [`RaceCell`]: plain (non-atomic) shared memory whose accesses are
//! checked against the happens-before order.
//!
//! Models use it to stand in for the data a synchronisation protocol
//! protects: reads and writes go through the vector-clock race detector
//! (`rt::cell_access`), so if two threads touch the cell
//! without an ordering edge between them the checker reports a data
//! race — with both source locations — instead of the silent memory
//! corruption real hardware would eventually produce.
//!
//! The value itself lives behind a real `Mutex` so the *process* stays
//! memory-safe even on racy schedules; the detector reports the race
//! the model has, the cell just refuses to make it undefined behavior.

use crate::rt;
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock};

/// Shared plain memory with happens-before-checked access.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    id: OnceLock<usize>,
    value: StdMutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// A new cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            value: StdMutex::new(value),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(rt::new_cell)
    }

    /// A checked plain read (a schedule point).
    #[track_caller]
    pub fn get(&self) -> T {
        rt::cell_access(self.id(), false, true, Location::caller());
        *self.value.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A checked plain write (a schedule point).
    #[track_caller]
    pub fn set(&self, value: T) {
        rt::cell_access(self.id(), true, true, Location::caller());
        *self.value.lock().unwrap_or_else(|e| e.into_inner()) = value;
    }
}

// SAFETY: the payload sits behind a std Mutex, so concurrent access is
// synchronised at the process level regardless of what the model does;
// T: Send suffices exactly as it does for Mutex<T>.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above — all shared access routes through the inner Mutex.
unsafe impl<T: Send> Sync for RaceCell<T> {}
