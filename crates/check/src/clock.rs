//! Vector clocks: the partial order behind the happens-before race
//! detector.
//!
//! Every model thread carries a [`VClock`]; component `t` is the number
//! of events thread `t` had performed the last time its knowledge
//! reached this clock. The detector's entire memory-model story reduces
//! to moves on these clocks:
//!
//! * a thread **ticks** its own component at every event it performs;
//! * an *Acquire* load (or mutex acquire, or join) **joins** the
//!   released clock of the thing it synchronised with;
//! * a *Release* store (or mutex release, or thread exit) publishes a
//!   copy of the releasing thread's clock for a later acquirer to join;
//! * a *Relaxed* access moves no clocks at all — which is exactly how
//!   an ordering downgraded too far becomes visible as a race.
//!
//! Two accesses are ordered (happened-before) iff the earlier access's
//! timestamp is ≤ the later thread's component for the earlier thread.
//! Anything else is concurrent, and concurrent conflicting plain
//! accesses are a data race.

/// A vector clock over the (dense, per-execution) model thread ids.
///
/// Missing components are zero, so clocks grow lazily as threads spawn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The all-zero clock (knows of no events).
    pub fn new() -> Self {
        Self::default()
    }

    /// This clock's component for thread `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance thread `tid`'s own component by one event.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` knows everything `other`
    /// knew. This is the acquire side of every synchronises-with edge.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Record that thread `tid` performed an access at its current time
    /// `time` (used for the per-variable read/write access clocks).
    pub fn set(&mut self, tid: usize, time: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = time;
    }

    /// The first thread whose recorded access in `self` is **not**
    /// happened-before `observer`'s clock — i.e. a concurrent access —
    /// or `None` when every recorded access is ordered before the
    /// observer. `skip` is the observing thread itself (its own earlier
    /// accesses are always ordered by program order).
    pub fn first_concurrent(&self, observer: &VClock, skip: usize) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .find(|&(t, &time)| t != skip && time > 0 && time > observer.get(t))
            .map(|(t, _)| t)
    }

    /// Reset every component to zero (a *Relaxed* store publishing no
    /// ordering resets the variable's release clock with this).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        c.tick(0);
        assert_eq!((c.get(0), c.get(1), c.get(3)), (1, 0, 2));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1)), (2, 1));
        b.join(&a);
        assert_eq!((b.get(0), b.get(1)), (2, 1));
    }

    #[test]
    fn concurrent_detection() {
        // Thread 1 wrote at time 1; an observer that never joined
        // thread 1's clock sees that write as concurrent.
        let mut writes = VClock::new();
        writes.set(1, 1);
        let mut observer = VClock::new();
        observer.tick(0);
        assert_eq!(writes.first_concurrent(&observer, 0), Some(1));
        // After the observer learns of thread 1's first event, the
        // write is ordered.
        let mut released = VClock::new();
        released.tick(1);
        observer.join(&released);
        assert_eq!(writes.first_concurrent(&observer, 0), None);
        // A thread never races with its own accesses.
        assert_eq!(writes.first_concurrent(&VClock::new(), 1), None);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut c = VClock::new();
        c.tick(2);
        c.clear();
        assert_eq!(c.get(2), 0);
        assert_eq!(c, VClock::new());
    }
}
