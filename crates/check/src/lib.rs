//! ccindex-check: correctness tooling for the ccindex serving stack.
//!
//! Three tools in one dependency-free crate:
//!
//! 1. **A deterministic concurrency model checker** in the spirit of
//!    loom: shim sync types ([`sync`], [`thread`], [`time`], [`cell`])
//!    whose every operation is a schedule point of a cooperative
//!    scheduler, and an explorer ([`Checker`]) that enumerates every
//!    bounded interleaving of a model by depth-first search over the
//!    schedule tree — with bounded preemptions and injected spurious
//!    condvar wakeups. See `src/rt.rs` for the scheduler design.
//! 2. **A happens-before race detector**: vector clocks ([`clock`])
//!    track the ordering each `Acquire`/`Release` edge actually
//!    establishes, `Relaxed` establishes none, and conflicting plain
//!    accesses ([`cell::RaceCell`], [`sync::Arc`] reclaim) with no edge
//!    between them are reported as data races with both source
//!    locations. An ordering downgraded too far is a reported finding,
//!    not a latent once-in-a-million corruption.
//! 3. **A workspace lint** ([`lint`], `cargo run -p check --bin lint`)
//!    for rules the compiler can't enforce: `// SAFETY:` on every
//!    `unsafe`, `// ORDERING:` on every explicit non-`SeqCst` atomic
//!    ordering choice, no `static mut` / `transmute`, and crate-level
//!    lint hygiene.
//!
//! Production code doesn't depend on this crate directly: it imports
//! sync types from `ccindex_parallel::sync`, a facade that re-exports
//! `std::sync` normally and this crate's shims under
//! `RUSTFLAGS="--cfg ccindex_check"`. The model suites in
//! `crates/check/tests/` then exercise the *real* `SwapSlot`,
//! `BlockingQueue`, and `WorkerPool` under exhaustive scheduling.
//!
//! # Example
//!
//! ```
//! use check::{Checker, sync::Arc, sync::atomic::Ordering};
//! use check::cell::RaceCell;
//!
//! // Release-publish / Acquire-consume: explored exhaustively, clean.
//! Checker::default().check(|| {
//!     let data = Arc::new(RaceCell::new(0u64));
//!     let flag = Arc::new(check::sync::AtomicU64::new(0));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = check::thread::spawn(move || {
//!         d2.set(42);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.get(), 42);
//!     }
//!     t.join().unwrap();
//! });
//! ```
//!
//! Downgrade that `Release`/`Acquire` pair to `Relaxed` and
//! [`Checker::check_result`] returns a [`FindingKind::DataRace`] — the
//! mutation suite in `tests/mutants.rs` pins exactly that.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
pub mod clock;
pub mod lint;
mod rt;
pub mod sync;
pub mod thread;
pub mod time;

pub use rt::{Config, Finding, FindingKind, Stats};

/// The model-checker front door: configure exploration bounds, then
/// [`check`](Checker::check) a model closure.
///
/// The closure is re-run once per explored schedule, so it must create
/// its shim objects (and threads) fresh each call and must be
/// deterministic apart from the scheduling the checker controls — no
/// real time, no randomness, no I/O.
#[derive(Clone, Debug, Default)]
pub struct Checker {
    config: Config,
}

impl Checker {
    /// A checker with the default bounds (2 preemptions, spurious
    /// wakeups on, 100k executions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Max context switches away from a still-runnable thread per
    /// execution (`None` = unbounded). Switches at blocking points are
    /// always free, so protocol-forced schedules are never cut.
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.config.preemption_bound = bound;
        self
    }

    /// Max executions before the search is reported incomplete.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.config.max_iterations = n;
        self
    }

    /// Enable/disable spurious condvar wakeup injection.
    pub fn spurious_wakeups(mut self, on: bool) -> Self {
        self.config.spurious_wakeups = on;
        self
    }

    /// Spurious wakeups injected per thread per execution (per-thread
    /// rather than per-wait so predicate loops can't re-wait forever).
    pub fn max_spurious_per_thread(mut self, n: usize) -> Self {
        self.config.max_spurious_per_thread = n;
        self
    }

    /// Explore every bounded interleaving of `model`; panics with a
    /// report (kind, message, schedule, trace) on the first finding.
    pub fn check<F>(self, model: F) -> Stats
    where
        F: Fn() + Send + Sync,
    {
        match self.check_result(model) {
            Ok(stats) => stats,
            Err(finding) => panic!("{finding}"),
        }
    }

    /// Like [`check`](Checker::check) but returns the finding instead
    /// of panicking — the mutation self-tests use this to assert that
    /// deliberately-broken protocols *are* caught.
    pub fn check_result<F>(self, model: F) -> Result<Stats, Finding>
    where
        F: Fn() + Send + Sync,
    {
        rt::explore(self.config, model)
    }
}

/// Explore `model` with the default [`Checker`]; panics on a finding.
pub fn model<F>(model: F) -> Stats
where
    F: Fn() + Send + Sync,
{
    Checker::default().check(model)
}
