//! The workspace source lint: rules the compiler can't enforce,
//! checked mechanically so they hold by construction instead of by
//! review vigilance. Run as `cargo run -p check --bin lint` (a required
//! CI job).
//!
//! | rule | requirement |
//! |------|-------------|
//! | S1   | every `unsafe` block / impl / fn carries a `// SAFETY:` comment on the same line or just above |
//! | O1   | every explicit non-`SeqCst` atomic ordering at an atomic call site carries a `// ORDERING:` justification |
//! | F1   | no `static mut`, no `transmute` |
//! | H1   | every `lib.rs` opens with `//!` docs and declares `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | W1   | no `.unwrap()` / `.expect(` on socket- or file-I/O lines — transport and storage faults must map to typed errors |
//! | M1   | metric names at registration sites (`.counter("…")` / `.gauge("…")` / `.histogram("…")`) are `dot.separated` lowercase, and each name is registered at exactly one source site workspace-wide |
//!
//! O1 exists because of exactly the bug class PR 7 is about: a
//! lifetime-guarding counter (a pin count, a refcount) downgraded to
//! `Relaxed` still passes every test and still races. The lint can't
//! know which counters guard lifetimes, so it demands the human
//! argument — the `// ORDERING:` comment — at every site where the
//! choice was made explicitly, and the model checker then tests the
//! argument. `SeqCst` needs no justification (it is the conservative
//! default), and `#[cfg(test)]` code is exempt.
//!
//! M1 exists because metric names are an interface shared with
//! dashboards and scrape configs: a name that drifts in casing or
//! punctuation, or a second registration site that silently shares (or
//! at a different type, panics on) another site's series, breaks
//! consumers with no compiler involved. Registration is the one place a
//! name is minted — `Registry::counter("…")` et al. — so the lint pins
//! the convention there and demands every other use go through a shared
//! handle or the `find_*` read accessors (which deliberately don't
//! match the registration patterns).
//!
//! W1 exists because the distributed layer's whole contract is that a
//! dead or misbehaving peer surfaces as a typed
//! `MmdbError::Transport`, never a panic: one stray `.unwrap()` on a
//! socket read turns a killed shard into a crashed coordinator. The
//! storage layer makes the same promise for files — a truncated or
//! bit-flipped store surfaces as a typed `MmdbError::Storage`, so the
//! rule covers file-I/O lines (`File::open`, `fs::write`, …) too. The
//! lint recognizes I/O lines by token (`TcpStream`, `read_frame`,
//! `.accept()`, `File::open`, …) so unrelated `unwrap`s on the same
//! code path — a `Mutex::lock` poison recovery, a thread join — don't
//! false-positive.
//!
//! The scanner is deliberately line-based and dependency-free: string
//! literals and comments are blanked by a small state machine before
//! pattern checks, `#[cfg(test)]` items are skipped by brace counting.
//! It is a lint, not a parser — it prefers a rare false positive (fix:
//! write the comment) over a dependency on a Rust parser crate.

use std::fmt;
use std::path::{Path, PathBuf};

/// One broken rule at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending file (as walked, workspace-relative when
    /// the walk root was relative).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`S1`, `O1`, `F1`, `H1`, `W1`, `M1`).
    pub rule: &'static str,
    /// What to fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lint every `.rs` file under `<root>/crates/*/src` and `<root>/src`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    let mut violations = Vec::new();
    let mut registrations = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        violations.extend(lint_source(&file, &text));
        for (name, line) in metric_registrations(&text) {
            registrations.push((file.clone(), line, name));
        }
    }
    violations.extend(metric_uniqueness(&registrations));
    Ok(violations)
}

/// The workspace half of rule M1: every metric name is minted at
/// exactly one registration site. `registrations` is every
/// `(file, line, name)` site found by [`metric_registrations`]; each
/// site past a name's first is a violation pointing back at the
/// original, so the fix — share the handle — is on the screen.
pub fn metric_uniqueness(registrations: &[(PathBuf, usize, String)]) -> Vec<Violation> {
    let mut first: std::collections::BTreeMap<&str, (&PathBuf, usize)> =
        std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for (file, line, name) in registrations {
        match first.get(name.as_str()) {
            None => {
                first.insert(name, (file, *line));
            }
            Some((f0, l0)) => out.push(Violation {
                file: file.clone(),
                line: *line,
                rule: "M1",
                message: format!(
                    "metric `{name}` is already registered at {}:{l0}; register once and \
                     share the handle (reads go through `find_*`)",
                    f0.display()
                ),
            }),
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's source text (the unit-testable core).
pub fn lint_source(file: &Path, text: &str) -> Vec<Violation> {
    let raw: Vec<&str> = text.lines().collect();
    let code = strip(text);
    debug_assert_eq!(code.len(), raw.len());
    let in_test = test_regions(&code);
    let mut out = Vec::new();

    for (i, code_line) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let lineno = i + 1;

        // F1: forbidden constructs, justification impossible.
        if contains_word(code_line, "static") && contains_word(code_line, "mut") {
            // Only flag the actual `static mut` sequence, not e.g.
            // `static X: Mutex<...>` or `&'static mut` in a type.
            if code_line.contains("static mut") {
                out.push(Violation {
                    file: file.to_owned(),
                    line: lineno,
                    rule: "F1",
                    message: "`static mut` is forbidden; use an atomic, a lock, or OnceLock"
                        .to_owned(),
                });
            }
        }
        if code_line.contains("transmute") {
            out.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: "F1",
                message: "`transmute` is forbidden; use safe conversions or raw-pointer casts \
                          with a SAFETY argument"
                    .to_owned(),
            });
        }

        // S1: unsafe needs a SAFETY comment.
        if needs_safety(code_line) && !commented_nearby(&raw, i, "SAFETY:") {
            out.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: "S1",
                message: "`unsafe` without a `// SAFETY:` comment on the line or just above"
                    .to_owned(),
            });
        }

        // O1: explicit weak ordering at an atomic call site needs an
        // ORDERING justification.
        if weak_ordering_at_atomic_op(code_line) && !commented_nearby(&raw, i, "ORDERING:") {
            out.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: "O1",
                message: "non-SeqCst atomic ordering without a `// ORDERING:` justification \
                          on the line or just above"
                    .to_owned(),
            });
        }

        // W1: socket and file I/O never panic — a dead peer must become
        // a typed transport error and a bad file a typed storage error,
        // not a crash.
        if (socket_io_line(code_line) || file_io_line(code_line))
            && (code_line.contains(".unwrap()") || code_line.contains(".expect("))
        {
            out.push(Violation {
                file: file.to_owned(),
                line: lineno,
                rule: "W1",
                message: "`.unwrap()`/`.expect()` on a socket- or file-I/O line; map the \
                          failure to a typed transport/storage error instead"
                    .to_owned(),
            });
        }
    }

    // M1 (per-file half): registration-site metric names follow the
    // naming convention. Uniqueness across files is checked by
    // `lint_workspace` via `metric_uniqueness`.
    for (name, line) in metric_registrations(text) {
        if !valid_metric_name(&name) {
            out.push(Violation {
                file: file.to_owned(),
                line,
                rule: "M1",
                message: format!(
                    "metric name `{name}` must be dot.separated lowercase \
                     (`[a-z0-9]` segments joined by `.`)"
                ),
            });
        }
    }

    // H1: lib.rs hygiene.
    if file.file_name().is_some_and(|n| n == "lib.rs") {
        if !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            out.push(Violation {
                file: file.to_owned(),
                line: 1,
                rule: "H1",
                message: "lib.rs must declare #![deny(unsafe_op_in_unsafe_fn)]".to_owned(),
            });
        }
        let first = raw.iter().find(|l| !l.trim().is_empty());
        if !first.is_some_and(|l| l.trim_start().starts_with("//!")) {
            out.push(Violation {
                file: file.to_owned(),
                line: 1,
                rule: "H1",
                message: "lib.rs must open with `//!` crate-level docs".to_owned(),
            });
        }
    }

    out
}

/// Metric-registration sites in one file: `(name, line)` for every
/// `.counter("…")` / `.gauge("…")` / `.histogram("…")` call with a
/// literal name, outside `#[cfg(test)]` code. The read accessors
/// (`find_counter`, `find_gauge`, `find_histogram`) deliberately don't
/// match — only registration sites mint a name. Detection runs on the
/// stripped line (so a comment or string merely *mentioning* a
/// registration doesn't count); the name itself is read back from the
/// raw line, taking the first as many matches as the stripped line
/// proved are code.
pub fn metric_registrations(text: &str) -> Vec<(String, usize)> {
    const PATTERNS: [&str; 3] = [".counter(\"", ".gauge(\"", ".histogram(\""];
    let raw: Vec<&str> = text.lines().collect();
    let code = strip(text);
    let in_test = test_regions(&code);
    let mut out = Vec::new();
    for (i, code_line) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for pat in PATTERNS {
            let in_code = code_line.matches(pat).count();
            let mut offset = 0;
            for _ in 0..in_code {
                let Some(pos) = raw[i][offset..].find(pat) else {
                    break;
                };
                let start = offset + pos + pat.len();
                offset = start;
                if let Some(len) = raw[i][start..].find('"') {
                    out.push((raw[i][start..start + len].to_owned(), i + 1));
                }
            }
        }
    }
    out.sort_by_key(|(_, line)| *line);
    out
}

/// The naming convention rule M1 enforces on registration literals —
/// the same predicate `ccindex-obs` asserts at runtime
/// (`valid_metric_name`): lowercase `dot.separated` segments of
/// `[a-z0-9]`.
fn valid_metric_name(name: &str) -> bool {
    name.contains('.')
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

/// Whether a stripped line introduces an unsafe block/impl/fn.
fn needs_safety(code_line: &str) -> bool {
    let mut rest = code_line;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// Whether a stripped line both names a weak `Ordering::` variant and
/// performs an atomic operation — the site where the choice matters.
fn weak_ordering_at_atomic_op(code_line: &str) -> bool {
    let weak = [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
    ];
    if !weak.iter().any(|w| code_line.contains(w)) {
        return false;
    }
    let ops = [
        ".load(",
        ".store(",
        ".fetch_",
        ".compare_exchange",
        ".swap(",
    ];
    ops.iter().any(|op| code_line.contains(op))
}

/// Whether a stripped line performs socket I/O. Token-based on
/// purpose: the socket types and the wire crate's framing/stream
/// helpers name the operations that can fail because a *peer*
/// misbehaved, which is exactly the failure class that must stay
/// typed. Lines that merely sit near sockets (`Mutex::lock` poison
/// recovery, `JoinHandle::join`) carry none of these tokens.
fn socket_io_line(code_line: &str) -> bool {
    const TOKENS: [&str; 15] = [
        "TcpStream",
        "TcpListener",
        "UdpSocket",
        ".accept()",
        "::connect(",
        "read_frame",
        "write_frame",
        "read_request",
        "write_request",
        "read_response",
        "write_response",
        "set_read_timeout",
        "set_write_timeout",
        "set_nodelay",
        "peer_addr",
    ];
    TOKENS.iter().any(|t| code_line.contains(t))
}

/// Whether a stripped line performs file I/O — the storage twin of
/// [`socket_io_line`]. Same token-based discipline: these name the
/// operations that can fail because the *filesystem* misbehaved
/// (missing file, short read, full disk), which is exactly the failure
/// class `MmdbError::Storage` types.
fn file_io_line(code_line: &str) -> bool {
    const TOKENS: [&str; 12] = [
        "File::open",
        "File::create",
        "OpenOptions",
        "fs::read",
        "fs::write",
        "fs::metadata",
        "fs::copy",
        "fs::rename",
        "fs::remove_file",
        "fs::remove_dir",
        "fs::create_dir",
        ".sync_all(",
    ];
    TOKENS.iter().any(|t| code_line.contains(t))
}

/// Whether `needle` appears in a `//` comment on line `i` or anywhere
/// in the contiguous comment block directly above it (blank lines and
/// attribute lines don't break the association; a code line does, so a
/// justification can't drift away from its site).
fn commented_nearby(raw: &[&str], i: usize, needle: &str) -> bool {
    if line_comment_contains(raw[i], needle) {
        return true;
    }
    // Bound the scan so a pathological megacomment can't make the pass
    // quadratic; no real justification block approaches this.
    let mut remaining = 64;
    let mut j = i;
    while remaining > 0 && j > 0 {
        j -= 1;
        let line = raw[j].trim_start();
        if line.is_empty() || line.starts_with("#[") || line.starts_with("#!") {
            continue; // doesn't consume the look-back budget
        }
        if line_comment_contains(raw[j], needle) {
            return true;
        }
        if !line.starts_with("//") {
            return false; // a code line in between breaks the association
        }
        remaining -= 1;
    }
    false
}

fn line_comment_contains(raw_line: &str, needle: &str) -> bool {
    raw_line
        .find("//")
        .is_some_and(|pos| raw_line[pos..].contains(needle))
}

fn contains_word(haystack: &str, word: &str) -> bool {
    let mut rest = haystack;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + word.len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

/// Blank out comments and string/char-literal contents, preserving the
/// line structure, so pattern checks only see code.
fn strip(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(usize), // nesting depth
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let bytes = line.as_bytes();
        let mut stripped = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i..].starts_with(b"*/") {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if bytes[i..].starts_with(b"/*") {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                State::Code => {}
            }
            if bytes[i..].starts_with(b"//") {
                break; // rest of the line is a comment
            }
            if bytes[i..].starts_with(b"/*") {
                state = State::Block(1);
                i += 2;
                continue;
            }
            match bytes[i] {
                b'"' => {
                    // Skip the string literal body (escapes included);
                    // an unterminated literal (raw string spanning
                    // lines — not used in this workspace) blanks the
                    // rest of the line.
                    stripped.push('"');
                    i += 1;
                    while i < bytes.len() {
                        if bytes[i] == b'\\' {
                            i += 2;
                        } else if bytes[i] == b'"' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    stripped.push('"');
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes within
                    // a few bytes; a lifetime has no closing quote.
                    let close = if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                        bytes
                            .get(i + 2..)
                            .and_then(|r| r.iter().position(|&b| b == b'\''))
                            .map(|p| i + 2 + p)
                    } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                        Some(i + 2)
                    } else {
                        None
                    };
                    if let Some(close) = close {
                        stripped.push_str("' '");
                        i = close + 1;
                    } else {
                        stripped.push('\'');
                        i += 1;
                    }
                }
                b => {
                    stripped.push(b as char);
                    i += 1;
                }
            }
        }
        out.push(stripped);
    }
    if text.is_empty() {
        out.push(String::new());
    }
    out
}

/// Which lines sit inside a `#[cfg(test)]` item (computed on stripped
/// lines by brace counting from the attribute).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let t = code[i].trim_start();
        let is_test_attr = t.starts_with("#[cfg(test)]")
            || t.starts_with("#[cfg(all(test")
            || t.starts_with("#[cfg(any(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Skip forward over the attributed item, tracking brace depth
        // from its first `{`.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = i;
        while j < code.len() {
            in_test[j] = true;
            for b in code[j].bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !seen_open && depth == 0 => {
                        // An item without a body (e.g. `mod tests;`).
                        seen_open = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            j += 1;
            if seen_open && depth <= 0 {
                break;
            }
        }
        i = j;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(text: &str) -> Vec<Violation> {
        lint_source(Path::new("x.rs"), text)
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let v = lint("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "S1");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_passes() {
        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint(ok).is_empty());
        let same_line = "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid\n}\n";
        assert!(lint(same_line).is_empty());
    }

    #[test]
    fn safety_comment_does_not_reach_past_code() {
        let v = lint(
            "// SAFETY: this comment is about g, not f\nfn g() {}\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn weak_ordering_without_justification_flagged() {
        let v = lint("fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "O1");
    }

    #[test]
    fn seqcst_and_justified_weak_orderings_pass() {
        assert!(lint("fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::SeqCst); }\n").is_empty());
        assert!(lint(
            "fn f(a: &AtomicUsize) {\n    // ORDERING: observability counter only.\n    a.fetch_add(1, Ordering::Relaxed);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn match_arms_on_cmp_ordering_not_flagged() {
        // `std::cmp::Ordering` pattern matches have no atomic call on
        // the line, so O1 ignores them.
        assert!(lint("match a.cmp(&b) {\n    Ordering::Less => {}\n    _ => {}\n}\n").is_empty());
    }

    #[test]
    fn forbidden_constructs_flagged() {
        let v = lint("static mut COUNTER: u32 = 0;\n");
        assert_eq!(v[0].rule, "F1");
        let v = lint("fn f(x: u64) -> f64 { unsafe { std::mem::transmute(x) } }\n");
        assert!(v
            .iter()
            .any(|v| v.rule == "F1" && v.message.contains("transmute")));
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        assert!(lint("fn f() { let s = \"unsafe { transmute }\"; }\n").is_empty());
        assert!(lint("// a note that mentions unsafe { } and static mut\nfn f() {}\n").is_empty());
        assert!(lint("/* unsafe {\n   transmute across lines\n*/\nfn f() {}\n").is_empty());
    }

    #[test]
    fn cfg_test_regions_exempt() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    fn t(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn lib_rs_hygiene() {
        let v = lint_source(Path::new("lib.rs"), "pub fn f() {}\n");
        assert!(v
            .iter()
            .any(|v| v.rule == "H1" && v.message.contains("deny")));
        assert!(v
            .iter()
            .any(|v| v.rule == "H1" && v.message.contains("//!")));
        let ok = "//! Docs.\n#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(lint_source(Path::new("lib.rs"), ok).is_empty());
    }

    #[test]
    fn socket_unwrap_flagged() {
        let v = lint("fn f() { let s = TcpStream::connect(\"a:1\").unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
        let v = lint("fn f(l: &TcpListener) { let (s, _) = l.accept().expect(\"peer\"); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
        let v = lint("fn f(r: &mut impl Read) { let p = read_frame(r, \"e\").unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
    }

    #[test]
    fn socket_io_mapped_to_typed_errors_passes() {
        assert!(
            lint("fn f() -> Result<TcpStream> { TcpStream::connect(a).map_err(conn)? }\n")
                .is_empty()
        );
        assert!(
            lint("fn f(s: &TcpStream) { let e = s.peer_addr().map(|a| a.to_string()); }\n")
                .is_empty()
        );
    }

    #[test]
    fn non_socket_unwraps_near_sockets_not_flagged() {
        // Poison recovery and thread joins have no socket token; they
        // may panic without violating the transport contract.
        assert!(lint(
            "fn f(m: &Mutex<Vec<u8>>) { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }\n"
        )
        .is_empty());
        assert!(
            lint("fn f(h: JoinHandle<()>) { h.join().expect(\"thread panicked\"); }\n").is_empty()
        );
    }

    #[test]
    fn socket_unwrap_in_tests_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let s = TcpStream::connect(\"a:1\").unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn file_io_unwrap_flagged() {
        let v = lint("fn f() { let b = std::fs::read(\"x.ccsp\").unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
        let v = lint("fn f() { let file = File::open(path).expect(\"store\"); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
        let v = lint("fn f(p: &Path, b: &[u8]) { std::fs::write(p, b).unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "W1");
    }

    #[test]
    fn file_io_mapped_to_typed_errors_passes() {
        assert!(lint(
            "fn f(p: &Path) -> Result<Vec<u8>> { std::fs::read(p).map_err(open_fault) }\n"
        )
        .is_empty());
        assert!(
            lint("fn f(p: &Path, b: &[u8]) -> Result<()> { std::fs::write(p, b)?; Ok(()) }\n")
                .is_empty()
        );
    }

    #[test]
    fn file_io_unwrap_in_tests_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"t\", b\"x\").unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn metric_registrations_extracted_from_code_only() {
        let src = "fn m(r: &Registry) {\n\
                   \x20   let c = r.counter(\"serve.requests\");\n\
                   \x20   let g = r.gauge(\"serve.queue.depth\"); // or .counter(\"not.me\")\n\
                   \x20   let h = r.histogram(\"serve.latency.ns\");\n\
                   \x20   let f = r.find_counter(\"serve.requests\");\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n    fn t(r: &Registry) { r.counter(\"test.only\"); }\n}\n";
        let regs = metric_registrations(src);
        assert_eq!(
            regs,
            vec![
                ("serve.requests".to_owned(), 2),
                ("serve.queue.depth".to_owned(), 3),
                ("serve.latency.ns".to_owned(), 4),
            ]
        );
    }

    #[test]
    fn malformed_metric_names_flagged() {
        let v = lint("fn m(r: &Registry) { r.counter(\"BadName\"); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "M1");
        let v = lint("fn m(r: &Registry) { r.histogram(\"nodots\"); }\n");
        assert_eq!(v[0].rule, "M1");
        assert!(lint("fn m(r: &Registry) { r.gauge(\"serve.queue.depth\"); }\n").is_empty());
        // Dynamic names aren't literals; the runtime assert owns those.
        assert!(lint("fn m(r: &Registry, n: &str) { r.counter(n); }\n").is_empty());
    }

    #[test]
    fn duplicate_metric_registrations_flagged_at_the_second_site() {
        let a = PathBuf::from("a.rs");
        let b = PathBuf::from("b.rs");
        let regs = vec![
            (a.clone(), 10, "serve.requests".to_owned()),
            (b.clone(), 5, "serve.latency.ns".to_owned()),
            (b.clone(), 20, "serve.requests".to_owned()),
        ];
        let v = metric_uniqueness(&regs);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, &v[0].file, v[0].line), ("M1", &b, 20));
        assert!(v[0].message.contains("a.rs:10"), "{}", v[0].message);
    }

    #[test]
    fn lifetimes_do_not_derail_the_stripper() {
        let src =
            "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g(p: *const u8) -> u8 { unsafe { *p } }\n";
        let v = lint(src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("S1", 2));
    }
}
