//! The deterministic cooperative scheduler and DFS schedule explorer.
//!
//! # How an execution runs
//!
//! Model threads are real OS threads, but **exactly one is ever
//! runnable**: every shim operation (atomic access, mutex lock/unlock,
//! condvar wait/notify, spawn/join, tracked cell access) funnels through
//! [`Execution::switch`], which consults the current schedule, picks the
//! next thread to run, wakes it through its [`Gate`], and parks the
//! yielding thread. Because all scheduling decisions flow through one
//! place, an execution is fully determined by the sequence of branch
//! choices it consumed — so it can be replayed, and the space of
//! executions can be enumerated.
//!
//! # How the space is explored
//!
//! Every nondeterministic decision — which thread runs next, which
//! condvar waiter a `notify_one` wakes, whether a timed wait returns an
//! item, a timeout, or a spurious wakeup — is a call to
//! [`Schedule::choose`]`(width)`. The explorer runs the model once
//! taking the first alternative at every fresh branch, then backtracks:
//! the deepest branch with an untried alternative is advanced and the
//! model re-run, replaying the shared prefix. The walk terminates when
//! the tree is exhausted (or a configured iteration cap trips, which is
//! reported as an incomplete search, never as a pass).
//!
//! Two standard reductions keep the tree tractable:
//!
//! * **bounded preemption** (CHESS-style): a context switch away from a
//!   thread that could have continued is a preemption; executions with
//!   more than the configured budget are not generated. Switches at
//!   blocking points are free, so every schedule a blocking protocol
//!   forces is still explored.
//! * **single-branch collapsing**: points with one enabled thread
//!   consume no branch.
//!
//! # What is checked
//!
//! * **Assertions** in model code (and panics anywhere in it) fail the
//!   execution that produced them, reported with its schedule.
//! * **Deadlock**: no thread enabled while some are blocked.
//! * **Data races**: every tracked plain access (see
//!   [`crate::cell::RaceCell`] and [`crate::sync::Arc`]) is checked
//!   against the vector-clock order; conflicting concurrent accesses
//!   are reported with both locations. Acquire/Release edges move
//!   clocks; `Relaxed` moves none — see [`crate::clock`].
//!
//! Executions are sequentially consistent interleavings (there is no
//! store-buffer simulation); weak-memory mistakes surface through the
//! happens-before detector rather than through value reordering.

use crate::clock::VClock;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

/// Message used when the runtime unwinds a thread of a failed execution
/// so that the process can make progress; never reported as the finding.
pub(crate) const POISON_MSG: &str = "ccindex-check: execution poisoned (secondary unwind)";

// ---------------------------------------------------------------------
// Configuration and findings
// ---------------------------------------------------------------------

/// Exploration limits and features; see [`crate::Checker`] for the
/// builder surface.
#[derive(Clone, Debug)]
pub struct Config {
    /// Max context switches away from a runnable thread per execution
    /// (`None` = unbounded). Blocking switches are always free.
    pub preemption_bound: Option<usize>,
    /// Max executions to run before declaring the search incomplete.
    pub max_iterations: usize,
    /// Max branch points in one execution (runaway-model guard).
    pub max_branches: usize,
    /// Inject spurious condvar wakeups as schedule choices.
    pub spurious_wakeups: bool,
    /// Spurious wakeups injected per thread per execution. Per-thread
    /// (not per-wait) deliberately: a per-wait budget would renew
    /// itself on every re-wait of a predicate loop, making the
    /// schedule tree infinite.
    pub max_spurious_per_thread: usize,
    /// Trailing shim events kept for failure reports.
    pub trace_limit: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_iterations: 100_000,
            max_branches: 20_000,
            spurious_wakeups: true,
            max_spurious_per_thread: 1,
            trace_limit: 60,
        }
    }
}

/// What kind of defect a failed exploration found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Concurrent conflicting plain accesses with no happens-before
    /// edge between them.
    DataRace,
    /// No thread enabled while at least one was blocked.
    Deadlock,
    /// An assertion (or any panic) fired inside the model.
    Panic,
    /// The schedule tree was not exhausted within the configured caps.
    Incomplete,
}

/// A defect found by exploration: the kind, a message naming the
/// involved accesses, and the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The defect class.
    pub kind: FindingKind,
    /// Human-readable description (includes source locations).
    pub message: String,
    /// The branch choices of the failing execution.
    pub schedule: Vec<usize>,
    /// The trailing shim events of the failing execution.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ccindex-check {:?}: {}", self.kind, self.message)?;
        writeln!(f, "  schedule: {:?}", self.schedule)?;
        for line in &self.trace {
            writeln!(f, "  trace: {line}")?;
        }
        Ok(())
    }
}

/// Summary of a completed exploration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Executions run.
    pub iterations: usize,
    /// Whether the schedule tree was exhausted (within the preemption
    /// bound) rather than cut off by `max_iterations`.
    pub complete: bool,
}

// ---------------------------------------------------------------------
// Schedule: the DFS path through the branch tree
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Branch {
    width: usize,
    picked: usize,
}

#[derive(Default, Debug)]
pub(crate) struct Schedule {
    path: Vec<Branch>,
    cursor: usize,
}

impl Schedule {
    /// Take the next decision with `width` alternatives: replay the
    /// recorded pick while inside the prefix, otherwise extend the path
    /// with alternative 0.
    fn choose(&mut self, width: usize) -> usize {
        debug_assert!(width >= 2, "width-1 choices must not consume branches");
        if let Some(b) = self.path.get(self.cursor) {
            assert_eq!(
                b.width, width,
                "nondeterministic model: branch width changed on replay \
                 (model code must not read real time, randomness, or \
                 anything else that varies between runs)"
            );
            self.cursor += 1;
            return b.picked;
        }
        self.path.push(Branch { width, picked: 0 });
        self.cursor += 1;
        0
    }

    /// Advance to the next unexplored schedule; `false` when the tree
    /// is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(b) = self.path.pop() {
            if b.picked + 1 < b.width {
                self.path.push(Branch {
                    width: b.width,
                    picked: b.picked + 1,
                });
                self.cursor = 0;
                return true;
            }
        }
        false
    }

    fn picks(&self) -> Vec<usize> {
        self.path.iter().map(|b| b.picked).collect()
    }
}

// ---------------------------------------------------------------------
// Per-thread gate: the park/unpark handshake
// ---------------------------------------------------------------------

#[derive(Default, Debug)]
struct Gate {
    flag: StdMutex<bool>,
    cv: StdCondvar,
}

impl Gate {
    fn park(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        while !*flag {
            flag = self.cv.wait(flag).unwrap_or_else(|e| e.into_inner());
        }
        *flag = false;
    }

    fn unpark(&self) {
        *self.flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum BlockKind {
    /// Waiting to acquire shim mutex `lock`.
    Lock { lock: usize },
    /// Waiting on shim condvar `cv` (absolute virtual-ns deadline for
    /// timed waits).
    CondWait {
        cv: usize,
        deadline: Option<u64>,
        notified: bool,
    },
    /// Waiting for thread `target` to finish.
    Join { target: usize },
}

#[derive(Debug)]
enum Status {
    /// Runnable (scheduled or parked awaiting its turn).
    Ready,
    Blocked(BlockKind),
    Finished,
}

#[derive(Debug)]
struct Thread {
    gate: StdArc<Gate>,
    status: Status,
    clock: VClock,
    /// Spurious wakeups left for this thread in this execution.
    spurious_left: usize,
    /// Set by the scheduler when it wakes a blocked thread: how/why.
    pending_wake: Option<BlockKind>,
}

/// How a condvar wait returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wake {
    Notified,
    Timeout,
    Spurious,
}

#[derive(Debug, Default)]
struct LockState {
    owner: Option<usize>,
    /// Clock released by the last unlock; joined by the next acquire.
    sync: VClock,
}

#[derive(Debug)]
struct AtomicState {
    value: u64,
    /// Release clock carried by the current value (C++ "release
    /// sequence", approximated: release stores replace it, RMWs of any
    /// ordering extend it, relaxed stores clear it).
    sync: VClock,
}

/// Read/write access history of one tracked plain-memory object.
#[derive(Debug, Default)]
struct AccessState {
    writes: VClock,
    reads: VClock,
    last_loc: HashMap<usize, &'static Location<'static>>,
}

#[derive(Debug)]
struct ExecState {
    schedule: Schedule,
    threads: Vec<Thread>,
    running: usize,
    preemptions: usize,
    branches: usize,
    now_ns: u64,
    poisoned: bool,
    failure: Option<(FindingKind, String)>,
    locks: Vec<LockState>,
    condvars: usize,
    atomics: Vec<AtomicState>,
    cells: Vec<AccessState>,
    trace: Vec<String>,
}

/// One model execution: shared by every OS thread participating in it.
pub(crate) struct Execution {
    config: Config,
    state: StdMutex<ExecState>,
    /// Threads registered minus threads exited; the explorer waits for
    /// zero before starting the next iteration, so a failed iteration
    /// can never leak a thread into the next one.
    live: StdMutex<usize>,
    all_done: StdCondvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(StdArc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> (StdArc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("ccindex-check shim type used outside a Checker::check model run")
    })
}

/// Whether the calling OS thread is inside a model execution (shim
/// types use this to give a crisp panic rather than a `None` unwrap).
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl ExecState {
    fn record(&mut self, limit: usize, tid: usize, what: &str, loc: &'static Location<'static>) {
        if self.trace.len() >= limit.max(1) {
            self.trace.remove(0);
        }
        self.trace
            .push(format!("T{tid} {what} @ {}:{}", loc.file(), loc.line()));
    }

    fn enabled(&self, spurious_cfg: bool) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(i, t)| match &t.status {
                Status::Finished => false,
                Status::Ready => true,
                Status::Blocked(kind) => match kind {
                    BlockKind::Lock { lock } => self.locks[*lock].owner.is_none(),
                    BlockKind::Join { target } => {
                        matches!(self.threads[*target].status, Status::Finished)
                    }
                    BlockKind::CondWait {
                        notified, deadline, ..
                    } => {
                        *notified
                            || deadline.is_some()
                            || (spurious_cfg && self.threads[*i].spurious_left > 0)
                    }
                },
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn fail(&mut self, kind: FindingKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some((kind, message));
        }
        self.poison();
    }

    fn poison(&mut self) {
        self.poisoned = true;
        // Wake everything: parked threads free-run to completion (shim
        // ops stop branching once poisoned).
        for t in &self.threads {
            t.gate.unpark();
        }
    }
}

impl Execution {
    fn new(config: Config, schedule: Schedule) -> StdArc<Self> {
        StdArc::new(Self {
            config,
            state: StdMutex::new(ExecState {
                schedule,
                threads: Vec::new(),
                running: 0,
                preemptions: 0,
                branches: 0,
                now_ns: 0,
                poisoned: false,
                failure: None,
                locks: Vec::new(),
                condvars: 0,
                atomics: Vec::new(),
                cells: Vec::new(),
                trace: Vec::new(),
            }),
            live: StdMutex::new(0),
            all_done: StdCondvar::new(),
        })
    }

    fn st(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick who runs next from `enabled` (non-empty). `me` is the
    /// yielding thread when it could itself continue (preemption
    /// accounting applies only then).
    fn pick(&self, st: &mut ExecState, enabled: &[usize], me: Option<usize>) -> usize {
        if let (Some(m), Some(bound)) = (me, self.config.preemption_bound) {
            if st.preemptions >= bound && enabled.contains(&m) {
                return m;
            }
        }
        if enabled.len() == 1 {
            return enabled[0];
        }
        let idx = st.schedule.choose(enabled.len());
        enabled[idx]
    }

    /// Transfer control to `next`: mark it running (stashing its block
    /// reason for its wake handler) and return its gate for unparking
    /// once the state lock is released.
    fn hand_to(&self, st: &mut ExecState, next: usize) -> StdArc<Gate> {
        let prev = std::mem::replace(&mut st.threads[next].status, Status::Ready);
        if let Status::Blocked(kind) = prev {
            st.threads[next].pending_wake = Some(kind);
        }
        st.running = next;
        StdArc::clone(&st.threads[next].gate)
    }

    /// A plain schedule point: the running thread offers a context
    /// switch. No-op once poisoned or while unwinding (so guard drops
    /// during a failing execution never park or double-panic).
    fn switch(self: &StdArc<Self>, me: usize) {
        if std::thread::panicking() {
            return;
        }
        let gate = {
            let mut st = self.st();
            if st.poisoned {
                return;
            }
            st.branches += 1;
            if st.branches > self.config.max_branches {
                st.fail(
                    FindingKind::Incomplete,
                    format!(
                        "execution exceeded max_branches={} (model too large or unbounded loop)",
                        self.config.max_branches
                    ),
                );
                return;
            }
            let enabled = st.enabled(self.config.spurious_wakeups);
            debug_assert!(enabled.contains(&me), "running thread must be enabled");
            let next = self.pick(&mut st, &enabled, Some(me));
            if next == me {
                return;
            }
            st.preemptions += 1;
            self.hand_to(&mut st, next)
        };
        gate.unpark();
        self.park(me);
    }

    /// Block the running thread with `kind`, hand control elsewhere,
    /// and park until rescheduled. Returns the stashed wake reason
    /// (`None` when woken by poison).
    fn block(self: &StdArc<Self>, me: usize, kind: BlockKind) -> Option<BlockKind> {
        {
            let mut st = self.st();
            if st.poisoned {
                return None;
            }
            st.threads[me].status = Status::Blocked(kind);
            let enabled = st.enabled(self.config.spurious_wakeups);
            if enabled.is_empty() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match &t.status {
                        Status::Blocked(k) => Some(format!("T{i} blocked on {k:?}")),
                        _ => None,
                    })
                    .collect();
                st.fail(
                    FindingKind::Deadlock,
                    format!("deadlock: no thread can run ({})", blocked.join("; ")),
                );
                // Fall through: poison unparked everyone including us.
            } else {
                let next = self.pick(&mut st, &enabled, None);
                let gate = self.hand_to(&mut st, next);
                drop(st);
                gate.unpark();
            }
        }
        self.park(me);
        let mut st = self.st();
        if st.poisoned {
            // Ensure we count as runnable again for bookkeeping.
            st.threads[me].status = Status::Ready;
            return None;
        }
        debug_assert_eq!(st.running, me);
        st.threads[me].pending_wake.take()
    }

    /// Park until scheduled (or the execution is poisoned). The wait is
    /// predicate-based — a stale unpark token (e.g. from a wakeup that
    /// arrived before the thread ever parked) can wake the OS thread
    /// early, but it just re-checks and parks again.
    fn park(&self, me: usize) {
        loop {
            let gate = {
                let st = self.st();
                if st.poisoned || st.running == me {
                    return;
                }
                StdArc::clone(&st.threads[me].gate)
            };
            gate.park();
        }
    }

    fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.st();
        let tid = st.threads.len();
        let mut clock = match parent {
            Some(p) => {
                st.threads[p].clock.tick(p);
                st.threads[p].clock.clone()
            }
            None => VClock::new(),
        };
        clock.tick(tid);
        let spurious_left = if self.config.spurious_wakeups {
            self.config.max_spurious_per_thread
        } else {
            0
        };
        st.threads.push(Thread {
            gate: StdArc::new(Gate::default()),
            status: Status::Ready,
            clock,
            spurious_left,
            pending_wake: None,
        });
        drop(st);
        *self.live.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        tid
    }

    fn thread_exited(&self) {
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        *live -= 1;
        if *live == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all_exited(&self) {
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        while *live > 0 {
            live = self.all_done.wait(live).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// ---------------------------------------------------------------------
// Shim entry points (called by crate::sync / crate::thread / crate::cell)
// ---------------------------------------------------------------------

pub(crate) fn new_lock() -> usize {
    let (exec, _) = current();
    let mut st = exec.st();
    st.locks.push(LockState::default());
    st.locks.len() - 1
}

pub(crate) fn new_condvar() -> usize {
    let (exec, _) = current();
    let mut st = exec.st();
    st.condvars += 1;
    st.condvars - 1
}

pub(crate) fn new_atomic(value: u64) -> usize {
    let (exec, _) = current();
    let mut st = exec.st();
    st.atomics.push(AtomicState {
        value,
        sync: VClock::new(),
    });
    st.atomics.len() - 1
}

pub(crate) fn new_cell() -> usize {
    let (exec, _) = current();
    let mut st = exec.st();
    st.cells.push(AccessState::default());
    st.cells.len() - 1
}

/// Cooperatively acquire shim mutex `lock` (blocking as needed); the
/// caller then takes the real `std` lock, which is uncontended except
/// while a failed execution free-runs.
pub(crate) fn lock_acquire(lock: usize, loc: &'static Location<'static>) {
    let (exec, me) = current();
    exec.switch(me);
    loop {
        {
            let mut st = exec.st();
            if st.poisoned {
                return;
            }
            if st.locks[lock].owner.is_none() {
                st.locks[lock].owner = Some(me);
                let sync = st.locks[lock].sync.clone();
                let limit = exec.config.trace_limit;
                let t = &mut st.threads[me];
                t.clock.join(&sync);
                t.clock.tick(me);
                st.record(limit, me, "lock", loc);
                return;
            }
        }
        exec.block(me, BlockKind::Lock { lock });
    }
}

/// Release shim mutex `lock` (no schedule point; pair with
/// [`unlock_point`] after the real guard drops).
pub(crate) fn lock_release(lock: usize, loc: &'static Location<'static>) {
    let (exec, me) = current();
    let mut st = exec.st();
    if st.locks[lock].owner != Some(me) {
        // Free-running after a failure: ownership bookkeeping lapsed.
        return;
    }
    st.locks[lock].owner = None;
    st.threads[me].clock.tick(me);
    let clock = st.threads[me].clock.clone();
    st.locks[lock].sync.join(&clock);
    let limit = exec.config.trace_limit;
    st.record(limit, me, "unlock", loc);
}

/// The schedule point after an unlock.
pub(crate) fn unlock_point() {
    let (exec, me) = current();
    exec.switch(me);
}

/// Condvar wait: atomically release `lock` and block on `cv`;
/// `release_std` drops the real mutex guard at the correct moment.
/// Re-acquiring the mutex is the caller's job.
pub(crate) fn cond_wait(
    cv: usize,
    lock: usize,
    timeout: Option<Duration>,
    release_std: impl FnOnce(),
    loc: &'static Location<'static>,
) -> Wake {
    let (exec, me) = current();
    let deadline;
    {
        let mut st = exec.st();
        if st.poisoned {
            drop(st);
            release_std();
            return poisoned_wake(&exec, timeout);
        }
        // Release the mutex and register as a waiter in one step: a
        // notify between the two can therefore never be lost.
        if st.locks[lock].owner == Some(me) {
            st.locks[lock].owner = None;
            st.threads[me].clock.tick(me);
            let clock = st.threads[me].clock.clone();
            st.locks[lock].sync.join(&clock);
        }
        deadline = timeout.map(|d| st.now_ns.saturating_add(d.as_nanos() as u64));
        let limit = exec.config.trace_limit;
        st.record(limit, me, "cond wait", loc);
    }
    release_std();
    let woken = exec.block(
        me,
        BlockKind::CondWait {
            cv,
            deadline,
            notified: false,
        },
    );
    let Some(BlockKind::CondWait { notified, .. }) = woken else {
        // Poisoned.
        return poisoned_wake(&exec, timeout);
    };
    // Decide how this wake presents: the scheduler picked us, so at
    // least one of the wake reasons is viable; when several are, that
    // is itself a branch. A spurious presentation returns to the caller
    // like any other — that is what spurious *means*; re-waiting is the
    // caller's predicate loop's job.
    let mut st = exec.st();
    if st.poisoned {
        drop(st);
        return poisoned_wake(&exec, timeout);
    }
    let mut viable: Vec<Wake> = Vec::new();
    if notified {
        viable.push(Wake::Notified);
    }
    if deadline.is_some() {
        viable.push(Wake::Timeout);
    }
    if exec.config.spurious_wakeups && st.threads[me].spurious_left > 0 {
        viable.push(Wake::Spurious);
    }
    debug_assert!(
        !viable.is_empty(),
        "scheduled waiter must have a wake reason"
    );
    let wake = if viable.len() == 1 {
        viable[0]
    } else {
        let idx = st.schedule.choose(viable.len());
        viable[idx]
    };
    match wake {
        Wake::Timeout => {
            st.now_ns = st
                .now_ns
                .max(deadline.expect("timed wake without deadline"));
        }
        Wake::Spurious => {
            st.threads[me].spurious_left -= 1;
        }
        Wake::Notified => {}
    }
    st.threads[me].clock.tick(me);
    wake
}

fn poisoned_wake(exec: &StdArc<Execution>, timeout: Option<Duration>) -> Wake {
    match timeout {
        Some(_) => {
            // Let timed waits run out so free-running deadline loops
            // terminate: virtual time jumps far past any deadline.
            let mut st = exec.st();
            st.now_ns = st.now_ns.saturating_add(u64::MAX / 2);
            Wake::Timeout
        }
        // An untimed wait has nothing left to wait for on a failed
        // execution: unwind this thread (caught by the explorer; never
        // reported over the primary finding).
        None => panic!("{POISON_MSG}"),
    }
}

/// Notify one (`all = false`) or every (`all = true`) waiter of `cv`.
pub(crate) fn notify(cv: usize, all: bool, loc: &'static Location<'static>) {
    let (exec, me) = current();
    exec.switch(me);
    let mut st = exec.st();
    if st.poisoned {
        return;
    }
    let waiters: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            matches!(
                t.status,
                Status::Blocked(BlockKind::CondWait {
                    cv: c,
                    notified: false,
                    ..
                }) if c == cv
            )
        })
        .map(|(i, _)| i)
        .collect();
    let targets: Vec<usize> = if all {
        waiters
    } else if waiters.is_empty() {
        Vec::new()
    } else if waiters.len() == 1 {
        vec![waiters[0]]
    } else {
        // Which waiter a notify_one reaches is nondeterministic.
        let idx = st.schedule.choose(waiters.len());
        vec![waiters[idx]]
    };
    for t in targets {
        if let Status::Blocked(BlockKind::CondWait { notified, .. }) = &mut st.threads[t].status {
            *notified = true;
        }
    }
    st.threads[me].clock.tick(me);
    let limit = exec.config.trace_limit;
    st.record(
        limit,
        me,
        if all { "notify_all" } else { "notify_one" },
        loc,
    );
}

/// Which side(s) of a synchronises-with edge an atomic op's `Ordering`
/// provides under the model.
fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}
fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// An atomic load.
pub(crate) fn atomic_load(id: usize, ordering: Ordering, loc: &'static Location<'static>) -> u64 {
    let (exec, me) = current();
    exec.switch(me);
    let mut st = exec.st();
    let value = st.atomics[id].value;
    if acquires(ordering) {
        let sync = st.atomics[id].sync.clone();
        st.threads[me].clock.join(&sync);
    }
    st.threads[me].clock.tick(me);
    let limit = exec.config.trace_limit;
    st.record(limit, me, "atomic load", loc);
    value
}

/// An atomic store.
pub(crate) fn atomic_store(
    id: usize,
    value: u64,
    ordering: Ordering,
    loc: &'static Location<'static>,
) {
    let (exec, me) = current();
    exec.switch(me);
    let mut st = exec.st();
    st.threads[me].clock.tick(me);
    if releases(ordering) {
        let clock = st.threads[me].clock.clone();
        st.atomics[id].sync = clock;
    } else {
        // A relaxed store heads a new (empty) release sequence: it
        // publishes no ordering, and it severs the one the previous
        // value carried.
        st.atomics[id].sync.clear();
    }
    st.atomics[id].value = value;
    let limit = exec.config.trace_limit;
    st.record(limit, me, "atomic store", loc);
}

/// An atomic read-modify-write; returns the previous value.
pub(crate) fn atomic_rmw(
    id: usize,
    ordering: Ordering,
    f: impl FnOnce(u64) -> u64,
    loc: &'static Location<'static>,
) -> u64 {
    let (exec, me) = current();
    exec.switch(me);
    let mut st = exec.st();
    let prev = st.atomics[id].value;
    st.atomics[id].value = f(prev);
    if acquires(ordering) {
        let sync = st.atomics[id].sync.clone();
        st.threads[me].clock.join(&sync);
    }
    st.threads[me].clock.tick(me);
    if releases(ordering) {
        let clock = st.threads[me].clock.clone();
        st.atomics[id].sync.join(&clock);
    }
    // A relaxed RMW neither acquires nor releases, but it *continues*
    // the release sequence of the value it replaces, so the variable's
    // sync clock is deliberately left in place.
    let limit = exec.config.trace_limit;
    st.record(limit, me, "atomic rmw", loc);
    prev
}

/// An atomic compare-exchange; `Ok(prev)` when the swap happened.
pub(crate) fn atomic_cas(
    id: usize,
    expect: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
    loc: &'static Location<'static>,
) -> Result<u64, u64> {
    let (exec, me) = current();
    exec.switch(me);
    let mut st = exec.st();
    let prev = st.atomics[id].value;
    let (hit, ordering) = if prev == expect {
        st.atomics[id].value = new;
        (true, success)
    } else {
        (false, failure)
    };
    if acquires(ordering) {
        let sync = st.atomics[id].sync.clone();
        st.threads[me].clock.join(&sync);
    }
    st.threads[me].clock.tick(me);
    if hit && releases(ordering) {
        let clock = st.threads[me].clock.clone();
        st.atomics[id].sync.join(&clock);
    }
    let limit = exec.config.trace_limit;
    st.record(limit, me, "atomic cas", loc);
    if hit {
        Ok(prev)
    } else {
        Err(prev)
    }
}

/// A tracked plain read (`write = false`) or write (`write = true`) of
/// cell `id`: the happens-before race check.
pub(crate) fn cell_access(
    id: usize,
    write: bool,
    yield_point: bool,
    loc: &'static Location<'static>,
) {
    let (exec, me) = current();
    if yield_point {
        exec.switch(me);
    }
    let mut st = exec.st();
    if st.poisoned {
        return;
    }
    let observer = st.threads[me].clock.clone();
    let conflict = {
        let cell = &st.cells[id];
        cell.writes.first_concurrent(&observer, me).or_else(|| {
            if write {
                cell.reads.first_concurrent(&observer, me)
            } else {
                None
            }
        })
    };
    if let Some(other) = conflict {
        let other_loc = st.cells[id]
            .last_loc
            .get(&other)
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "<unknown>".to_owned());
        let msg = format!(
            "data race: T{me} {} at {}:{} is concurrent with T{other}'s access at {} \
             (no happens-before edge — is an ordering weaker than the protocol needs?)",
            if write { "write" } else { "read" },
            loc.file(),
            loc.line(),
            other_loc,
        );
        st.fail(FindingKind::DataRace, msg);
        return;
    }
    st.threads[me].clock.tick(me);
    let time = st.threads[me].clock.get(me);
    let cell = &mut st.cells[id];
    if write {
        cell.writes.set(me, time);
    } else {
        cell.reads.set(me, time);
    }
    cell.last_loc.insert(me, loc);
    let limit = exec.config.trace_limit;
    st.record(
        limit,
        me,
        if write { "plain write" } else { "plain read" },
        loc,
    );
}

/// The current virtual time (monotonic within one execution).
pub(crate) fn now_ns() -> u64 {
    let (exec, _) = current();
    let st = exec.st();
    st.now_ns
}

/// Register a child thread about to be spawned; returns its model tid.
pub(crate) fn register_child() -> usize {
    let (exec, me) = current();
    exec.register_thread(Some(me))
}

/// The schedule point after a spawn. MUST be called after the real OS
/// thread exists: yielding to the child before `std::thread::spawn`
/// ran would park the spawner with nobody to create the child.
pub(crate) fn spawn_point() {
    let (exec, me) = current();
    exec.switch(me);
}

/// Handle to the current execution, for moving into a spawned closure.
pub(crate) fn current_execution() -> StdArc<Execution> {
    current().0
}

/// Body wrapper for every model child thread: parks until first
/// scheduled, runs `f`, records panics, reschedules, and propagates.
pub(crate) fn run_child<T>(exec: StdArc<Execution>, tid: usize, f: impl FnOnce() -> T) -> T {
    struct LiveGuard(StdArc<Execution>);
    impl Drop for LiveGuard {
        fn drop(&mut self) {
            self.0.thread_exited();
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), tid)));
    let _live = LiveGuard(StdArc::clone(&exec));
    // Wait to be scheduled for the first time (park is predicate-based,
    // so an unpark that raced ahead of us is not lost).
    exec.park(tid);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    finish_thread(&exec, tid, result.as_ref().err().map(|e| panic_message(e)));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn finish_thread(exec: &StdArc<Execution>, tid: usize, panicked: Option<String>) {
    let gate = {
        let mut st = exec.st();
        st.threads[tid].status = Status::Finished;
        st.threads[tid].clock.tick(tid);
        if let Some(msg) = panicked {
            if msg != POISON_MSG {
                st.fail(
                    FindingKind::Panic,
                    format!("model thread T{tid} panicked: {msg}"),
                );
            } else {
                st.poison();
            }
        }
        if st.poisoned {
            None
        } else {
            let enabled = st.enabled(exec.config.spurious_wakeups);
            if enabled.is_empty() {
                let any_blocked = st
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, Status::Blocked(_)));
                if any_blocked {
                    st.fail(
                        FindingKind::Deadlock,
                        format!("deadlock: T{tid} finished and no remaining thread can run"),
                    );
                }
                None
            } else {
                let next = exec.pick(&mut st, &enabled, None);
                Some(exec.hand_to(&mut st, next))
            }
        }
    };
    if let Some(gate) = gate {
        gate.unpark();
    }
}

/// Cooperatively join thread `target` (then the caller does the real
/// `std` join, which returns promptly).
pub(crate) fn join(target: usize) {
    let (exec, me) = current();
    loop {
        {
            let mut st = exec.st();
            if st.poisoned {
                return;
            }
            if matches!(st.threads[target].status, Status::Finished) {
                let child = st.threads[target].clock.clone();
                let t = &mut st.threads[me];
                t.clock.join(&child);
                t.clock.tick(me);
                return;
            }
        }
        exec.block(me, BlockKind::Join { target });
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Exhaustively explore `f` under `config`; `Ok` carries exploration
/// stats, `Err` the first finding.
pub(crate) fn explore<F>(config: Config, f: F) -> Result<Stats, Finding>
where
    F: Fn() + Send + Sync,
{
    let mut schedule = Schedule::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let exec = Execution::new(config.clone(), schedule);
        let main_tid = exec.register_thread(None);
        debug_assert_eq!(main_tid, 0);
        CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), main_tid)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        // Main is done; drive any threads it failed to join (normally
        // none — scope/join do this — but a panicking model unwinds
        // past its joins).
        {
            let mut st = exec.st();
            st.threads[main_tid].status = Status::Finished;
            if outcome.is_err() || st.failure.is_some() {
                st.poison();
            } else {
                let unfinished: Vec<usize> = (0..st.threads.len())
                    .filter(|&t| !matches!(st.threads[t].status, Status::Finished))
                    .collect();
                drop(st);
                if !unfinished.is_empty() {
                    // Threads spawned but never joined: join them now so
                    // the execution drains deterministically.
                    let mut stp = exec.st();
                    stp.threads[main_tid].status = Status::Ready;
                    drop(stp);
                    for t in unfinished {
                        join(t);
                    }
                    exec.st().threads[main_tid].status = Status::Finished;
                }
            }
        }
        exec.thread_exited();
        exec.wait_all_exited();
        CURRENT.with(|c| *c.borrow_mut() = None);

        let mut st = exec.st();
        if let Some((kind, message)) = st.failure.take() {
            return Err(Finding {
                kind,
                message,
                schedule: st.schedule.picks(),
                trace: std::mem::take(&mut st.trace),
            });
        }
        if let Err(payload) = outcome {
            // A panic with no recorded failure: surface it as a model
            // panic (e.g. an assertion outside any shim op).
            return Err(Finding {
                kind: FindingKind::Panic,
                message: format!("model panicked: {}", panic_message(&*payload)),
                schedule: st.schedule.picks(),
                trace: std::mem::take(&mut st.trace),
            });
        }
        schedule = std::mem::take(&mut st.schedule);
        drop(st);
        if !schedule.backtrack() {
            return Ok(Stats {
                iterations,
                complete: true,
            });
        }
        if iterations >= config.max_iterations {
            return Err(Finding {
                kind: FindingKind::Incomplete,
                message: format!(
                    "schedule space not exhausted after {iterations} executions \
                     (raise max_iterations or shrink the model)"
                ),
                schedule: Vec::new(),
                trace: Vec::new(),
            });
        }
    }
}
