//! Shim synchronisation types: drop-in stand-ins for the `std::sync`
//! types the serving stack uses, instrumented so every operation is a
//! schedule point of the cooperative scheduler (`src/rt.rs`) and a
//! move on the vector clocks ([`crate::clock`]).
//!
//! Production code never names these directly — it imports from
//! `ccindex_parallel::sync`, a facade that re-exports `std::sync` in
//! normal builds and this module under `--cfg ccindex_check`. The shim
//! surface therefore mirrors the std signatures exactly (including
//! returning `LockResult`, always `Ok`, so `.expect(...)` call sites
//! compile unchanged).
//!
//! Semantics worth knowing when writing models:
//!
//! * [`Mutex`]/[`Condvar`] behave like std's, plus `Condvar` waits can
//!   wake spuriously when the scheduler injects one (a real-OS behavior
//!   std permits and this checker makes reliably explorable).
//! * Atomics store their value in the model state; `Acquire`/`Release`
//!   move clocks, `Relaxed` moves none, `SeqCst` is modeled as `AcqRel`
//!   (exploration is over sequentially-consistent interleavings, so the
//!   extra total-order guarantee of `SeqCst` is implicit).
//! * [`Arc`] mirrors std's refcount protocol — `Relaxed` clone,
//!   release-decrement/acquire-reclaim drop — and its final-drop
//!   reclaim is a *tracked write* against every `deref`-read, so a
//!   protocol that lets a reader hold `&T` across the last drop is
//!   reported as a data race.

use crate::rt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};
use std::time::Duration;

pub use std::sync::atomic;

fn lazy_id(slot: &OnceLock<usize>, make: fn() -> usize) -> usize {
    *slot.get_or_init(make)
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! shim_atomic {
    ($name:ident, $ty:ty) => {
        /// Shim atomic: value and ordering effects live in the model
        /// state; see the module docs for the memory-model mapping.
        #[derive(Debug, Default)]
        pub struct $name {
            id: OnceLock<usize>,
            init: $ty,
        }

        impl $name {
            /// Mirror of the std constructor.
            pub const fn new(v: $ty) -> Self {
                Self {
                    id: OnceLock::new(),
                    init: v,
                }
            }

            fn id(&self) -> usize {
                *self.id.get_or_init(|| rt::new_atomic(self.init as u64))
            }

            /// Mirror of the std `load`.
            #[track_caller]
            pub fn load(&self, ordering: Ordering) -> $ty {
                rt::atomic_load(self.id(), ordering, Location::caller()) as $ty
            }

            /// Mirror of the std `store`.
            #[track_caller]
            pub fn store(&self, value: $ty, ordering: Ordering) {
                rt::atomic_store(self.id(), value as u64, ordering, Location::caller())
            }

            /// Mirror of the std `fetch_add` (wrapping).
            #[track_caller]
            pub fn fetch_add(&self, value: $ty, ordering: Ordering) -> $ty {
                rt::atomic_rmw(
                    self.id(),
                    ordering,
                    |prev| (prev as $ty).wrapping_add(value) as u64,
                    Location::caller(),
                ) as $ty
            }

            /// Mirror of the std `fetch_sub` (wrapping).
            #[track_caller]
            pub fn fetch_sub(&self, value: $ty, ordering: Ordering) -> $ty {
                rt::atomic_rmw(
                    self.id(),
                    ordering,
                    |prev| (prev as $ty).wrapping_sub(value) as u64,
                    Location::caller(),
                ) as $ty
            }

            /// Mirror of the std `swap`.
            #[track_caller]
            pub fn swap(&self, value: $ty, ordering: Ordering) -> $ty {
                rt::atomic_rmw(self.id(), ordering, |_| value as u64, Location::caller()) as $ty
            }

            /// Mirror of the std `compare_exchange`.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                rt::atomic_cas(
                    self.id(),
                    current as u64,
                    new as u64,
                    success,
                    failure,
                    Location::caller(),
                )
                .map(|v| v as $ty)
                .map_err(|v| v as $ty)
            }

            /// Mirror of the std `compare_exchange_weak` (the model has
            /// no spurious CAS failures, so it is the strong form).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

shim_atomic!(AtomicU64, u64);
shim_atomic!(AtomicUsize, usize);

/// Shim `AtomicBool` (stored as 0/1 in the model state).
#[derive(Debug, Default)]
pub struct AtomicBool {
    id: OnceLock<usize>,
    init: bool,
}

impl AtomicBool {
    /// Mirror of the std constructor.
    pub const fn new(v: bool) -> Self {
        Self {
            id: OnceLock::new(),
            init: v,
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| rt::new_atomic(self.init as u64))
    }

    /// Mirror of the std `load`.
    #[track_caller]
    pub fn load(&self, ordering: Ordering) -> bool {
        rt::atomic_load(self.id(), ordering, Location::caller()) != 0
    }

    /// Mirror of the std `store`.
    #[track_caller]
    pub fn store(&self, value: bool, ordering: Ordering) {
        rt::atomic_store(self.id(), value as u64, ordering, Location::caller())
    }

    /// Mirror of the std `swap`.
    #[track_caller]
    pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
        rt::atomic_rmw(self.id(), ordering, |_| value as u64, Location::caller()) != 0
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Shim `Mutex`: acquisition order is a schedule choice; lock/unlock
/// are the synchronises-with edges std's mutex provides. Data lives in
/// a real `std::sync::Mutex` so `&mut` access is genuinely exclusive
/// even while a failed execution free-runs.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: OnceLock<usize>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Mirror of the std constructor.
    pub const fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            data: StdMutex::new(value),
        }
    }

    pub(crate) fn id(&self) -> usize {
        lazy_id(&self.id, rt::new_lock)
    }

    /// Mirror of the std `lock`; never returns `Err` (the shim treats
    /// a poisoned inner lock as recovered, because execution-failure
    /// unwinding is the checker's business, not the model's).
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::lock_acquire(self.id(), Location::caller());
        let std = self.data.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            mutex: self,
            std: Some(std),
            defused: std::cell::Cell::new(false),
        })
    }

    /// Mirror of the std `into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mirror of the std `get_mut`.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Guard for a [`Mutex`]: releases the shim lock (a release edge plus a
/// schedule point) when dropped.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    /// Set while [`Condvar::wait`] hands the release to the runtime
    /// itself (wait must release-and-block atomically).
    defused: std::cell::Cell<bool>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std
            .as_ref()
            .expect("guard accessed after condvar handoff")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std
            .as_mut()
            .expect("guard accessed after condvar handoff")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if self.defused.get() {
            // Condvar wait already released the shim lock and dropped
            // the std guard; nothing left to do.
            return;
        }
        rt::lock_release(self.mutex.id(), Location::caller());
        self.std = None;
        rt::unlock_point();
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a shim timed wait; mirrors `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the (virtual) timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Shim `Condvar`: which waiter `notify_one` reaches, and whether a
/// wait additionally wakes spuriously, are schedule choices.
#[derive(Debug, Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    /// Unused at runtime; keeps the std type alive for Debug parity.
    _std: StdCondvar,
}

impl Condvar {
    /// Mirror of the std constructor.
    pub const fn new() -> Self {
        Self {
            id: OnceLock::new(),
            _std: StdCondvar::new(),
        }
    }

    fn id(&self) -> usize {
        lazy_id(&self.id, rt::new_condvar)
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
        loc: &'static Location<'static>,
    ) -> (MutexGuard<'a, T>, bool) {
        let mutex = guard.mutex;
        // Hand the release to the runtime: it must drop the shim
        // ownership and register us as a waiter in one atomic step (a
        // guard Drop here would instead release, yield, and only then
        // wait — losing notifies in the gap).
        guard.defused.set(true);
        let guard_cell = std::cell::Cell::new(Some(guard));
        let wake = rt::cond_wait(
            self.id(),
            mutex.id(),
            timeout,
            || drop(guard_cell.take()),
            loc,
        );
        let reacquired = mutex.lock().unwrap_or_else(|_| unreachable!());
        (reacquired, wake == rt::Wake::Timeout)
    }

    /// Mirror of the std `wait` (may wake spuriously, by design).
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (guard, _) = self.wait_inner(guard, None, Location::caller());
        Ok(guard)
    }

    /// Mirror of the std `wait_timeout`; the timeout elapses in virtual
    /// time (the model clock jumps to the deadline when the scheduler
    /// explores the timeout branch).
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (guard, timed_out) = self.wait_inner(guard, Some(dur), Location::caller());
        Ok((guard, WaitTimeoutResult(timed_out)))
    }

    /// Mirror of the std `notify_one`.
    #[track_caller]
    pub fn notify_one(&self) {
        rt::notify(self.id(), false, Location::caller());
    }

    /// Mirror of the std `notify_all`.
    #[track_caller]
    pub fn notify_all(&self) {
        rt::notify(self.id(), true, Location::caller());
    }
}

// ---------------------------------------------------------------------
// Arc
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ArcInner<T: ?Sized> {
    ids: OnceLock<(usize, usize)>,
    value: T,
}

impl<T: ?Sized> ArcInner<T> {
    /// `(refcount atomic id, reclaim-tracking cell id)`.
    fn ids(&self) -> (usize, usize) {
        *self.ids.get_or_init(|| (rt::new_atomic(1), rt::new_cell()))
    }
}

/// Shim `Arc`, modeling the std refcount protocol explicitly: clone is
/// a `Relaxed` increment, drop is a `Release` decrement whose last
/// holder does an `Acquire` fence and reclaims. Reclaim is a tracked
/// write and every `deref` a tracked read, so use-after-last-drop
/// shapes surface as data races. The payload's real lifetime is
/// managed by an inner `std::sync::Arc`, mirrored 1:1 by the model
/// count.
#[derive(Debug)]
pub struct Arc<T: ?Sized> {
    inner: std::sync::Arc<ArcInner<T>>,
}

impl<T> Arc<T> {
    /// Mirror of the std constructor.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Arc::new(ArcInner {
                ids: OnceLock::new(),
                value,
            }),
        }
    }
}

impl<T: ?Sized> Deref for Arc<T> {
    #[track_caller]
    fn deref(&self) -> &T {
        // A non-yielding tracked read: dereferencing is not a schedule
        // point (std's isn't), but it must be ordered after the value's
        // construction and before its reclaim.
        if rt::in_model() {
            let (_, cell) = self.inner.ids();
            rt::cell_access(cell, false, false, Location::caller());
        }
        &self.inner.value
    }

    type Target = T;
}

impl<T: ?Sized> Clone for Arc<T> {
    #[track_caller]
    fn clone(&self) -> Self {
        let (count, _) = self.inner.ids();
        // ORDERING: Relaxed, mirroring std::sync::Arc::clone — the
        // clone already holds a reference, so no ordering is needed to
        // keep the value alive.
        rt::atomic_rmw(count, Ordering::Relaxed, |c| c + 1, Location::caller());
        Self {
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    #[track_caller]
    fn drop(&mut self) {
        if !rt::in_model() || std::thread::panicking() {
            // Outside an execution (or unwinding one): let the real Arc
            // do the real work without shim bookkeeping.
            return;
        }
        let (count, cell) = self.inner.ids();
        // ORDERING: Release on the decrement, mirroring std — every
        // use of the value happens-before the decrement that might
        // free it...
        let prev = rt::atomic_rmw(count, Ordering::Release, |c| c - 1, Location::caller());
        if prev == 1 {
            // ...and Acquire on the reclaiming side, so the last holder
            // observes all of them before dropping the payload.
            rt::atomic_load(count, Ordering::Acquire, Location::caller());
            rt::cell_access(cell, true, false, Location::caller());
        }
    }
}

// SAFETY: the shim Arc adds only a OnceLock of plain ids around the
// payload; sharing it across model threads is exactly as safe as
// sharing std::sync::Arc<T>, which requires T: Send + Sync.
unsafe impl<T: ?Sized + Send + Sync> Send for Arc<T> {}
// SAFETY: as above — &Arc<T> exposes only &T plus internally-
// synchronised bookkeeping.
unsafe impl<T: ?Sized + Send + Sync> Sync for Arc<T> {}
