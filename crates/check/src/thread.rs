//! Shim threads: model threads are real OS threads whose turns are
//! arbitrated by the cooperative scheduler. Spawn/join mirror the
//! `std::thread` signatures the workspace uses (`spawn` and scoped
//! `scope`/`Scope::spawn`), and both establish the same happens-before
//! edges std guarantees: spawn publishes the parent's clock to the
//! child, join acquires the child's final clock.

use crate::rt;
use std::thread as std_thread;

/// Mirror of `std::thread::spawn` for `'static` closures.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let exec = rt::current_execution();
    let tid = rt::register_child();
    let inner = std_thread::spawn(move || rt::run_child(exec, tid, f));
    // Creation is a schedule point (the child may run before the
    // spawner's next step) — taken only now that the OS thread exists.
    rt::spawn_point();
    JoinHandle { tid, inner }
}

/// Mirror of `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    inner: std_thread::JoinHandle<T>,
}

impl<T> JoinHandle<T> {
    /// Mirror of the std `join`: blocks (cooperatively) until the child
    /// finishes, then joins its clock.
    pub fn join(self) -> std_thread::Result<T> {
        rt::join(self.tid);
        self.inner.join()
    }
}

/// Mirror of `std::thread::scope`. The model joins every spawned child
/// before the scope returns (as std does), so borrowed data outlives
/// all children on every explored schedule.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std_thread::scope(|std_scope| {
        let scope = Scope {
            std: std_scope,
            tids: std::sync::Mutex::new(Vec::new()),
        };
        let result = f(&scope);
        // Cooperatively join every child BEFORE std::thread::scope's
        // implicit join: the real join would otherwise wait on an OS
        // thread that is parked waiting to be scheduled.
        let tids = std::mem::take(&mut *scope.tids.lock().unwrap_or_else(|e| e.into_inner()));
        for tid in tids {
            rt::join(tid);
        }
        result
    })
}

/// Mirror of `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std_thread::Scope<'scope, 'env>,
    /// Children spawned through this scope, for the pre-exit join.
    tids: std::sync::Mutex<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Mirror of the std scoped `spawn` (taking `&self` with any
    /// borrow lifetime — the `'scope` capture bound is what matters).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let exec = rt::current_execution();
        let tid = rt::register_child();
        self.tids
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tid);
        let inner = self.std.spawn(move || rt::run_child(exec, tid, f));
        // As in `spawn`: yield only once the OS thread exists.
        rt::spawn_point();
        ScopedJoinHandle { tid, inner }
    }
}

/// Mirror of `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    tid: usize,
    inner: std_thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Mirror of the std `join` (idempotent at the model level: the
    /// scope's own pre-exit join tolerates already-joined children).
    pub fn join(self) -> std_thread::Result<T> {
        rt::join(self.tid);
        self.inner.join()
    }
}

/// Check-mode stand-in for `std::thread::available_parallelism`:
/// returns a fixed 2 so models are deterministic and small.
pub fn available_parallelism() -> usize {
    2
}
