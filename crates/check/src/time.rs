//! Virtual time. Real clocks would make executions nondeterministic
//! (and timed waits would actually sleep), so under the checker time is
//! a `u64` nanosecond counter in the model state that only advances
//! when the scheduler explores a timeout branch — a `wait_timeout`
//! whose timeout fires jumps the clock to its deadline. Reading the
//! clock is not a schedule point.

use crate::rt;
use std::time::Duration;

/// Virtual-time mirror of `std::time::Instant`, supporting exactly the
/// operations the serving stack uses (`now`, `+ Duration`, ordering,
/// difference, `elapsed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(u64);

impl Instant {
    /// The current virtual time of the running execution.
    pub fn now() -> Self {
        Instant(rt::now_ns())
    }

    /// Virtual time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        Instant::now() - *self
    }

    /// Mirror of the std `checked_duration_since`.
    pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }

    /// Mirror of the std `saturating_duration_since`.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl std::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_sub(rhs.as_nanos() as u64))
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}
