//! End-to-end tests for the `lint` binary: exit code 0 on a clean tree
//! (including this workspace itself), non-zero when a seeded violation
//! is planted — the contract the CI `check-lint` job relies on.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// A throwaway `crates/<name>/src/` tree under the system temp dir.
fn scratch_workspace(name: &str, lib_rs: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("ccindex-lint-bin-test")
        .join(format!("{}-{}", name, std::process::id()));
    let src = root.join("crates").join(name).join("src");
    fs::create_dir_all(&src).expect("create scratch workspace");
    fs::write(src.join("lib.rs"), lib_rs).expect("write seeded lib.rs");
    root
}

fn run_lint(root: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg(root)
        .output()
        .expect("run lint binary")
}

#[test]
fn clean_seeded_workspace_exits_zero() {
    let root = scratch_workspace(
        "clean",
        "//! A clean crate.\n\n#![deny(unsafe_op_in_unsafe_fn)]\n\npub fn ok() {}\n",
    );
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "clean tree flagged:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_violations_exit_nonzero_and_name_each_rule() {
    let root = scratch_workspace(
        "seeded",
        concat!(
            "//! A crate with one of everything the lint rejects.\n\n",
            "#![deny(unsafe_op_in_unsafe_fn)]\n\n",
            "use std::sync::atomic::{AtomicU64, Ordering};\n\n",
            "static mut GLOBAL: u64 = 0;\n\n",
            "pub fn naked_unsafe() -> u64 {\n",
            "    unsafe { GLOBAL }\n",
            "}\n\n",
            "pub fn unexplained_ordering(a: &AtomicU64) -> u64 {\n",
            "    a.load(Ordering::Relaxed)\n",
            "}\n",
        ),
    );
    let out = run_lint(&root);
    assert!(!out.status.success(), "seeded violations not flagged");
    let report = String::from_utf8_lossy(&out.stdout);
    for rule in ["[S1]", "[O1]", "[F1]"] {
        assert!(report.contains(rule), "missing {rule} in:\n{report}");
    }
    fs::remove_dir_all(&root).ok();
}

#[test]
fn this_workspace_is_clean() {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let out = run_lint(&root);
    assert!(
        out.status.success(),
        "workspace lint regressed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
