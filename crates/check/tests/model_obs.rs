//! Model-check suite for the real [`ccindex_obs`] instruments — the
//! counters, gauges, and histograms every serving layer records into
//! concurrently. Compiled only under `RUSTFLAGS="--cfg ccindex_check"`,
//! where the registry's mutex and the instruments' atomics resolve to
//! the checker's shims: every interleaving of racing `record()` calls
//! is explored and every access is race-checked against the declared
//! orderings. The property under test is the one dashboards rely on:
//! concurrent recording never loses a sample.
#![cfg(ccindex_check)]

use ccindex_obs::Registry;
use check::Checker;

fn quick() -> Checker {
    Checker::new().max_iterations(50_000)
}

/// Two threads race `Histogram::record()` on a shared handle; after
/// both join, the snapshot holds **every** sample — the bucket tallies
/// and the running sum account for all four values on every schedule.
/// A lost update (e.g. a read-modify-write that wasn't atomic) would
/// surface as a short count on some interleaving.
#[test]
fn concurrent_histogram_records_lose_no_counts() {
    let stats = quick().check(|| {
        let registry = Registry::new();
        let hist = registry.histogram("model.hist.ns");
        let (h1, h2) = (hist.clone(), hist.clone());
        let t1 = check::thread::spawn(move || {
            h1.record(3);
            h1.record(1_000);
        });
        let t2 = check::thread::spawn(move || {
            h2.record(3);
            h2.record(70);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 4, "a racing record() dropped a sample");
        assert_eq!(snap.sum(), 3 + 1_000 + 3 + 70);
        assert!(
            snap.percentile(100.0) >= 1_000,
            "the max sample fell out of the distribution"
        );
    });
    assert!(stats.complete, "exploration was cut off");
    assert!(stats.iterations >= 2);
}

/// Racing `Counter::add()` calls merge like the atomic they are: the
/// final value is the sum of both threads' contributions regardless of
/// interleaving.
#[test]
fn concurrent_counter_adds_all_land() {
    let stats = quick().check(|| {
        let registry = Registry::new();
        let counter = registry.counter("model.hits");
        let (c1, c2) = (counter.clone(), counter.clone());
        let t1 = check::thread::spawn(move || {
            c1.inc();
            c1.add(2);
        });
        let t2 = check::thread::spawn(move || c2.add(4));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(counter.get(), 7, "a racing add() was lost");
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}

/// The gauge's high-water mark is a CAS loop (the shim atomics have no
/// `fetch_max`); under racing `set()` calls it must converge on the
/// true maximum on every schedule, while the last-writer-wins value is
/// one of the racing sets.
#[test]
fn gauge_high_water_survives_racing_sets() {
    let stats = quick().check(|| {
        let registry = Registry::new();
        let gauge = registry.gauge("model.depth");
        let (g1, g2) = (gauge.clone(), gauge.clone());
        let t1 = check::thread::spawn(move || g1.set(3));
        let t2 = check::thread::spawn(move || g2.set(5));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(gauge.high_water(), 5, "the CAS loop missed the max");
        let v = gauge.get();
        assert!(v == 3 || v == 5, "gauge holds a value nobody set: {v}");
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}
