//! Model-check suite for the real [`ccindex_parallel::WorkerPool`] —
//! the scatter-gather engine under the serving layer. Compiled only
//! under `RUSTFLAGS="--cfg ccindex_check"`, where the pool's scoped
//! threads and its job counter run on the checker's shims, so the
//! claim "every job executes exactly once and results come back in job
//! order" is checked across every bounded interleaving of the
//! `Relaxed` `fetch_add` job hand-out.
#![cfg(ccindex_check)]

use ccindex_parallel::WorkerPool;
use check::sync::atomic::Ordering;
use check::sync::AtomicUsize;
use check::Checker;
use std::sync::Arc as StdArc;

fn quick() -> Checker {
    Checker::new().max_iterations(50_000)
}

/// Every job index is handed out exactly once — the `Relaxed` counter's
/// RMW atomicity is the whole argument, and the checker interleaves the
/// two workers' claims every possible way — and `run` returns results
/// in job order regardless of which worker computed what.
#[test]
fn every_job_executes_exactly_once() {
    let stats = quick().check(|| {
        let executions = StdArc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        let ex2 = StdArc::clone(&executions);
        let results = pool.run(3, move |i| {
            // ORDERING: AcqRel — the count is asserted after the scope
            // join below, which already orders it; AcqRel keeps the
            // tracked RMW conservative.
            ex2.fetch_add(1, Ordering::AcqRel);
            i * 10
        });
        assert_eq!(results, vec![0, 10, 20]);
        assert_eq!(
            executions.load(Ordering::Acquire),
            3,
            "a job ran twice or not at all"
        );
    });
    assert!(stats.complete, "exploration was cut off");
    assert!(stats.iterations >= 2);
}

/// `flat_map_chunks` over two workers is observationally identical to
/// the sequential map, on every schedule — the partition covers each
/// item exactly once and concatenation restores slice order.
#[test]
fn map_chunks_matches_sequential() {
    let stats = quick().check(|| {
        let items = [1u64, 2, 3, 4];
        let pool = WorkerPool::new(2);
        let doubled = pool.flat_map_chunks(&items, |chunk| {
            chunk.iter().map(|x| x * 2).collect::<Vec<_>>()
        });
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}
