//! Model-check suite for the real
//! [`ccindex_parallel::BlockingQueue`] — the batch-formation window's
//! hand-off. Compiled only under `RUSTFLAGS="--cfg ccindex_check"`,
//! where the queue's mutex, condvar, and `Instant` resolve to the
//! checker's shims: condvar waits get spurious wakeups injected, timed
//! waits run on the virtual clock, and a consumer asleep with nobody
//! left to wake it is reported as a deadlock (which is exactly how a
//! close that forgot its `notify_all` fails — see
//! `tests/mutants.rs::close_without_notify_is_reported_as_deadlock`).
#![cfg(ccindex_check)]

use ccindex_parallel::sync::Instant;
use ccindex_parallel::BlockingQueue;
use check::Checker;
use std::sync::Arc as StdArc;
use std::time::Duration;

fn quick() -> Checker {
    Checker::new().max_iterations(50_000)
}

/// `close` wakes **every** blocked consumer, on every schedule: both
/// consumers may be asleep on the condvar when close fires, and each
/// must come back with `None`. A missed wakeup would surface as a
/// deadlock finding.
#[test]
fn close_wakes_every_blocked_consumer() {
    let stats = quick().check(|| {
        let queue: StdArc<BlockingQueue<u64>> = StdArc::new(BlockingQueue::new());
        let (q1, q2) = (StdArc::clone(&queue), StdArc::clone(&queue));
        let c1 = check::thread::spawn(move || q1.pop());
        let c2 = check::thread::spawn(move || q2.pop());
        queue.close();
        assert_eq!(c1.join().unwrap(), None);
        assert_eq!(c2.join().unwrap(), None);
    });
    assert!(stats.complete, "exploration was cut off");
    assert!(stats.iterations >= 2);
}

/// Items pushed before the close drain out FIFO after it; only then
/// does `pop` report the close. Nothing pipelined at shutdown is lost.
#[test]
fn close_drains_queued_items_in_order() {
    let stats = quick().check(|| {
        let queue: StdArc<BlockingQueue<u64>> = StdArc::new(BlockingQueue::new());
        let q2 = StdArc::clone(&queue);
        let producer = check::thread::spawn(move || {
            q2.push(1).unwrap();
            q2.push(2).unwrap();
            q2.close();
        });
        let mut got = Vec::new();
        while let Some(v) = queue.pop() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2]);
        assert!(queue.push(3).is_err(), "closed queue accepted a push");
    });
    assert!(stats.complete);
}

/// The window's time bound, under injected spurious wakeups: when a
/// producer is racing the deadline, `pop_deadline` either returns the
/// item or returns `None` only once the (virtual) clock truly reached
/// the deadline — a spurious wake near the bound is never mistaken for
/// expiry, and a timeout that lands together with a push still takes
/// the item. This is the schedule space the `timed_out()`-flag bug
/// class lives in.
#[test]
fn pop_deadline_honors_window_bound() {
    let stats = quick().check(|| {
        let queue: StdArc<BlockingQueue<u64>> = StdArc::new(BlockingQueue::new());
        let q2 = StdArc::clone(&queue);
        let producer = check::thread::spawn(move || {
            let _ = q2.push(7);
        });
        let deadline = Instant::now() + Duration::from_millis(5);
        match queue.pop_deadline(deadline) {
            Some(v) => assert_eq!(v, 7),
            None => assert!(
                Instant::now() >= deadline,
                "pop_deadline gave up before the deadline"
            ),
        }
        producer.join().unwrap();
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}

/// With no producer at all, `pop_deadline` must ride out every spurious
/// wake (re-waiting with the remaining window each time) and return
/// `None` exactly at the bound on the virtual clock.
#[test]
fn pop_deadline_times_out_empty() {
    let stats = quick().check(|| {
        let queue: BlockingQueue<u64> = BlockingQueue::new();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(5);
        assert_eq!(queue.pop_deadline(deadline), None);
        assert!(Instant::now() >= deadline);
        assert!(Instant::now() - start >= Duration::from_millis(5));
    });
    assert!(stats.complete);
}
