//! Model-check suite for the real [`mmdb::SwapSlot`] / [`mmdb::Pinned`]
//! commit-slot protocol — not a re-implementation. Compiled only under
//! `RUSTFLAGS="--cfg ccindex_check"`, where the sync facade swaps
//! `snapshot.rs`'s mutex and atomics for the checker's instrumented
//! shims, so every bounded interleaving of the shipped code is explored
//! and every access is race-checked against the happens-before model.
//!
//! The invariants, in the paper's serving terms: a probe never reads a
//! half-installed generation, and a writer that observes quiescence
//! (`pinned() == 0`) really is alone — no in-flight pin can still be
//! reading what it tears down.
#![cfg(ccindex_check)]

use check::cell::RaceCell;
use check::Checker;
use mmdb::SwapSlot;
use std::sync::Arc as StdArc;

fn quick() -> Checker {
    Checker::new().max_iterations(50_000)
}

/// The reclaim-while-pinned invariant, end to end on the real slot: a
/// writer installs a fresh generation and, on observing `pinned() == 0`,
/// repurposes the old generation's backing storage. The reader's probe
/// through its guard is a tracked read; the writer's teardown is a
/// tracked write. Three protocol pieces must all hold for this to come
/// back race-free — pin registration inside the slot mutex, the
/// `Release` unpin in `Pinned::drop`, and the `Acquire` count read in
/// `pinned()` — and the mutation tests in `tests/mutants.rs` show the
/// checker reports the protocol the moment any of them is weakened.
#[test]
fn no_generation_reclaimed_while_pinned() {
    let stats = quick().check(|| {
        let backing = StdArc::new(RaceCell::new(1u64));
        let slot = SwapSlot::new(StdArc::clone(&backing), 1);
        let slot2 = StdArc::clone(&slot);
        let reader = check::thread::spawn(move || {
            let pinned = slot2.pin();
            pinned.get()
        });
        slot.install(StdArc::new(RaceCell::new(2)), 2);
        if slot.pinned() == 0 {
            // Quiescence certified: whatever was pinned has fully
            // unpinned, so the old generation's storage is ours.
            backing.set(99);
        }
        let v = reader.join().unwrap();
        // The reader saw a coherent generation: the old one's original
        // value or the new one's — never the torn 99.
        assert!(v == 1 || v == 2, "reader saw reclaimed storage: {v}");
    });
    assert!(stats.complete, "exploration was cut off");
    assert!(stats.iterations >= 2);
}

/// Generations are published whole: a reader that observes generation
/// number `g` through the `Acquire` load also observes the complete
/// state `install` built for `g` — the `(g, 3g)` pair is never torn,
/// and a pin taken after seeing `g` never yields anything older.
#[test]
fn install_never_publishes_partial_generations() {
    let stats = quick().check(|| {
        let slot = SwapSlot::new((1u64, 3u64), 1);
        let slot2 = StdArc::clone(&slot);
        let reader = check::thread::spawn(move || {
            let g = slot2.generation();
            let pinned = slot2.pin();
            assert_eq!(pinned.1, 3 * pinned.0, "torn generation {:?}", *pinned);
            assert!(
                pinned.0 >= g,
                "pin saw generation {} older than published {g}",
                pinned.0
            );
        });
        slot.install((2, 6), 2);
        reader.join().unwrap();
        assert_eq!(slot.generation(), 2);
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}

/// The observability counters settle truthfully once all threads join:
/// guard clones count as pins, drops unwind them to exactly zero, and
/// `swaps` records each commit once.
#[test]
fn pin_counts_and_swaps_settle() {
    let stats = quick().check(|| {
        let slot = SwapSlot::new(10u64, 1);
        let slot2 = StdArc::clone(&slot);
        let reader = check::thread::spawn(move || {
            let a = slot2.pin();
            let b = a.clone();
            let sum = *a + *b;
            drop(a);
            drop(b);
            sum
        });
        slot.install(20, 2);
        assert_eq!(reader.join().unwrap() % 10, 0);
        assert_eq!(slot.pinned(), 0, "a guard leaked its pin");
        assert_eq!(slot.swaps(), 1);
        assert_eq!(slot.generation(), 2);
    });
    assert!(stats.complete);
}
