//! Mutation self-tests: seed deliberately-broken concurrency protocols
//! and assert the checker REPORTS them, then run the corrected twin of
//! each protocol and assert it comes back clean. A model checker that
//! has never been seen catching a bug proves nothing by passing; these
//! tests are the tool's own evidence. They run in the normal test tier
//! (no `--cfg ccindex_check` needed — they use the shim types
//! directly, not the production facade).

use check::cell::RaceCell;
use check::sync::atomic::Ordering;
use check::sync::{Arc, AtomicU64, AtomicUsize, Condvar, Mutex};
use check::{Checker, FindingKind};

fn quick() -> Checker {
    Checker::new().max_iterations(50_000)
}

// ---------------------------------------------------------------------
// Mutant 1: message-passing publish with a Relaxed store.
// ---------------------------------------------------------------------

/// The broken protocol `install` would be with a `Relaxed` publish: the
/// writer's plain initialization is not ordered before the reader's
/// use, even though the flag value itself flows through.
#[test]
fn relaxed_publish_is_reported_as_a_race() {
    let finding = quick()
        .check_result(|| {
            let data = Arc::new(RaceCell::new(0u64));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = check::thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Relaxed); // MUTANT: should be Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                let _ = data.get();
            }
            t.join().unwrap();
        })
        .expect_err("a Relaxed publish must be reported");
    assert_eq!(finding.kind, FindingKind::DataRace);
    assert!(
        finding.message.contains("data race"),
        "unexpected message: {}",
        finding.message
    );
}

/// The corrected twin: Release publish / Acquire consume is clean, and
/// the exploration is exhaustive (not cut off by a cap).
#[test]
fn release_acquire_publish_is_clean() {
    let stats = quick().check(|| {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = check::thread::spawn(move || {
            d2.set(42);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 42);
        }
        t.join().unwrap();
    });
    assert!(stats.complete);
    assert!(stats.iterations >= 2);
}

/// Reading the flag with `Relaxed` breaks the same protocol from the
/// consumer side — the detector must not only blame writers.
#[test]
fn relaxed_consume_is_reported_as_a_race() {
    let finding = quick()
        .check_result(|| {
            let data = Arc::new(RaceCell::new(0u64));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = check::thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                // MUTANT ^^^^^^^ should be Acquire
                let _ = data.get();
            }
            t.join().unwrap();
        })
        .expect_err("a Relaxed consume must be reported");
    assert_eq!(finding.kind, FindingKind::DataRace);
}

// ---------------------------------------------------------------------
// Mutant 2: quiescence check on a pin count with too-weak orderings.
// ---------------------------------------------------------------------

/// The reclaim idiom `snapshot.rs` relies on, modeled faithfully: a
/// reader registers its pin under the slot mutex (as `SwapSlot::pin`
/// does), reads the shared state outside the lock, then unpins
/// lock-free (as `Pinned::drop` does); a writer mutates under the same
/// mutex only after observing `pins == 0`.
///
/// Two distinct edges make it correct, and the checker verifies both:
/// the mutex orders writer-then-reader schedules, and the
/// `Release`-unpin / `Acquire`-count-read pair orders
/// reader-then-writer schedules. Downgrade the second and only a
/// once-in-a-million interleaving breaks — which is the point of
/// exploring all of them.
#[test]
fn quiescence_with_release_acquire_is_clean() {
    let stats = quick().check(|| {
        let state = Arc::new(RaceCell::new(0u64));
        let pins = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(Mutex::new(()));
        let (s2, p2, l2) = (Arc::clone(&state), Arc::clone(&pins), Arc::clone(&slot));
        let reader = check::thread::spawn(move || {
            let guard = l2.lock().unwrap();
            p2.fetch_add(1, Ordering::Relaxed);
            drop(guard);
            let _ = s2.get();
            p2.fetch_sub(1, Ordering::Release);
        });
        let guard = slot.lock().unwrap();
        if pins.load(Ordering::Acquire) == 0 {
            state.set(7);
        }
        drop(guard);
        reader.join().unwrap();
    });
    assert!(stats.complete);
}

/// MUTANT: downgrade the unpin to `Relaxed` — the count still reads 0,
/// but nothing orders the reader's use before the writer's mutation.
/// This is exactly the once-in-a-million reclaim-while-pinned race.
#[test]
fn quiescence_with_relaxed_unpin_is_reported() {
    let finding = quick()
        .check_result(|| {
            let state = Arc::new(RaceCell::new(0u64));
            let pins = Arc::new(AtomicUsize::new(0));
            let slot = Arc::new(Mutex::new(()));
            let (s2, p2, l2) = (Arc::clone(&state), Arc::clone(&pins), Arc::clone(&slot));
            let reader = check::thread::spawn(move || {
                let guard = l2.lock().unwrap();
                p2.fetch_add(1, Ordering::Relaxed);
                drop(guard);
                let _ = s2.get();
                p2.fetch_sub(1, Ordering::Relaxed); // MUTANT: should be Release
            });
            let guard = slot.lock().unwrap();
            if pins.load(Ordering::Acquire) == 0 {
                state.set(7);
            }
            drop(guard);
            reader.join().unwrap();
        })
        .expect_err("a Relaxed unpin must be reported");
    assert_eq!(finding.kind, FindingKind::DataRace);
}

/// MUTANT: a writer that ignores the pin count entirely (the "reclaim
/// that ignores one pin" seeded bug) — caught on the schedule where the
/// write lands between pin and unpin.
#[test]
fn reclaim_ignoring_pins_is_reported() {
    let finding = quick()
        .check_result(|| {
            let state = Arc::new(RaceCell::new(0u64));
            let pins = Arc::new(AtomicUsize::new(0));
            let slot = Arc::new(Mutex::new(()));
            let (s2, p2, l2) = (Arc::clone(&state), Arc::clone(&pins), Arc::clone(&slot));
            let reader = check::thread::spawn(move || {
                let guard = l2.lock().unwrap();
                p2.fetch_add(1, Ordering::Relaxed);
                drop(guard);
                let _ = s2.get();
                p2.fetch_sub(1, Ordering::Release);
            });
            let guard = slot.lock().unwrap();
            state.set(7); // MUTANT: no quiescence check at all
            drop(guard);
            reader.join().unwrap();
        })
        .expect_err("reclaim without a pin check must be reported");
    assert_eq!(finding.kind, FindingKind::DataRace);
}

// ---------------------------------------------------------------------
// Mutant 3: a close that forgets to notify blocked consumers.
// ---------------------------------------------------------------------

struct MiniQueue {
    state: Mutex<(Vec<u64>, bool)>,
    nonempty: Condvar,
}

impl MiniQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new((Vec::new(), false)),
            nonempty: Condvar::new(),
        }
    }

    fn pop(&self) -> Option<u64> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(v) = st.0.pop() {
                return Some(v);
            }
            if st.1 {
                return None;
            }
            st = self.nonempty.wait(st).unwrap();
        }
    }

    fn close(&self, notify: bool) {
        let mut st = self.state.lock().unwrap();
        st.1 = true;
        drop(st);
        if notify {
            self.nonempty.notify_all();
        }
    }
}

/// MUTANT: `close` sets the flag but never notifies — a blocked
/// consumer sleeps forever. Reported as a deadlock (spurious wakeups
/// are injected, but a bounded budget cannot substitute for the missing
/// notify on every schedule).
#[test]
fn close_without_notify_is_reported_as_deadlock() {
    let finding = quick()
        .check_result(|| {
            let q = Arc::new(MiniQueue::new());
            let q2 = Arc::clone(&q);
            let consumer = check::thread::spawn(move || q2.pop());
            q.close(false); // MUTANT: forgets notify_all
            let _ = consumer.join().unwrap();
        })
        .expect_err("close without notify must deadlock some schedule");
    assert_eq!(finding.kind, FindingKind::Deadlock);
}

/// The corrected twin: close notifies, every schedule terminates, and
/// the consumer always observes the close.
#[test]
fn close_with_notify_is_clean() {
    let stats = quick().check(|| {
        let q = Arc::new(MiniQueue::new());
        let q2 = Arc::clone(&q);
        let consumer = check::thread::spawn(move || q2.pop());
        q.close(true);
        assert_eq!(consumer.join().unwrap(), None);
    });
    assert!(stats.complete);
}

// ---------------------------------------------------------------------
// Sanity: atomic RMWs really interleave.
// ---------------------------------------------------------------------

/// Both interleavings of two `fetch_add`s sum correctly — and a seeded
/// load-then-store "increment" loses an update on some schedule.
#[test]
fn atomic_increment_vs_load_store_mutant() {
    let stats = quick().check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = check::thread::spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
        });
        a.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::Acquire), 2);
    });
    assert!(stats.complete);

    let finding = quick()
        .check_result(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = check::thread::spawn(move || {
                // MUTANT: non-atomic increment written as load + store.
                let v = a2.load(Ordering::Acquire);
                a2.store(v + 1, Ordering::Release);
            });
            let v = a.load(Ordering::Acquire);
            a.store(v + 1, Ordering::Release);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 2);
        })
        .expect_err("a torn increment must fail on some schedule");
    assert_eq!(finding.kind, FindingKind::Panic);
    assert!(finding.message.contains("assertion"));
}
