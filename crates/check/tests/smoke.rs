//! Scheduler smoke tests: tiny models that exercise each runtime
//! mechanism (pure closure, spawn/join, atomics, mutex, condvar) so a
//! regression in the cooperative scheduler fails fast and small.

use check::sync::atomic::Ordering;
use check::sync::{Arc, AtomicU64, Condvar, Mutex};
use check::Checker;

#[test]
fn empty_model() {
    let stats = Checker::default().check(|| {});
    assert_eq!(stats.iterations, 1);
    assert!(stats.complete);
}

#[test]
fn single_thread_atomics() {
    Checker::default().check(|| {
        let a = AtomicU64::new(1);
        a.store(2, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 2);
        assert_eq!(a.fetch_add(3, Ordering::AcqRel), 2);
        assert_eq!(a.load(Ordering::Relaxed), 5);
    });
}

#[test]
fn spawn_and_join() {
    let stats = Checker::default().check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = check::thread::spawn(move || {
            a2.fetch_add(1, Ordering::AcqRel);
        });
        a.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::Acquire), 2);
    });
    // Two orders of the two increments exist, but the result is the
    // same; exploration must cover more than one schedule.
    assert!(
        stats.iterations >= 2,
        "explored {} schedules",
        stats.iterations
    );
}

#[test]
fn scoped_threads() {
    Checker::default().check(|| {
        let a = AtomicU64::new(0);
        check::thread::scope(|s| {
            s.spawn(|| {
                a.fetch_add(1, Ordering::AcqRel);
            });
            s.spawn(|| {
                a.fetch_add(1, Ordering::AcqRel);
            });
        });
        assert_eq!(a.load(Ordering::Acquire), 2);
    });
}

#[test]
fn mutex_exclusion() {
    Checker::default().check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = check::thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn condvar_handoff() {
    Checker::default().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = check::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

#[test]
fn wait_timeout_fires_in_virtual_time() {
    Checker::default().check(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock().unwrap();
        let before = check::time::Instant::now();
        // A timed wait may return spuriously before the deadline; the
        // contract is only that re-waiting eventually times out.
        loop {
            let (g, res) = cv
                .wait_timeout(guard, std::time::Duration::from_millis(5))
                .unwrap();
            guard = g;
            if res.timed_out() {
                break;
            }
        }
        assert!(check::time::Instant::now() - before >= std::time::Duration::from_millis(5));
        drop(guard);
    });
}
