//! Cache-line-aligned storage.
//!
//! §6.2 of the paper: "The sorted array is aligned properly according to the
//! cache line size. For T-trees, B+-trees and CSS-trees, all the tree nodes
//! are allocated at once and the starting addresses are also aligned
//! properly." [`AlignedBuf`] reproduces that discipline: a fixed-capacity
//! buffer whose base address is aligned to a cache-line multiple, allocated
//! in one shot (no incremental reallocation — the OLAP setting preallocates,
//! see the footnote to Fig. 9).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line size assumed by the default layouts (64 bytes, the UltraSparc
/// II L2 line size from §6.1 and the dominant line size on modern x86).
pub const CACHE_LINE_BYTES: usize = 64;

/// A heap buffer of `T` whose base address is aligned to `align` bytes
/// (at least `align_of::<T>()`), zero-initialised, with a fixed length.
///
/// Unlike `Vec`, an `AlignedBuf` never grows: index arenas in this workspace
/// compute their exact size up front (Algorithm 4.1 computes the number of
/// internal nodes before filling them) and are rebuilt from scratch on batch
/// updates.
pub struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
    align: usize,
    _marker: PhantomData<T>,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Box<[T]>.
unsafe impl<T: Send> Send for AlignedBuf<T> {}
// SAFETY: shared access only hands out &T into the owned allocation,
// so AlignedBuf is as Sync as its element type.
unsafe impl<T: Sync> Sync for AlignedBuf<T> {}

impl<T: Copy + Default> AlignedBuf<T> {
    /// Allocate `len` zeroed elements aligned to [`CACHE_LINE_BYTES`].
    pub fn new_zeroed(len: usize) -> Self {
        Self::with_align(len, CACHE_LINE_BYTES)
    }

    /// Allocate `len` zeroed elements aligned to `align` bytes (rounded up
    /// to the element alignment; must be a power of two).
    pub fn with_align(len: usize, align: usize) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(core::mem::align_of::<T>());
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
                align,
                _marker: PhantomData,
            };
        }
        let bytes = core::mem::size_of::<T>()
            .checked_mul(len)
            .expect("allocation size overflow");
        let layout = Layout::from_size_align(bytes, align).expect("bad layout");
        if bytes == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len,
                align,
                _marker: PhantomData,
            };
        }
        // SAFETY: layout has non-zero size — the zero-sized case (ZST
        // element or len rounding to 0 bytes) returned a dangling
        // buffer just above and never reaches the allocator.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self {
            ptr,
            len,
            align,
            _marker: PhantomData,
        }
    }

    /// Copy a slice into a new aligned buffer.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::new_zeroed(src.len());
        buf.copy_from_slice(src);
        buf
    }
}

impl<T> AlignedBuf<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the buffer (stable for the buffer's lifetime); used
    /// by the access tracer to report which cache lines a probe touches.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }

    /// Alignment in bytes of the base address.
    #[inline]
    pub fn alignment(&self) -> usize {
        self.align
    }

    /// Size of the buffer's allocation in bytes (the quantity charged by the
    /// paper's space model).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        core::mem::size_of::<T>() * self.len
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr is valid for len elements (allocated zeroed), and we
        // only hand out T: Copy contents.
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as above, plus exclusive access via &mut self.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        let bytes = core::mem::size_of::<T>() * self.len;
        if bytes == 0 {
            return;
        }
        let layout = Layout::from_size_align(bytes, self.align).expect("bad layout");
        // SAFETY: allocated with the identical layout in with_align.
        unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
    }
}

impl<T> Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut buf = Self::with_align(self.len, self.align);
        buf.as_mut_slice().copy_from_slice(self.as_slice());
        buf
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("align", &self.align)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_cache_line_aligned() {
        for len in [1usize, 7, 16, 1000] {
            let buf = AlignedBuf::<u32>::new_zeroed(len);
            assert_eq!(buf.base_addr() % CACHE_LINE_BYTES, 0, "len={len}");
            assert_eq!(buf.len(), len);
        }
    }

    #[test]
    fn zeroed_on_allocation() {
        let buf = AlignedBuf::<u64>::new_zeroed(123);
        assert!(buf.iter().all(|&v| v == 0));
    }

    #[test]
    fn from_slice_roundtrip() {
        let data: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let buf = AlignedBuf::from_slice(&data);
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(buf.size_bytes(), 400);
    }

    #[test]
    fn empty_buffer_is_safe() {
        let buf = AlignedBuf::<u32>::new_zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[] as &[u32]);
        assert_eq!(buf.size_bytes(), 0);
        let cloned = buf.clone();
        assert!(cloned.is_empty());
    }

    #[test]
    fn custom_alignment_honoured() {
        let buf = AlignedBuf::<u32>::with_align(10, 4096);
        assert_eq!(buf.base_addr() % 4096, 0);
        assert_eq!(buf.alignment(), 4096);
    }

    #[test]
    fn mutation_through_deref() {
        let mut buf = AlignedBuf::<u32>::new_zeroed(4);
        buf[2] = 42;
        assert_eq!(buf.as_slice(), &[0, 0, 42, 0]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::from_slice(&[1u32, 2, 3]);
        let b = a.clone();
        a[0] = 99;
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_ne!(a.base_addr(), b.base_addr());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        let _ = AlignedBuf::<u32>::with_align(4, 48);
    }
}
