//! The shared sorted array all ordered methods index.
//!
//! §4: "Suppose that we have a sorted array a[1..n] of n elements. The
//! array a could contain the record-identifiers of records in some database
//! table in the order of some attribute k", or the keys themselves with a
//! companion RID array, or clustered records. Crucially, "the array is
//! given to us without assumptions that it can be restructured" — so
//! [`SortedArray`] is immutable, cache-line aligned, and *shared* (via
//! `Arc`) between the RID list and however many directory structures sit on
//! top of it. Its own bytes are never charged to an index's space budget
//! (Fig. 7 counts space beyond the sequential-access structures).

use crate::align::AlignedBuf;
use crate::key::Key;
use crate::tracer::AccessTracer;
use std::sync::Arc;

/// An immutable, cache-line-aligned, sorted array of keys, cheaply
/// shareable between index structures.
#[derive(Debug, Clone)]
pub struct SortedArray<K> {
    buf: Arc<AlignedBuf<K>>,
}

impl<K: Key> SortedArray<K> {
    /// Copy a sorted slice into aligned storage. Panics if unsorted
    /// (equal neighbours are allowed: duplicates are legal, §3.6).
    pub fn from_slice(keys: &[K]) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "SortedArray requires non-decreasing input"
        );
        Self {
            buf: Arc::new(AlignedBuf::from_slice(keys)),
        }
    }

    /// Take ownership of a vector (still validated).
    pub fn from_vec(keys: Vec<K>) -> Self {
        Self::from_slice(&keys)
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The keys.
    #[inline]
    pub fn as_slice(&self) -> &[K] {
        self.buf.as_slice()
    }

    /// Address of element `i`, for access tracing.
    #[inline]
    pub fn addr_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.buf.base_addr() + i * core::mem::size_of::<K>()
    }

    /// Read element `i`, reporting the access to `tracer`.
    #[inline]
    pub fn get_traced<T: AccessTracer>(&self, i: usize, tracer: &mut T) -> K {
        tracer.read(self.addr_of(i), K::WIDTH);
        self.as_slice()[i]
    }

    /// Bytes of the underlying allocation (shared; *not* index overhead).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.buf.size_bytes()
    }

    /// Number of `Arc` holders (for tests asserting sharing, not copying).
    pub fn holders(&self) -> usize {
        Arc::strong_count(&self.buf)
    }
}

impl<K: Key> From<&[K]> for SortedArray<K> {
    fn from(keys: &[K]) -> Self {
        Self::from_slice(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::CountingTracer;

    #[test]
    fn construction_validates_order() {
        let a = SortedArray::from_slice(&[1u32, 2, 2, 3]);
        assert_eq!(a.len(), 4);
        assert_eq!(a.as_slice(), &[1, 2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unsorted() {
        let _ = SortedArray::from_slice(&[3u32, 1]);
    }

    #[test]
    fn clone_shares_storage() {
        let a = SortedArray::from_slice(&[1u32, 2, 3]);
        let b = a.clone();
        assert_eq!(a.addr_of(0), b.addr_of(0));
        assert_eq!(a.holders(), 2);
    }

    #[test]
    fn addresses_are_contiguous() {
        let a = SortedArray::from_slice(&(0..10u32).collect::<Vec<_>>());
        for i in 0..9 {
            assert_eq!(a.addr_of(i + 1) - a.addr_of(i), 4);
        }
        assert_eq!(a.addr_of(0) % crate::align::CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn traced_reads_report() {
        let a = SortedArray::from_slice(&[10u32, 20, 30]);
        let mut t = CountingTracer::new();
        assert_eq!(a.get_traced(1, &mut t), 20);
        assert_eq!(t.reads, 1);
        assert_eq!(t.bytes_read, 4);
    }

    #[test]
    fn empty_array_ok() {
        let a = SortedArray::<u32>::from_slice(&[]);
        assert!(a.is_empty());
        assert_eq!(a.size_bytes(), 0);
    }
}
