//! The common interface implemented by all seven competing index methods.
//!
//! The paper compares methods on two axes: lookup time and space (§2.3).
//! [`SearchIndex`] exposes both — `search` for timing and [`SpaceReport`]
//! for the "indirect" and "direct" space columns of Fig. 7 — plus a traced
//! variant of every probe so the cache simulator can replay the exact access
//! pattern of the timed code.
//!
//! Ordered methods (everything except the hash index) additionally implement
//! [`OrderedIndex`], which provides the leftmost-match `lower_bound` used
//! for duplicate handling (§3.6) and range queries (§2.2).

use crate::key::Key;
use crate::tracer::AccessTracer;

/// Default number of interleaved probe lanes used by batch-aware indexes
/// when a caller reaches them through the trait-object batch methods
/// (which cannot carry a lane count). Eight in-flight probes is enough to
/// cover a random-access miss on current memory subsystems without
/// spilling the per-lane state out of registers.
pub const DEFAULT_BATCH_LANES: usize = 8;

/// Space occupied by an index structure, following Fig. 7's two columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceReport {
    /// "Space (indirect)": the structure indexes a rearrangeable list of
    /// record identifiers; RIDs themselves are not charged because every
    /// method shares that cost.
    pub indirect_bytes: usize,
    /// "Space (direct)": the indexed records cannot be rearranged, so
    /// methods that must keep RIDs inside their own structure (T-trees,
    /// hash tables) are charged `n * R` extra.
    pub direct_bytes: usize,
}

impl SpaceReport {
    /// A report where both accounting modes coincide (true for binary
    /// search, interpolation search, CSS-trees and B+-trees in Fig. 7).
    pub fn same(bytes: usize) -> Self {
        Self {
            indirect_bytes: bytes,
            direct_bytes: bytes,
        }
    }
}

/// Structural statistics describing a built index, used by tests that check
/// the analytical model of §5 against real structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Number of levels traversed by a worst-case probe, counting the leaf
    /// level (binary search over an array of n keys reports `ceil(log2 n)`).
    pub levels: u32,
    /// Number of internal (directory) nodes, 0 for array methods.
    pub internal_nodes: usize,
    /// Branching factor of the directory (2 for binary methods).
    pub branching: usize,
    /// Bytes per directory node (0 for array methods).
    pub node_bytes: usize,
}

/// A read-only search structure over `n` keyed entries.
///
/// `search` returns the position of the probed key in the underlying sorted
/// RID order — the *leftmost* position when duplicates exist (§3.6) — or
/// `None` if the key is absent. For the hash index, which does not preserve
/// order, the returned position is the entry's position in the original
/// sorted array (hash entries carry it as their RID), so all methods can be
/// cross-checked against each other.
pub trait SearchIndex<K: Key>: Send + Sync {
    /// Short stable name used in benchmark output ("full CSS-tree", ...).
    fn name(&self) -> &'static str;

    /// Number of indexed entries.
    fn len(&self) -> usize;

    /// Whether the index contains no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`; returns the leftmost matching position, if any.
    fn search(&self, key: K) -> Option<usize>;

    /// As [`SearchIndex::search`], reporting every memory access to
    /// `tracer` (used by the cache simulator).
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize>;

    /// Look up a whole batch of probes; `out[i]` is `search(probes[i])`.
    ///
    /// The paper's index consumers are batch-shaped — an indexed
    /// nested-loop join performs "a lot of searching through indexes on
    /// the inner relations" (§2.2) — so the batch, not the single probe,
    /// is the unit the database layer hands to an index. The default is
    /// the sequential per-probe loop; cache-conscious structures override
    /// it with a software-pipelined descent that keeps several
    /// independent probes' node fetches in flight at once (the batching
    /// counterpart of the paper's cache-line node sizing).
    fn search_batch(&self, probes: &[K]) -> Vec<Option<usize>> {
        probes.iter().map(|&p| self.search(p)).collect()
    }

    /// As [`SearchIndex::search_batch`] with an explicit interleave lane
    /// count. Structures that are not batch-aware ignore `lanes` (the
    /// default just forwards to [`SearchIndex::search_batch`]); the CSS
    /// trees override it so callers holding only a trait object — e.g.
    /// the database executor honouring its `ExecOptions { lanes, .. }`
    /// knob — can still tune the interleaved descent. Degenerate lane
    /// counts (`0`, or more lanes than probes) must behave like the
    /// sequential descent, never panic.
    fn search_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<Option<usize>> {
        let _ = lanes;
        self.search_batch(probes)
    }

    /// As [`SearchIndex::search_batch`], reporting every memory access to
    /// `tracer` so the cache simulator can replay the batched access
    /// pattern (which differs from the sequential one precisely when an
    /// override interleaves probes).
    fn search_batch_traced(
        &self,
        probes: &[K],
        tracer: &mut dyn AccessTracer,
    ) -> Vec<Option<usize>> {
        probes
            .iter()
            .map(|&p| self.search_traced(p, tracer))
            .collect()
    }

    /// Space accounting per Fig. 7.
    fn space(&self) -> SpaceReport;

    /// Structural statistics (levels, node counts) for model validation.
    fn stats(&self) -> IndexStats;
}

/// An index that preserves key order, supporting range scans and ordered
/// (RID-order) access — the "RID-Ordered Access" column of Fig. 7, which is
/// "Y" for every method except the hash table.
pub trait OrderedIndex<K: Key>: SearchIndex<K> {
    /// Position of the first entry whose key is `>= key` (equals `len()` if
    /// every key is smaller). This is the primitive from which point lookup
    /// (`lower_bound` + equality check) and range queries are derived.
    fn lower_bound(&self, key: K) -> usize;

    /// As [`OrderedIndex::lower_bound`], with access tracing.
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize;

    /// Lower bounds for a whole batch; `out[i]` is
    /// `lower_bound(probes[i])`. Sequential by default; batch-aware
    /// structures override it with an interleaved multi-lane descent (see
    /// [`SearchIndex::search_batch`] for the rationale).
    fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
        probes.iter().map(|&p| self.lower_bound(p)).collect()
    }

    /// As [`OrderedIndex::lower_bound_batch`] with an explicit interleave
    /// lane count; see [`SearchIndex::search_batch_lanes`] for the
    /// contract (default ignores `lanes`, batch-aware structures
    /// override, degenerate lane counts fall back to sequential descent).
    fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
        let _ = lanes;
        self.lower_bound_batch(probes)
    }

    /// As [`OrderedIndex::lower_bound_batch`], with access tracing for
    /// cache-simulator replay of the batched pattern.
    fn lower_bound_batch_traced(&self, probes: &[K], tracer: &mut dyn AccessTracer) -> Vec<usize> {
        probes
            .iter()
            .map(|&p| self.lower_bound_traced(p, tracer))
            .collect()
    }

    /// Half-open positional range `[start, end)` of entries with keys in
    /// the inclusive key range `[lo, hi]`. Used for range selections (§2.2).
    fn key_range(&self, lo: K, hi: K) -> (usize, usize) {
        assert!(lo <= hi, "inverted key range");
        let start = self.lower_bound(lo);
        let end = match hi.to_rank().checked_add(1) {
            Some(next) if K::from_rank(next) > hi => self.lower_bound(K::from_rank(next)),
            _ => self.len(),
        };
        (start, end.max(start))
    }

    /// Positional range `[start, end)` of entries equal to `key` — the
    /// §3.6 duplicate primitive ("find the leftmost element of all the
    /// duplicates and sequentially scan towards right"), expressed without
    /// needing access to the key array. Empty (`start == end`) when the
    /// key is absent.
    fn equal_range(&self, key: K) -> (usize, usize) {
        self.key_range(key, key)
    }

    /// Number of entries equal to `key`.
    fn count_key(&self, key: K) -> usize {
        let (s, e) = self.equal_range(key);
        e - s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::NoopTracer;

    /// Minimal reference implementation used to exercise trait defaults.
    struct VecIndex(Vec<u32>);

    impl SearchIndex<u32> for VecIndex {
        fn name(&self) -> &'static str {
            "vec"
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn search(&self, key: u32) -> Option<usize> {
            let pos = self.lower_bound(key);
            (pos < self.0.len() && self.0[pos] == key).then_some(pos)
        }
        fn search_traced(&self, key: u32, _t: &mut dyn AccessTracer) -> Option<usize> {
            self.search(key)
        }
        fn space(&self) -> SpaceReport {
            SpaceReport::same(0)
        }
        fn stats(&self) -> IndexStats {
            IndexStats::default()
        }
    }

    impl OrderedIndex<u32> for VecIndex {
        fn lower_bound(&self, key: u32) -> usize {
            self.0.partition_point(|&k| k < key)
        }
        fn lower_bound_traced(&self, key: u32, _t: &mut dyn AccessTracer) -> usize {
            self.lower_bound(key)
        }
    }

    #[test]
    fn key_range_default_is_inclusive() {
        let idx = VecIndex(vec![1, 3, 3, 5, 7, 9]);
        assert_eq!(idx.key_range(3, 7), (1, 5));
        assert_eq!(idx.key_range(0, 0), (0, 0));
        assert_eq!(idx.key_range(8, 100), (5, 6));
        // hi == u32::MAX exercises the saturating upper bound.
        assert_eq!(idx.key_range(0, u32::MAX), (0, 6));
    }

    #[test]
    fn key_range_empty_band() {
        let idx = VecIndex(vec![1, 3, 5]);
        assert_eq!(idx.key_range(4, 4), (2, 2));
    }

    #[test]
    #[should_panic(expected = "inverted key range")]
    fn key_range_rejects_inverted() {
        let idx = VecIndex(vec![1, 2]);
        let _ = idx.key_range(5, 2);
    }

    #[test]
    fn equal_range_covers_duplicate_runs() {
        let idx = VecIndex(vec![1, 3, 3, 3, 5, 5, 9]);
        assert_eq!(idx.equal_range(3), (1, 4));
        assert_eq!(idx.count_key(3), 3);
        assert_eq!(idx.equal_range(5), (4, 6));
        assert_eq!(idx.equal_range(4), (4, 4), "absent key is empty");
        assert_eq!(idx.count_key(4), 0);
        assert_eq!(idx.equal_range(u32::MAX), (7, 7));
    }

    #[test]
    fn space_report_same() {
        let r = SpaceReport::same(128);
        assert_eq!(r.indirect_bytes, 128);
        assert_eq!(r.direct_bytes, 128);
    }

    #[test]
    fn default_batch_methods_match_sequential() {
        let idx = VecIndex(vec![1, 3, 3, 5, 9]);
        let probes = [0u32, 1, 2, 3, 9, 10];
        let expect_search: Vec<_> = probes.iter().map(|&p| idx.search(p)).collect();
        let expect_lb: Vec<_> = probes.iter().map(|&p| idx.lower_bound(p)).collect();
        assert_eq!(idx.search_batch(&probes), expect_search);
        assert_eq!(idx.lower_bound_batch(&probes), expect_lb);
        // The lane-carrying defaults ignore the lane count entirely —
        // including the degenerate values batch-aware overrides must
        // also accept.
        for lanes in [0usize, 1, 8, 1000] {
            assert_eq!(idx.search_batch_lanes(&probes, lanes), expect_search);
            assert_eq!(idx.lower_bound_batch_lanes(&probes, lanes), expect_lb);
        }
        let mut t = NoopTracer;
        assert_eq!(idx.search_batch_traced(&probes, &mut t), expect_search);
        assert_eq!(idx.lower_bound_batch_traced(&probes, &mut t), expect_lb);
        assert!(idx.search_batch(&[]).is_empty());
        assert!(idx.lower_bound_batch(&[]).is_empty());
    }

    #[test]
    fn is_empty_default() {
        assert!(VecIndex(vec![]).is_empty());
        assert!(!VecIndex(vec![1]).is_empty());
        let mut t = NoopTracer;
        assert_eq!(VecIndex(vec![1]).search_traced(1, &mut t), Some(0));
    }
}
