//! Fixed-width key abstraction.
//!
//! The paper's experiments use distinct 4-byte integer keys (`K = 4` in
//! Table 1). All index structures here are generic over [`Key`] so the same
//! code also serves 8-byte keys; the space model scales accordingly.

use core::fmt::Debug;
use core::hash::Hash;

/// A fixed-width, totally ordered key.
///
/// Requirements beyond `Ord`:
/// * a compile-time byte width ([`Key::WIDTH`]) used by the space model,
/// * conversion to `u64`/`f64` rank space for interpolation search and for
///   the low-order-bit hash function of the chained-bucket hash index,
/// * `MIN_KEY`/`MAX_KEY` sentinels used when padding partially filled nodes.
pub trait Key: Copy + Ord + Eq + Hash + Debug + Default + Send + Sync + 'static {
    /// Size of the key in bytes (`K` in the paper's space model).
    const WIDTH: usize;
    /// Smallest representable key.
    const MIN_KEY: Self;
    /// Largest representable key.
    const MAX_KEY: Self;

    /// Map the key to an unsigned 64-bit rank that preserves ordering.
    fn to_rank(self) -> u64;
    /// Inverse of [`Key::to_rank`] (saturating on overflow).
    fn from_rank(rank: u64) -> Self;
    /// Rank as `f64`, used by interpolation search's position estimate.
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_rank() as f64
    }
    /// Cheap integer hash input (the paper's hash "simply uses the low
    /// order bits of the key", §6.2).
    #[inline]
    fn hash_bits(self) -> u64 {
        self.to_rank()
    }
}

macro_rules! impl_key_unsigned {
    ($($t:ty),*) => {$(
        impl Key for $t {
            const WIDTH: usize = core::mem::size_of::<$t>();
            const MIN_KEY: Self = <$t>::MIN;
            const MAX_KEY: Self = <$t>::MAX;
            #[inline]
            fn to_rank(self) -> u64 { self as u64 }
            #[inline]
            fn from_rank(rank: u64) -> Self {
                if rank > <$t>::MAX as u64 { <$t>::MAX } else { rank as $t }
            }
        }
    )*};
}

macro_rules! impl_key_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Key for $t {
            const WIDTH: usize = core::mem::size_of::<$t>();
            const MIN_KEY: Self = <$t>::MIN;
            const MAX_KEY: Self = <$t>::MAX;
            // Flip the sign bit so unsigned comparison of ranks matches
            // signed comparison of keys.
            #[inline]
            fn to_rank(self) -> u64 {
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }
            #[inline]
            fn from_rank(rank: u64) -> Self {
                let max_rank = (<$t>::MAX as $u ^ (1 << (<$t>::BITS - 1))) as u64;
                let r = rank.min(max_rank) as $u;
                (r ^ (1 << (<$t>::BITS - 1))) as $t
            }
        }
    )*};
}

impl_key_unsigned!(u16, u32, u64);
impl_key_signed!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_paper_parameters() {
        // Table 1: K = 4 bytes for the canonical experiments.
        assert_eq!(<u32 as Key>::WIDTH, 4);
        assert_eq!(<u64 as Key>::WIDTH, 8);
        assert_eq!(<i32 as Key>::WIDTH, 4);
        assert_eq!(<u16 as Key>::WIDTH, 2);
    }

    #[test]
    fn rank_is_order_preserving_u32() {
        let samples = [0u32, 1, 2, 7, 100, u32::MAX - 1, u32::MAX];
        for w in samples.windows(2) {
            assert!(w[0].to_rank() < w[1].to_rank());
        }
    }

    #[test]
    fn rank_is_order_preserving_i32() {
        let samples = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in samples.windows(2) {
            assert!(w[0].to_rank() < w[1].to_rank(), "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn rank_roundtrips() {
        for v in [0u32, 5, 1000, u32::MAX] {
            assert_eq!(u32::from_rank(v.to_rank()), v);
        }
        for v in [i32::MIN, -7, 0, 7, i32::MAX] {
            assert_eq!(i32::from_rank(v.to_rank()), v);
        }
        for v in [0u64, 1 << 40, u64::MAX] {
            assert_eq!(u64::from_rank(v.to_rank()), v);
        }
    }

    #[test]
    fn from_rank_saturates() {
        assert_eq!(u16::from_rank(u64::MAX), u16::MAX);
        assert_eq!(u32::from_rank(u64::MAX), u32::MAX);
        assert_eq!(i32::from_rank(u64::MAX), i32::MAX);
    }

    #[test]
    fn min_max_sentinels() {
        let (lo, hi) = (7u32.to_rank(), u32::MAX.to_rank());
        assert!(<u32 as Key>::MIN_KEY.to_rank() < lo);
        assert!(<u32 as Key>::MAX_KEY.to_rank() >= hi);
        const { assert!(<i32 as Key>::MIN_KEY < 0 && <i32 as Key>::MAX_KEY > 0) };
    }
}
