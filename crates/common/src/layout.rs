//! Integer arithmetic helpers shared by the tree-layout computations.
//!
//! Lemma 4.1 of the paper and its level-CSS analogue are expressed in terms
//! of ceilinged logarithms and powers of the branching factor; these helpers
//! keep that arithmetic exact (no floating point) so node counts are correct
//! at every boundary (`B` exactly a power of the branching factor, `B = 1`,
//! etc.).

/// `ceil(a / b)`, panicking on `b == 0`.
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b != 0, "division by zero");
    if a == 0 {
        0
    } else {
        (a - 1) / b + 1
    }
}

/// Smallest `k` with `base^k >= value` (exact integer computation).
///
/// `ceil_log(base, 1) == 0`; `base` must be at least 2.
#[inline]
pub fn ceil_log(base: usize, value: usize) -> u32 {
    assert!(base >= 2, "logarithm base must be >= 2");
    assert!(value >= 1, "logarithm of zero");
    let mut k = 0u32;
    let mut acc: usize = 1;
    while acc < value {
        acc = acc.saturating_mul(base);
        k += 1;
    }
    k
}

/// Largest `k` with `base^k <= value`; `value` must be >= 1.
#[inline]
pub fn ilog_floor(base: usize, value: usize) -> u32 {
    assert!(base >= 2, "logarithm base must be >= 2");
    assert!(value >= 1, "logarithm of zero");
    let mut k = 0u32;
    let mut acc: usize = 1;
    loop {
        match acc.checked_mul(base) {
            Some(next) if next <= value => {
                acc = next;
                k += 1;
            }
            _ => return k,
        }
    }
}

/// `base^exp` saturating at `usize::MAX`.
#[inline]
pub fn pow_saturating(base: usize, exp: u32) -> usize {
    let mut acc: usize = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(4, 4), 1);
        assert_eq!(ceil_div(5, 4), 2);
        assert_eq!(ceil_div(usize::MAX, 1), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ceil_div_zero_divisor() {
        let _ = ceil_div(1, 0);
    }

    #[test]
    fn ceil_log_exact_powers() {
        assert_eq!(ceil_log(5, 1), 0);
        assert_eq!(ceil_log(5, 5), 1);
        assert_eq!(ceil_log(5, 25), 2);
        assert_eq!(ceil_log(5, 26), 3);
        assert_eq!(ceil_log(2, 1024), 10);
        assert_eq!(ceil_log(2, 1025), 11);
    }

    #[test]
    fn ceil_log_matches_float_for_many_values() {
        for base in 2usize..=17 {
            for value in 1usize..=10_000 {
                let k = ceil_log(base, value);
                assert!(pow_saturating(base, k) >= value);
                if k > 0 {
                    assert!(pow_saturating(base, k - 1) < value);
                }
            }
        }
    }

    #[test]
    fn ilog_floor_matches_definition() {
        for base in 2usize..=9 {
            for value in 1usize..=5_000 {
                let k = ilog_floor(base, value);
                assert!(pow_saturating(base, k) <= value);
                assert!(pow_saturating(base, k + 1) > value);
            }
        }
    }

    #[test]
    fn pow_saturating_saturates() {
        assert_eq!(pow_saturating(2, 200), usize::MAX);
        assert_eq!(pow_saturating(10, 0), 1);
        assert_eq!(pow_saturating(17, 3), 4913);
    }
}
