//! Shared substrate for the `ccindex` workspace.
//!
//! This crate holds the pieces that every index structure in the Rao & Ross
//! (VLDB 1999) reproduction depends on:
//!
//! * [`Key`] — the fixed-width key abstraction (the paper uses 4-byte
//!   integer keys throughout; we additionally support other widths),
//! * [`AccessTracer`] — a zero-cost hook through which index traversals
//!   report every memory region they touch, so the same search code can be
//!   wall-clock benchmarked (with [`NoopTracer`]) and replayed through the
//!   cache simulator,
//! * [`AlignedBuf`] — cache-line-aligned storage for node arenas and sorted
//!   arrays (§6.2 of the paper aligns all structures to cache lines),
//! * [`SearchIndex`] / [`OrderedIndex`] — the common interface the paper's
//!   seven competing methods implement, including the space accounting used
//!   for the space/time trade-off study (Figs. 2, 7, 8, 14).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod align;
pub mod array;
pub mod index;
pub mod key;
pub mod layout;
pub mod tracer;

pub use align::{AlignedBuf, CACHE_LINE_BYTES};
pub use array::SortedArray;
pub use index::{IndexStats, OrderedIndex, SearchIndex, SpaceReport, DEFAULT_BATCH_LANES};
pub use key::Key;
pub use layout::{ceil_div, ceil_log, ilog_floor, pow_saturating};
pub use tracer::{AccessKind, AccessTracer, CountingTracer, NoopTracer, RecordingTracer};
