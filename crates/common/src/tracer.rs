//! Memory-access tracing hooks.
//!
//! The paper's central claim is about *cache behaviour*: which of the
//! (identical number of) key comparisons cause a cache miss (§6.3). To
//! reproduce the 1998 machines' miss counts we let every index traversal
//! report the memory regions it touches through an [`AccessTracer`].
//!
//! The hot wall-clock path uses [`NoopTracer`]; because the search routines
//! are generic over the tracer and `NoopTracer`'s methods are empty
//! `#[inline]` bodies, monomorphization erases the hook entirely, so the
//! traced and timed code paths are the same code.

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data read (index probes are read-only in the OLAP setting, §2.3).
    Read,
    /// A data write (index construction).
    Write,
}

/// Receives every memory access performed by an instrumented traversal.
///
/// `addr` is the address of the first byte touched and `len` the number of
/// bytes. Implementations must tolerate `len == 0` (ignored) and accesses
/// that straddle cache-line boundaries (they count as touching every line
/// they overlap).
pub trait AccessTracer {
    /// Record a read of `len` bytes starting at `addr`.
    fn read(&mut self, addr: usize, len: usize);
    /// Record a write of `len` bytes starting at `addr`.
    fn write(&mut self, addr: usize, len: usize);
    /// Record one unit of key-comparison work (used by the simulated time
    /// model; free for wall-clock runs).
    fn compare(&mut self);
    /// Record one node-to-node move / child-address computation (the
    /// "moving across levels" cost of Fig. 6).
    fn descend(&mut self);
}

/// The do-nothing tracer used by the wall-clock (`search`) entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl AccessTracer for NoopTracer {
    #[inline(always)]
    fn read(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn write(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn compare(&mut self) {}
    #[inline(always)]
    fn descend(&mut self) {}
}

/// Counts events without recording addresses; used in unit tests and by the
/// analytic-model validation tests.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Number of read accesses (not bytes).
    pub reads: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Key comparisons reported.
    pub compares: u64,
    /// Node descents reported.
    pub descends: u64,
}

impl CountingTracer {
    /// Fresh tracer with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AccessTracer for CountingTracer {
    #[inline]
    fn read(&mut self, _addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.reads += 1;
        self.bytes_read += len as u64;
    }
    #[inline]
    fn write(&mut self, _addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.writes += 1;
        self.bytes_written += len as u64;
    }
    #[inline]
    fn compare(&mut self) {
        self.compares += 1;
    }
    #[inline]
    fn descend(&mut self) {
        self.descends += 1;
    }
}

/// Records the full access sequence; used by the cache simulator's replay
/// tests and by debugging tools.
#[derive(Debug, Default, Clone)]
pub struct RecordingTracer {
    /// `(kind, addr, len)` triples in program order.
    pub accesses: Vec<(AccessKind, usize, usize)>,
    /// Key comparisons reported.
    pub compares: u64,
    /// Node descents reported.
    pub descends: u64,
}

impl RecordingTracer {
    /// Fresh empty recording.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AccessTracer for RecordingTracer {
    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.accesses.push((AccessKind::Read, addr, len));
    }
    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.accesses.push((AccessKind::Write, addr, len));
    }
    #[inline]
    fn compare(&mut self) {
        self.compares += 1;
    }
    #[inline]
    fn descend(&mut self) {
        self.descends += 1;
    }
}

impl<T: AccessTracer + ?Sized> AccessTracer for &mut T {
    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        (**self).read(addr, len)
    }
    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        (**self).write(addr, len)
    }
    #[inline]
    fn compare(&mut self) {
        (**self).compare()
    }
    #[inline]
    fn descend(&mut self) {
        (**self).descend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_accumulates() {
        let mut t = CountingTracer::new();
        t.read(0x1000, 64);
        t.read(0x2000, 4);
        t.write(0x3000, 8);
        t.compare();
        t.compare();
        t.descend();
        assert_eq!(t.reads, 2);
        assert_eq!(t.bytes_read, 68);
        assert_eq!(t.writes, 1);
        assert_eq!(t.bytes_written, 8);
        assert_eq!(t.compares, 2);
        assert_eq!(t.descends, 1);
        t.reset();
        assert_eq!(t.reads, 0);
        assert_eq!(t.bytes_read, 0);
    }

    #[test]
    fn zero_length_accesses_ignored() {
        let mut t = CountingTracer::new();
        t.read(0x1000, 0);
        t.write(0x1000, 0);
        assert_eq!(t.reads, 0);
        assert_eq!(t.writes, 0);
        let mut r = RecordingTracer::new();
        r.read(0x1000, 0);
        assert!(r.accesses.is_empty());
    }

    #[test]
    fn recording_tracer_preserves_order() {
        let mut t = RecordingTracer::new();
        t.read(0x10, 4);
        t.write(0x20, 8);
        t.read(0x30, 2);
        assert_eq!(
            t.accesses,
            vec![
                (AccessKind::Read, 0x10, 4),
                (AccessKind::Write, 0x20, 8),
                (AccessKind::Read, 0x30, 2),
            ]
        );
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut t = CountingTracer::new();
        {
            let fwd: &mut CountingTracer = &mut t;
            fwd.read(0x0, 4);
            fwd.compare();
        }
        assert_eq!(t.reads, 1);
        assert_eq!(t.compares, 1);
    }
}
