//! Batched lookups and structural self-validation.
//!
//! The OLAP consumers of §2.2 rarely issue one probe at a time: an indexed
//! nested-loop join performs "a lot of searching through indexes on the
//! inner relations". [`FullCssTree::lower_bound_batch_interleaved`]
//! exploits that: it advances `S` independent probes one directory level
//! per round, so the `S` node fetches of a round are all in flight
//! together instead of serialised behind one another — the
//! software-pipelining counterpart of the paper's cache-line sizing (a
//! beyond-paper extension; the paper's own protocol is reproduced by the
//! sequential path, which the batch is tested against).

use crate::full::FullCssTree;
use crate::layout::LeafSegment;
use ccindex_common::{Key, NoopTracer};

impl<K: Key, const M: usize> FullCssTree<K, M> {
    /// Sequential batch: `lower_bound` per probe.
    pub fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
        probes
            .iter()
            .map(|&p| self.lower_bound_with(p, &mut NoopTracer))
            .collect()
    }

    /// Level-synchronous batch with `S` interleaved lanes.
    ///
    /// Produces exactly the same positions as
    /// [`FullCssTree::lower_bound_batch`].
    pub fn lower_bound_batch_interleaved<const S: usize>(&self, probes: &[K]) -> Vec<usize> {
        assert!(S >= 1, "at least one lane");
        let layout = self.layout();
        let mut out = vec![0usize; probes.len()];
        for (chunk_idx, chunk) in probes.chunks(S).enumerate() {
            let base = chunk_idx * S;
            let mut nodes = [0usize; S];
            let mut live = [false; S];
            for (lane, _) in chunk.iter().enumerate() {
                live[lane] = true;
            }
            // Advance every live lane one directory level per round.
            let mut any_internal = layout.internal_nodes > 0;
            while any_internal {
                any_internal = false;
                for lane in 0..chunk.len() {
                    if live[lane] && layout.is_internal(nodes[lane]) {
                        let l = self.branch_of(nodes[lane], chunk[lane]);
                        nodes[lane] = layout.child(nodes[lane], l);
                        if layout.is_internal(nodes[lane]) {
                            any_internal = true;
                        }
                    }
                }
            }
            // Resolve leaves.
            for (lane, &probe) in chunk.iter().enumerate() {
                out[base + lane] = self.resolve_leaf(nodes[lane], probe);
            }
        }
        out
    }

    /// Branch selection for one node (shared with the batch path).
    #[inline]
    pub(crate) fn branch_of(&self, d: usize, probe: K) -> usize {
        let dir = self.directory_slice();
        let base = d * M;
        let node = &dir[base..base + M];
        let mut lo = 0usize;
        let mut hi = M;
        while lo < hi {
            let mid = (lo + hi) >> 1;
            if node[mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Leaf binary search for one resolved virtual leaf node.
    #[inline]
    pub(crate) fn resolve_leaf(&self, leaf: usize, probe: K) -> usize {
        let n = self.array().len();
        if n == 0 {
            return 0;
        }
        let (start, end) = match self.layout().leaf_segment(leaf) {
            LeafSegment::Range { start, end } => (start, end),
            LeafSegment::BeyondEnd => return n,
        };
        let a = self.array().as_slice();
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + ((hi - lo) >> 1);
            if a[mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Structural self-check: every internal entry must be non-decreasing
    /// within its node and equal the largest key of its child subtree
    /// (Algorithm 4.1's invariant, recomputed independently), and every
    /// leaf segment must map inside the array. Returns a description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let layout = self.layout();
        let dir = self.directory_slice();
        let keys = self.array().as_slice();
        if layout.internal_nodes == 0 {
            return Ok(());
        }
        let l1 = layout.first_part_len;
        if l1 == 0 {
            return Err("directory present but first part empty".into());
        }
        for d in 0..layout.internal_nodes {
            let node = &dir[d * M..d * M + M];
            if !node.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("node {d}: entries not sorted"));
            }
            for (e, &stored) in node.iter().enumerate() {
                // Recompute the subtree max by rightmost descent.
                let mut c = layout.child(d, e);
                while layout.is_internal(c) {
                    c = layout.child(c, M);
                }
                let expect = match layout.leaf_segment(c) {
                    LeafSegment::Range { end, .. } => keys[end - 1],
                    LeafSegment::BeyondEnd => keys[l1 - 1],
                };
                if stored != expect {
                    return Err(format!(
                        "node {d} entry {e}: stored {stored:?}, expected {expect:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: u32) -> FullCssTree<u32, 8> {
        let keys: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect();
        FullCssTree::build(&keys)
    }

    #[test]
    fn interleaved_agrees_with_sequential() {
        let t = tree(10_000);
        let probes: Vec<u32> = (0..4_000u32).map(|i| i * 7 % 31_000).collect();
        let seq = t.lower_bound_batch(&probes);
        assert_eq!(t.lower_bound_batch_interleaved::<4>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<8>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<16>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<1>(&probes), seq);
    }

    #[test]
    fn interleaved_handles_ragged_tail_and_empty() {
        let t = tree(1_000);
        let probes: Vec<u32> = (0..13u32).collect(); // not a multiple of S
        assert_eq!(
            t.lower_bound_batch_interleaved::<8>(&probes),
            t.lower_bound_batch(&probes)
        );
        assert!(t.lower_bound_batch_interleaved::<8>(&[]).is_empty());
        let empty = FullCssTree::<u32, 8>::build(&[]);
        assert_eq!(empty.lower_bound_batch_interleaved::<4>(&[5]), vec![0]);
    }

    #[test]
    fn validate_accepts_correct_trees() {
        for n in [0u32, 1, 7, 64, 65, 260, 1000, 4097] {
            let keys: Vec<u32> = (0..n).map(|i| i * 2).collect();
            let t = FullCssTree::<u32, 4>::build(&keys);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        tree(100_000).validate().expect("large tree valid");
    }

    #[test]
    fn validate_catches_corruption() {
        let t = tree(10_000);
        // Corrupt one directory entry through a cloned, mutated copy.
        let mut corrupt = t.clone();
        corrupt.corrupt_entry_for_test(3);
        let err = corrupt.validate().expect_err("must detect corruption");
        assert!(err.contains("node 0"), "{err}");
    }
}
