//! Batched lookups and structural self-validation.
//!
//! The OLAP consumers of §2.2 rarely issue one probe at a time: an indexed
//! nested-loop join performs "a lot of searching through indexes on the
//! inner relations". The batch entry points here exploit that:
//! the crate-internal `interleaved_descent` advances up to `lanes`
//! independent probes one
//! directory level per round, so the node fetches of a round are all in
//! flight together instead of serialised behind one another — the
//! software-pipelining counterpart of the paper's cache-line sizing (a
//! beyond-paper extension; the paper's own protocol is reproduced by the
//! sequential path, which the batch is tested against).
//!
//! One descent helper serves every variant — full, level and generic
//! trees differ only in how they pick a branch within a node, so that
//! choice is a closure and the lane bookkeeping lives in exactly one
//! place.

use crate::full::FullCssTree;
use crate::layout::{CssLayout, LeafSegment};
use crate::level::LevelCssTree;
use ccindex_common::{AccessTracer, Key, NoopTracer, SortedArray};

/// Level-synchronous interleaved descent over a CSS directory.
///
/// Probes are processed in chunks of `lanes`; within a chunk every live
/// lane advances one directory level per round (`branch` picks the child
/// slot for one `(node, probe)` pair), then each lane's virtual leaf is
/// handed to `resolve`. The tracer is threaded through both closures so
/// the cache simulator can replay the *batched* access pattern, which is
/// exactly what distinguishes this path from a sequential descent.
///
/// Degenerate lane counts are legal configuration, not errors: `lanes ==
/// 0` falls back to the sequential descent (one lane), and `lanes >
/// probes.len()` is clamped to the probe count so no lane bookkeeping is
/// allocated or scanned for lanes that could never carry a probe.
pub(crate) fn interleaved_descent<K, T, B, R>(
    layout: &CssLayout,
    probes: &[K],
    lanes: usize,
    tracer: &mut T,
    mut branch: B,
    mut resolve: R,
) -> Vec<usize>
where
    K: Key,
    T: AccessTracer,
    B: FnMut(usize, K, &mut T) -> usize,
    R: FnMut(usize, K, &mut T) -> usize,
{
    let lanes = lanes.clamp(1, probes.len().max(1));
    let mut out = vec![0usize; probes.len()];
    let mut nodes = vec![0usize; lanes];
    for (chunk_idx, chunk) in probes.chunks(lanes).enumerate() {
        let base = chunk_idx * lanes;
        for node in nodes[..chunk.len()].iter_mut() {
            *node = 0;
        }
        // Advance every lane still inside the directory one level per
        // round; lanes whose subtrees are shallower simply sit at their
        // leaf until the round loop drains.
        let mut any_internal = layout.internal_nodes > 0;
        while any_internal {
            any_internal = false;
            for (lane, &probe) in chunk.iter().enumerate() {
                let d = nodes[lane];
                if layout.is_internal(d) {
                    let next = layout.child(d, branch(d, probe, tracer));
                    tracer.descend();
                    nodes[lane] = next;
                    any_internal |= layout.is_internal(next);
                }
            }
        }
        for (lane, &probe) in chunk.iter().enumerate() {
            out[base + lane] = resolve(nodes[lane], probe, tracer);
        }
    }
    out
}

/// Binary search of one resolved virtual leaf's array segment — the final
/// step shared by the sequential and batched paths of every CSS variant.
pub(crate) fn resolve_leaf<K: Key, T: AccessTracer>(
    layout: &CssLayout,
    array: &SortedArray<K>,
    leaf: usize,
    probe: K,
    tracer: &mut T,
) -> usize {
    let n = array.len();
    if n == 0 {
        return 0;
    }
    let (start, end) = match layout.leaf_segment(leaf) {
        LeafSegment::Range { start, end } => (start, end),
        LeafSegment::BeyondEnd => return n, // probe exceeds every key
    };
    let a = array.as_slice();
    let mut lo = start;
    let mut hi = end;
    while lo < hi {
        let mid = lo + ((hi - lo) >> 1);
        tracer.compare();
        tracer.read(array.addr_of(mid), K::WIDTH);
        if a[mid] < probe {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Equality check turning batched lower bounds into batched point
/// lookups, tracing the leaf reads exactly like the sequential
/// `search_with`.
pub(crate) fn confirm_matches<K: Key, T: AccessTracer>(
    array: &SortedArray<K>,
    probes: &[K],
    lower_bounds: Vec<usize>,
    tracer: &mut T,
) -> Vec<Option<usize>> {
    let n = array.len();
    lower_bounds
        .into_iter()
        .zip(probes)
        .map(|(pos, &probe)| {
            if pos < n {
                tracer.compare();
                if array.get_traced(pos, tracer) == probe {
                    return Some(pos);
                }
            }
            None
        })
        .collect()
}

/// The identical batch surface for both specialised tree variants; the
/// variants differ only in the `node_branch` the descent closure calls.
macro_rules! impl_css_batch {
    ($tree:ident) => {
        impl<K: Key, const M: usize> $tree<K, M> {
            /// Sequential batch: one full `lower_bound` descent per probe,
            /// in order. This is the paper-faithful reference the
            /// interleaved path is tested against.
            pub fn lower_bound_batch_sequential(&self, probes: &[K]) -> Vec<usize> {
                probes
                    .iter()
                    .map(|&p| self.lower_bound_with(p, &mut NoopTracer))
                    .collect()
            }

            /// Level-synchronous batch with a compile-time lane count.
            ///
            /// Produces exactly the same positions as
            /// [`Self::lower_bound_batch_sequential`].
            pub fn lower_bound_batch_interleaved<const S: usize>(
                &self,
                probes: &[K],
            ) -> Vec<usize> {
                self.lower_bound_batch_lanes(probes, S)
            }

            /// Level-synchronous batch with a runtime lane count.
            pub fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
                self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
            }

            /// As [`Self::lower_bound_batch_lanes`], reporting the batched
            /// access pattern to `tracer`.
            pub fn lower_bound_batch_lanes_with<T: AccessTracer>(
                &self,
                probes: &[K],
                lanes: usize,
                tracer: &mut T,
            ) -> Vec<usize> {
                interleaved_descent(
                    self.layout(),
                    probes,
                    lanes,
                    tracer,
                    |d, p, tr| self.node_branch(d, p, tr),
                    |leaf, p, tr| resolve_leaf(self.layout(), self.array(), leaf, p, tr),
                )
            }

            /// Batched point lookup: interleaved lower bounds plus the
            /// per-probe equality check.
            pub fn search_batch_lanes_with<T: AccessTracer>(
                &self,
                probes: &[K],
                lanes: usize,
                tracer: &mut T,
            ) -> Vec<Option<usize>> {
                let lbs = self.lower_bound_batch_lanes_with(probes, lanes, tracer);
                confirm_matches(self.array(), probes, lbs, tracer)
            }

            /// Partitioned batched lower bounds: `probes` is split into
            /// one contiguous chunk per worker and every chunk runs the
            /// interleaved descent at `lanes` concurrently
            /// ([`ccindex_parallel::WorkerPool`]; `threads == 0` means
            /// one worker per core, `threads == 1` is the inline
            /// sequential fallback). Chunk results are concatenated in
            /// probe order, so the output is byte-identical to
            /// [`Self::lower_bound_batch_lanes`].
            pub fn lower_bound_batch_par(
                &self,
                probes: &[K],
                lanes: usize,
                threads: usize,
            ) -> Vec<usize> {
                ccindex_parallel::WorkerPool::new(threads)
                    .flat_map_chunks(probes, |chunk| self.lower_bound_batch_lanes(chunk, lanes))
            }

            /// Partitioned batched point lookups — the
            /// [`Self::lower_bound_batch_par`] strategy applied to
            /// [`Self::search_batch_lanes_with`]'s descent + equality
            /// check.
            pub fn search_batch_par(
                &self,
                probes: &[K],
                lanes: usize,
                threads: usize,
            ) -> Vec<Option<usize>> {
                ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(probes, |chunk| {
                    self.search_batch_lanes_with(chunk, lanes, &mut NoopTracer)
                })
            }
        }
    };
}

impl_css_batch!(FullCssTree);
impl_css_batch!(LevelCssTree);

impl<K: Key, const M: usize> FullCssTree<K, M> {
    /// Structural self-check: every internal entry must be non-decreasing
    /// within its node and equal the largest key of its child subtree
    /// (Algorithm 4.1's invariant, recomputed independently), and every
    /// leaf segment must map inside the array. Returns a description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let layout = self.layout();
        let dir = self.directory_slice();
        let keys = self.array().as_slice();
        if layout.internal_nodes == 0 {
            return Ok(());
        }
        let l1 = layout.first_part_len;
        if l1 == 0 {
            return Err("directory present but first part empty".into());
        }
        for d in 0..layout.internal_nodes {
            let node = &dir[d * M..d * M + M];
            if !node.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("node {d}: entries not sorted"));
            }
            for (e, &stored) in node.iter().enumerate() {
                // Recompute the subtree max by rightmost descent.
                let mut c = layout.child(d, e);
                while layout.is_internal(c) {
                    c = layout.child(c, M);
                }
                let expect = match layout.leaf_segment(c) {
                    LeafSegment::Range { end, .. } => keys[end - 1],
                    LeafSegment::BeyondEnd => keys[l1 - 1],
                };
                if stored != expect {
                    return Err(format!(
                        "node {d} entry {e}: stored {stored:?}, expected {expect:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::{CountingTracer, OrderedIndex, SearchIndex};

    fn tree(n: u32) -> FullCssTree<u32, 8> {
        let keys: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect();
        FullCssTree::build(&keys)
    }

    #[test]
    fn interleaved_agrees_with_sequential() {
        let t = tree(10_000);
        let probes: Vec<u32> = (0..4_000u32).map(|i| i * 7 % 31_000).collect();
        let seq = t.lower_bound_batch_sequential(&probes);
        assert_eq!(t.lower_bound_batch_interleaved::<4>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<8>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<16>(&probes), seq);
        assert_eq!(t.lower_bound_batch_interleaved::<1>(&probes), seq);
        for lanes in [1usize, 2, 3, 5, 13, 64, 5_000] {
            assert_eq!(
                t.lower_bound_batch_lanes(&probes, lanes),
                seq,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn level_tree_batches_agree_with_sequential() {
        let keys: Vec<u32> = (0..9_000u32).map(|i| i * 2).collect();
        let t = LevelCssTree::<u32, 16>::build(&keys);
        let probes: Vec<u32> = (0..3_000u32).map(|i| i * 11 % 19_000).collect();
        let seq = t.lower_bound_batch_sequential(&probes);
        assert_eq!(t.lower_bound_batch_interleaved::<8>(&probes), seq);
        for lanes in [1usize, 2, 7, 32] {
            assert_eq!(
                t.lower_bound_batch_lanes(&probes, lanes),
                seq,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn interleaved_handles_ragged_tail_and_empty() {
        let t = tree(1_000);
        let probes: Vec<u32> = (0..13u32).collect(); // not a multiple of S
        assert_eq!(
            t.lower_bound_batch_interleaved::<8>(&probes),
            t.lower_bound_batch_sequential(&probes)
        );
        assert!(t.lower_bound_batch_interleaved::<8>(&[]).is_empty());
        let empty = FullCssTree::<u32, 8>::build(&[]);
        assert_eq!(empty.lower_bound_batch_interleaved::<4>(&[5]), vec![0]);
        assert_eq!(empty.search_batch(&[5]), vec![None]);
    }

    #[test]
    fn degenerate_lane_counts_fall_back_to_sequential() {
        let t = tree(2_000);
        let probes: Vec<u32> = (0..37u32).map(|i| i * 101 % 6_100).collect();
        let seq = t.lower_bound_batch_sequential(&probes);
        // lanes == 0 and lanes far beyond the probe count are valid
        // configurations, answered exactly like the sequential descent.
        assert_eq!(t.lower_bound_batch_lanes(&probes, 0), seq);
        assert_eq!(t.lower_bound_batch_lanes(&probes, probes.len() + 500), seq);
        let mut tr = CountingTracer::new();
        assert_eq!(t.search_batch_lanes_with(&probes, 0, &mut tr).len(), 37);
        assert!(t.lower_bound_batch_lanes(&[], 0).is_empty());
        let empty = FullCssTree::<u32, 8>::build(&[]);
        assert_eq!(empty.lower_bound_batch_lanes(&[5], 0), vec![0]);
    }

    #[test]
    fn parallel_batches_are_byte_identical_to_sequential() {
        let t = tree(20_000);
        let probes: Vec<u32> = (0..4_003u32).map(|i| i * 17 % 61_000).collect();
        let seq_lb = t.lower_bound_batch_sequential(&probes);
        let seq_pt: Vec<Option<usize>> = probes.iter().map(|&p| t.search(p)).collect();
        for threads in [0usize, 1, 2, 8] {
            assert_eq!(
                t.lower_bound_batch_par(&probes, 8, threads),
                seq_lb,
                "threads={threads}"
            );
            assert_eq!(
                t.search_batch_par(&probes, 8, threads),
                seq_pt,
                "threads={threads}"
            );
        }
        // Degenerate inputs through the parallel path.
        assert!(t.lower_bound_batch_par(&[], 8, 8).is_empty());
        assert_eq!(t.search_batch_par(&probes[..1], 0, 8), seq_pt[..1]);
    }

    #[test]
    fn trait_batch_overrides_route_through_interleaved_descent() {
        let t = tree(50_000);
        let probes: Vec<u32> = (0..2_000u32).map(|i| i * 13 % 151_000).collect();
        // Trait-object calls must agree with the sequential defaults.
        let idx: &dyn OrderedIndex<u32> = &t;
        assert_eq!(
            idx.lower_bound_batch(&probes),
            t.lower_bound_batch_sequential(&probes)
        );
        let expect: Vec<Option<usize>> = probes.iter().map(|&p| t.search(p)).collect();
        assert_eq!(idx.search_batch(&probes), expect);
    }

    #[test]
    fn traced_batch_reports_directory_reads() {
        let t = tree(100_000);
        let probes: Vec<u32> = (0..256u32).map(|i| i * 997).collect();
        let mut seq_tr = CountingTracer::new();
        for &p in &probes {
            t.lower_bound_with(p, &mut seq_tr);
        }
        let mut batch_tr = CountingTracer::new();
        let got = t.lower_bound_batch_lanes_with(&probes, 8, &mut batch_tr);
        assert_eq!(got, t.lower_bound_batch_sequential(&probes));
        // Interleaving reorders accesses but performs the same work.
        assert_eq!(batch_tr.reads, seq_tr.reads);
        assert_eq!(batch_tr.bytes_read, seq_tr.bytes_read);
        assert_eq!(batch_tr.compares, seq_tr.compares);
        assert_eq!(batch_tr.descends, seq_tr.descends);
    }

    #[test]
    fn validate_accepts_correct_trees() {
        for n in [0u32, 1, 7, 64, 65, 260, 1000, 4097] {
            let keys: Vec<u32> = (0..n).map(|i| i * 2).collect();
            let t = FullCssTree::<u32, 4>::build(&keys);
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
        tree(100_000).validate().expect("large tree valid");
    }

    #[test]
    fn validate_catches_corruption() {
        let t = tree(10_000);
        // Corrupt one directory entry through a cloned, mutated copy.
        let mut corrupt = t.clone();
        corrupt.corrupt_entry_for_test(3);
        let err = corrupt.validate().expect_err("must detect corruption");
        assert!(err.contains("node 0"), "{err}");
    }
}
