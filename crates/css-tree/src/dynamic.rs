//! Runtime-dispatched CSS-trees over the standard node sizes.
//!
//! The benchmark harness sweeps node sizes (Figs. 12–13); [`DynCssTree`]
//! wraps one monomorphised tree per standard size behind an enum so the
//! sweep stays a runtime loop while each instantiation keeps its
//! specialised search (§6.2).

use crate::full::FullCssTree;
use crate::generic_search::GenericFullCss;
use crate::layout::CssLayout;
use crate::level::LevelCssTree;
use ccindex_common::{
    AccessTracer, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray, SpaceReport,
};

/// Which CSS-tree variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CssVariant {
    /// Full CSS-tree (§4.1): `m` keys per node, branching `m + 1`.
    Full,
    /// Level CSS-tree (§4.2): `m − 1` keys per node, branching `m`.
    Level,
}

/// Node sizes (keys per node) with pre-monomorphised implementations.
/// 8 and 16 are the paper's cache-line sizes (32 B / 64 B with 4-byte
/// keys); the rest cover the Fig. 12–13 sweeps.
pub const STANDARD_NODE_SIZES: &[usize] = &[2, 4, 8, 16, 32, 64, 128];

macro_rules! dyn_css {
    ($( $variant_full:ident / $variant_level:ident => $m:literal ),+ $(,)?) => {
        /// A CSS-tree whose node size and variant were chosen at runtime
        /// from [`STANDARD_NODE_SIZES`].
        #[derive(Debug, Clone)]
        pub enum DynCssTree<K: Key> {
            $(
                #[doc = concat!("Full CSS-tree, m = ", stringify!($m), ".")]
                $variant_full(FullCssTree<K, $m>),
                #[doc = concat!("Level CSS-tree, m = ", stringify!($m), ".")]
                $variant_level(LevelCssTree<K, $m>),
            )+
            /// Fallback for non-standard node sizes: the unspecialised
            /// implementation (also the §6.2 ablation target).
            Generic(GenericFullCss<K>),
        }

        impl<K: Key> DynCssTree<K> {
            /// Build a CSS-tree of the given variant and node size over a
            /// shared sorted array. Standard sizes get specialised code;
            /// any other size falls back to [`GenericFullCss`] (full
            /// variant only — level trees require power-of-two sizes,
            /// which are all standard).
            pub fn build(variant: CssVariant, m: usize, array: SortedArray<K>) -> Self {
                match (variant, m) {
                    $(
                        (CssVariant::Full, $m) => Self::$variant_full(FullCssTree::from_shared(array)),
                        (CssVariant::Level, $m) => Self::$variant_level(LevelCssTree::from_shared(array)),
                    )+
                    (CssVariant::Full, other) => Self::Generic(GenericFullCss::from_shared(array, other)),
                    (CssVariant::Level, other) => {
                        panic!("level CSS-trees require a power-of-two node size, got {other}")
                    }
                }
            }

            /// The tree's layout.
            pub fn layout(&self) -> &CssLayout {
                match self {
                    $(
                        Self::$variant_full(t) => t.layout(),
                        Self::$variant_level(t) => t.layout(),
                    )+
                    Self::Generic(t) => t.layout(),
                }
            }

            /// Leftmost matching position, generically traced.
            pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
                match self {
                    $(
                        Self::$variant_full(t) => t.search_with(key, tracer),
                        Self::$variant_level(t) => t.search_with(key, tracer),
                    )+
                    Self::Generic(t) => t.search_with(key, tracer),
                }
            }

            /// Leftmost position with key `>= key`, generically traced.
            pub fn lower_bound_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> usize {
                match self {
                    $(
                        Self::$variant_full(t) => t.lower_bound_with(key, tracer),
                        Self::$variant_level(t) => t.lower_bound_with(key, tracer),
                    )+
                    Self::Generic(t) => t.lower_bound_with(key, tracer),
                }
            }

            /// Batched lower bounds with a runtime-tunable lane count —
            /// the interleaved descent of [`crate::batch`] with `lanes`
            /// probes in flight per round, on whichever monomorphised
            /// tree this enum wraps.
            pub fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
                self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
            }

            /// As [`DynCssTree::lower_bound_batch_lanes`], with access
            /// tracing for cache-simulator replay.
            pub fn lower_bound_batch_lanes_with<T: AccessTracer>(
                &self,
                probes: &[K],
                lanes: usize,
                tracer: &mut T,
            ) -> Vec<usize> {
                match self {
                    $(
                        Self::$variant_full(t) => t.lower_bound_batch_lanes_with(probes, lanes, tracer),
                        Self::$variant_level(t) => t.lower_bound_batch_lanes_with(probes, lanes, tracer),
                    )+
                    Self::Generic(t) => t.lower_bound_batch_lanes_with(probes, lanes, tracer),
                }
            }

            /// Batched point lookups with a runtime-tunable lane count.
            pub fn search_batch_lanes_with<T: AccessTracer>(
                &self,
                probes: &[K],
                lanes: usize,
                tracer: &mut T,
            ) -> Vec<Option<usize>> {
                match self {
                    $(
                        Self::$variant_full(t) => t.search_batch_lanes_with(probes, lanes, tracer),
                        Self::$variant_level(t) => t.search_batch_lanes_with(probes, lanes, tracer),
                    )+
                    Self::Generic(t) => t.search_batch_lanes_with(probes, lanes, tracer),
                }
            }

            /// Partitioned batched lower bounds on whichever
            /// monomorphised tree this enum wraps: probes chunked across
            /// `threads` workers (`0` = one per core), each chunk running
            /// the interleaved descent at `lanes`; byte-identical to
            /// [`DynCssTree::lower_bound_batch_lanes`].
            pub fn lower_bound_batch_par(
                &self,
                probes: &[K],
                lanes: usize,
                threads: usize,
            ) -> Vec<usize> {
                match self {
                    $(
                        Self::$variant_full(t) => t.lower_bound_batch_par(probes, lanes, threads),
                        Self::$variant_level(t) => t.lower_bound_batch_par(probes, lanes, threads),
                    )+
                    Self::Generic(t) => t.lower_bound_batch_par(probes, lanes, threads),
                }
            }

            /// Partitioned batched point lookups; see
            /// [`DynCssTree::lower_bound_batch_par`].
            pub fn search_batch_par(
                &self,
                probes: &[K],
                lanes: usize,
                threads: usize,
            ) -> Vec<Option<usize>> {
                match self {
                    $(
                        Self::$variant_full(t) => t.search_batch_par(probes, lanes, threads),
                        Self::$variant_level(t) => t.search_batch_par(probes, lanes, threads),
                    )+
                    Self::Generic(t) => t.search_batch_par(probes, lanes, threads),
                }
            }
        }

        impl<K: Key> SearchIndex<K> for DynCssTree<K> {
            fn name(&self) -> &'static str {
                match self {
                    $(
                        Self::$variant_full(t) => t.name(),
                        Self::$variant_level(t) => t.name(),
                    )+
                    Self::Generic(t) => t.name(),
                }
            }
            fn len(&self) -> usize {
                match self {
                    $(
                        Self::$variant_full(t) => SearchIndex::len(t),
                        Self::$variant_level(t) => SearchIndex::len(t),
                    )+
                    Self::Generic(t) => SearchIndex::len(t),
                }
            }
            fn search(&self, key: K) -> Option<usize> {
                self.search_with(key, &mut NoopTracer)
            }
            fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
                self.search_with(key, &mut { tracer })
            }
            fn search_batch(&self, probes: &[K]) -> Vec<Option<usize>> {
                self.search_batch_lanes_with(probes, ccindex_common::DEFAULT_BATCH_LANES, &mut NoopTracer)
            }
            fn search_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<Option<usize>> {
                self.search_batch_lanes_with(probes, lanes, &mut NoopTracer)
            }
            fn search_batch_traced(
                &self,
                probes: &[K],
                tracer: &mut dyn AccessTracer,
            ) -> Vec<Option<usize>> {
                self.search_batch_lanes_with(probes, ccindex_common::DEFAULT_BATCH_LANES, &mut { tracer })
            }
            fn space(&self) -> SpaceReport {
                match self {
                    $(
                        Self::$variant_full(t) => t.space(),
                        Self::$variant_level(t) => t.space(),
                    )+
                    Self::Generic(t) => t.space(),
                }
            }
            fn stats(&self) -> IndexStats {
                match self {
                    $(
                        Self::$variant_full(t) => t.stats(),
                        Self::$variant_level(t) => t.stats(),
                    )+
                    Self::Generic(t) => t.stats(),
                }
            }
        }

        impl<K: Key> OrderedIndex<K> for DynCssTree<K> {
            fn lower_bound(&self, key: K) -> usize {
                self.lower_bound_with(key, &mut NoopTracer)
            }
            fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
                self.lower_bound_with(key, &mut { tracer })
            }
            fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
                self.lower_bound_batch_lanes(probes, ccindex_common::DEFAULT_BATCH_LANES)
            }
            fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
                self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
            }
            fn lower_bound_batch_traced(
                &self,
                probes: &[K],
                tracer: &mut dyn AccessTracer,
            ) -> Vec<usize> {
                self.lower_bound_batch_lanes_with(probes, ccindex_common::DEFAULT_BATCH_LANES, &mut { tracer })
            }
        }
    };
}

dyn_css! {
    Full2 / Level2 => 2,
    Full4 / Level4 => 4,
    Full8 / Level8 => 8,
    Full16 / Level16 => 16,
    Full32 / Level32 => 32,
    Full64 / Level64 => 64,
    Full128 / Level128 => 128,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<u32> {
        (0..n).map(|i| i * 3 + 1).collect()
    }

    #[test]
    fn all_standard_sizes_agree_with_reference() {
        let ks = keys(5000);
        let arr = SortedArray::from_slice(&ks);
        for &m in STANDARD_NODE_SIZES {
            for variant in [CssVariant::Full, CssVariant::Level] {
                let t = DynCssTree::build(variant, m, arr.clone());
                for probe in (0..15_100u32).step_by(13) {
                    assert_eq!(
                        t.lower_bound(probe),
                        ks.partition_point(|&k| k < probe),
                        "m={m} {variant:?} probe={probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn nonstandard_size_falls_back_to_generic() {
        let ks = keys(1000);
        let arr = SortedArray::from_slice(&ks);
        let t = DynCssTree::build(CssVariant::Full, 24, arr);
        assert!(matches!(t, DynCssTree::Generic(_)));
        assert_eq!(t.layout().m, 24);
        for probe in (0..3_100u32).step_by(7) {
            assert_eq!(t.lower_bound(probe), ks.partition_point(|&k| k < probe));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn nonstandard_level_size_panics() {
        let arr = SortedArray::from_slice(&keys(100));
        let _ = DynCssTree::build(CssVariant::Level, 24, arr);
    }

    #[test]
    fn shares_rather_than_copies_the_array() {
        let arr = SortedArray::from_slice(&keys(1000));
        let _a = DynCssTree::build(CssVariant::Full, 16, arr.clone());
        let _b = DynCssTree::build(CssVariant::Level, 16, arr.clone());
        assert_eq!(arr.holders(), 3);
    }

    #[test]
    fn runtime_lanes_agree_with_per_probe_lookups() {
        let ks = keys(3000);
        let arr = SortedArray::from_slice(&ks);
        let probes: Vec<u32> = (0..500u32).map(|i| i * 19 % 9_100).collect();
        let expected: Vec<usize> = probes
            .iter()
            .map(|&p| ks.partition_point(|&k| k < p))
            .collect();
        for (variant, m) in [
            (CssVariant::Full, 16usize),
            (CssVariant::Level, 8),
            (CssVariant::Full, 24), // generic fallback
        ] {
            let t = DynCssTree::build(variant, m, arr.clone());
            // Lane count 0 is the documented sequential fallback, not a
            // panic; oversized lane counts clamp to the probe count.
            for lanes in [0usize, 1, 4, 8, 33, 10_000] {
                assert_eq!(
                    t.lower_bound_batch_lanes(&probes, lanes),
                    expected,
                    "{variant:?} m={m} lanes={lanes}"
                );
            }
            for threads in [0usize, 1, 2, 8] {
                assert_eq!(
                    t.lower_bound_batch_par(&probes, 8, threads),
                    expected,
                    "{variant:?} m={m} threads={threads}"
                );
                let point: Vec<Option<usize>> = probes.iter().map(|&p| t.search(p)).collect();
                assert_eq!(
                    t.search_batch_par(&probes, 8, threads),
                    point,
                    "{variant:?} m={m} threads={threads}"
                );
            }
            // The trait-level batch entry points route through the
            // interleaved descent and must agree too.
            assert_eq!(t.lower_bound_batch(&probes), expected, "{variant:?} m={m}");
            let point: Vec<Option<usize>> = probes.iter().map(|&p| t.search(p)).collect();
            assert_eq!(t.search_batch(&probes), point, "{variant:?} m={m}");
        }
    }

    #[test]
    fn names_distinguish_variants() {
        let arr = SortedArray::from_slice(&keys(100));
        let f = DynCssTree::build(CssVariant::Full, 16, arr.clone());
        let l = DynCssTree::build(CssVariant::Level, 16, arr);
        assert_eq!(f.name(), "full CSS-tree");
        assert_eq!(l.name(), "level CSS-tree");
    }
}
