//! Full CSS-trees (§4.1): build (Algorithm 4.1) and search
//! (Algorithm 4.2).
//!
//! Directory nodes hold exactly `M` keys and have `M + 1` children located
//! by offset arithmetic — no pointers. Internal key `e` of node `d` is the
//! **largest key in the subtree of child `e`**, so routing "find the
//! leftmost slot ≥ probe, else the rightmost branch" lands on the leftmost
//! occurrence of any duplicated key (§4.1.2), and internal slots whose
//! subtrees dangle past the data are padded with the first part's last
//! element, which keeps every reachable descent inside the array.

use crate::batch;
use crate::layout::{CssLayout, LeafSegment};
use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray,
    SpaceReport, DEFAULT_BATCH_LANES,
};

/// A full CSS-tree with `M` keys per directory node (`M + 1`-way).
///
/// `M` is a const generic so every node size gets its own fully
/// specialised intra-node search (§6.2's 20–45 % specialisation win).
/// Choose `M` so a node fills a cache line: `M = 16` for 64-byte lines
/// with 4-byte keys, `M = 8` for 32-byte lines.
#[derive(Debug, Clone)]
pub struct FullCssTree<K: Key, const M: usize> {
    array: SortedArray<K>,
    /// Directory: `internal_nodes · M` key slots, cache-line aligned.
    directory: AlignedBuf<K>,
    layout: CssLayout,
}

impl<K: Key, const M: usize> FullCssTree<K, M> {
    /// Build over a sorted slice (Algorithm 4.1).
    pub fn build(keys: &[K]) -> Self {
        Self::from_shared(SortedArray::from_slice(keys))
    }

    /// Build over an existing shared array without copying it.
    pub fn from_shared(array: SortedArray<K>) -> Self {
        assert!(M >= 1, "node size must be >= 1");
        let layout = CssLayout::full(array.len(), M);
        let mut directory: AlignedBuf<K> = AlignedBuf::new_zeroed(layout.directory_slots());
        Self::fill_directory(array.as_slice(), &layout, &mut directory);
        Self {
            array,
            directory,
            layout,
        }
    }

    /// Algorithm 4.1: fill every internal entry with the largest key of
    /// its immediate left subtree, walking entries from the last internal
    /// node's last entry down to entry 0.
    fn fill_directory(keys: &[K], layout: &CssLayout, directory: &mut AlignedBuf<K>) {
        let t = layout.internal_nodes;
        if t == 0 {
            return;
        }
        let l1 = layout.first_part_len;
        debug_assert!(l1 > 0, "a directory implies a non-empty first part");
        let pad = keys[l1 - 1]; // "the last element in the first part"
        for i in (0..t * M).rev() {
            let d = i / M;
            let e = i % M;
            // Immediate left child of entry e, then the rightmost branch
            // down to a (virtual) leaf.
            let mut c = layout.child(d, e);
            while layout.is_internal(c) {
                c = layout.child(c, M); // the (m+1)-th child
            }
            directory[i] = match layout.leaf_segment(c) {
                // Largest key of the subtree; for the partial last leaf
                // `end` is already clamped to the first part's end, so
                // `keys[end - 1]` *is* "the last element in the first
                // part" the paper pads with.
                LeafSegment::Range { end, .. } => keys[end - 1],
                LeafSegment::BeyondEnd => pad,
            };
        }
    }

    /// Reassemble a tree from its shared array plus pre-built
    /// directory slots (a serialized tree's level pages, concatenated
    /// root level first) without re-running Algorithm 4.1. The slot
    /// count must match the geometry recomputed from `(n, M)`; a
    /// mismatch is an `Err` (never a panic) so a damaged file
    /// surfaces as a typed storage error upstream.
    pub fn from_shared_with_directory(array: SortedArray<K>, slots: &[K]) -> Result<Self, String> {
        let layout = CssLayout::full(array.len(), M);
        if slots.len() != layout.directory_slots() {
            return Err(format!(
                "full CSS directory has {} slots, geometry for n={} m={M} needs {}",
                slots.len(),
                array.len(),
                layout.directory_slots()
            ));
        }
        Ok(Self {
            array,
            directory: AlignedBuf::from_slice(slots),
            layout,
        })
    }

    /// The directory geometry.
    pub fn layout(&self) -> &CssLayout {
        &self.layout
    }

    /// One directory level's key slots (level 0 = the root) — the
    /// page a level-addressable serialization writes per level.
    pub fn directory_level(&self, level: u32) -> &[K] {
        &self.directory.as_slice()[self.layout.level_slots(level)]
    }

    /// The whole directory, root level first; the per-level pages of
    /// [`directory_level`](Self::directory_level) concatenate to
    /// exactly this slice.
    pub fn directory(&self) -> &[K] {
        self.directory.as_slice()
    }

    /// The underlying shared array.
    pub fn array(&self) -> &SortedArray<K> {
        &self.array
    }

    /// Directory key slots (for tests / space accounting).
    pub fn directory_slots(&self) -> usize {
        self.directory.len()
    }

    /// The raw directory entries (used by the batch/validation module).
    pub(crate) fn directory_slice(&self) -> &[K] {
        self.directory.as_slice()
    }

    /// Deliberately corrupt a directory entry (validation tests only).
    #[cfg(test)]
    pub(crate) fn corrupt_entry_for_test(&mut self, i: usize) {
        self.directory.as_mut_slice()[i] = K::MAX_KEY;
    }

    /// Leftmost slot of node `d` with key `>= probe`, else `M`.
    ///
    /// Binary search over a const-size node — monomorphisation unrolls
    /// this into the specialised comparison tree of §6.2. Shared with the
    /// interleaved batch descent in [`crate::batch`].
    #[inline(always)]
    pub(crate) fn node_branch<T: AccessTracer>(&self, d: usize, probe: K, tracer: &mut T) -> usize {
        let base = d * M;
        let node = &self.directory.as_slice()[base..base + M];
        tracer.read(self.directory.base_addr() + base * K::WIDTH, M * K::WIDTH);
        let mut lo = 0usize;
        let mut hi = M;
        while lo < hi {
            let mid = (lo + hi) >> 1;
            tracer.compare();
            if node[mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Algorithm 4.2 descent: the virtual leaf node for `probe`.
    #[inline]
    fn descend<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> usize {
        let mut d = 0usize;
        while self.layout.is_internal(d) {
            let l = self.node_branch(d, probe, tracer);
            d = self.layout.child(d, l);
            tracer.descend();
        }
        d
    }

    /// Leftmost position with key `>= probe`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> usize {
        if self.array.is_empty() {
            return 0;
        }
        let leaf = self.descend(probe, tracer);
        batch::resolve_leaf(&self.layout, &self.array, leaf, probe, tracer)
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(probe, tracer);
        if pos < self.array.len() {
            tracer.compare();
            if self.array.get_traced(pos, tracer) == probe {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key, const M: usize> SearchIndex<K> for FullCssTree<K, M> {
    fn name(&self) -> &'static str {
        "full CSS-tree"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn search_batch(&self, probes: &[K]) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut NoopTracer)
    }
    fn search_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn search_batch_traced(
        &self,
        probes: &[K],
        tracer: &mut dyn AccessTracer,
    ) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        SpaceReport::same(self.directory.size_bytes())
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.layout.levels(),
            internal_nodes: self.layout.internal_nodes,
            branching: M + 1,
            node_bytes: M * K::WIDTH,
        }
    }
}

impl<K: Key, const M: usize> OrderedIndex<K> for FullCssTree<K, M> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
    fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
        self.lower_bound_batch_lanes(probes, DEFAULT_BATCH_LANES)
    }
    fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn lower_bound_batch_traced(&self, probes: &[K], tracer: &mut dyn AccessTracer) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_every_key_paper_example_size() {
        // 260 = the Fig. 3 example (65 leaves of 4).
        let keys: Vec<u32> = (0..260).map(|i| i * 2 + 1).collect();
        let t = FullCssTree::<u32, 4>::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.search(k), Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_are_none() {
        let keys: Vec<u32> = (0..260).map(|i| i * 2 + 1).collect();
        let t = FullCssTree::<u32, 4>::build(&keys);
        assert_eq!(t.search(0), None);
        for i in 0..260 {
            assert_eq!(t.search(i * 2), None, "even probe {}", i * 2);
        }
        assert_eq!(t.search(10_000), None);
    }

    #[test]
    fn lower_bound_exhaustive_small_sizes() {
        // Every n in 0..200 with several node sizes, every probe:
        // catches all padding / mark / partial-leaf boundary cases.
        for n in 0..200usize {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 3 + 2).collect();
            macro_rules! check {
                ($m:literal) => {{
                    let t = FullCssTree::<u32, $m>::build(&keys);
                    for probe in 0..(n as u32 * 3 + 5) {
                        assert_eq!(
                            t.lower_bound(probe),
                            keys.partition_point(|&k| k < probe),
                            "n={n} m={} probe={probe}",
                            $m
                        );
                    }
                }};
            }
            check!(1);
            check!(2);
            check!(3);
            check!(4);
            check!(5);
            check!(8);
            check!(16);
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        // Duplicate runs crossing node and part boundaries.
        let mut keys = Vec::new();
        for block in 0..40u32 {
            for _ in 0..7 {
                keys.push(block * 10);
            }
        }
        let t = FullCssTree::<u32, 4>::build(&keys);
        for block in 0..40u32 {
            assert_eq!(
                t.search(block * 10),
                Some((block * 7) as usize),
                "block {block}"
            );
        }
    }

    #[test]
    fn large_tree_correct_and_shallow() {
        let keys: Vec<u32> = (0..1_000_000u32).map(|i| i * 4).collect();
        let t = FullCssTree::<u32, 16>::build(&keys);
        for probe in (0..1_000_000u32).step_by(37_117) {
            assert_eq!(t.search(probe * 4), Some(probe as usize));
            assert_eq!(t.search(probe * 4 + 1), None);
        }
        // 62500 leaves; 17^4 = 83521 >= 62500 -> depth 4 -> 5 levels.
        assert_eq!(t.layout().levels(), 5);
        let mut tr = CountingTracer::new();
        t.search_with(123_456 * 4, &mut tr);
        assert!(tr.descends <= 4, "descends = {}", tr.descends);
        // Total comparisons stay ~log2 n (§4: "the total number of
        // comparisons is the same" as binary search).
        assert!(
            (18..=28).contains(&(tr.compares as usize)),
            "compares = {}",
            tr.compares
        );
    }

    #[test]
    fn one_cache_line_per_level() {
        // M = 16 u32 keys = 64 B/node: each internal level contributes
        // exactly one 64-byte-wide read.
        let keys: Vec<u32> = (0..100_000).collect();
        let t = FullCssTree::<u32, 16>::build(&keys);
        let mut tr = ccindex_common::RecordingTracer::new();
        t.search_with(54_321, &mut tr);
        let node_reads = tr.accesses.iter().filter(|&&(_, _, len)| len == 64).count() as u32;
        // Bottom-level leaves are `depth` internal reads away, upper-level
        // leaves one fewer.
        let depth = t.layout().depth;
        assert!(
            node_reads == depth || node_reads + 1 == depth,
            "node reads = {node_reads}, depth = {depth}"
        );
    }

    #[test]
    fn space_is_directory_only_and_small() {
        let keys: Vec<u32> = (0..1_000_000).collect();
        let t = FullCssTree::<u32, 16>::build(&keys);
        let s = t.space();
        assert_eq!(s.indirect_bytes, s.direct_bytes);
        // nK/m * (m+1)/m-ish ≈ 0.26 MB for n = 10^6; must be well under
        // half the B+-tree's ~0.57 MB.
        assert!(s.indirect_bytes < 300_000, "space = {}", s.indirect_bytes);
        assert_eq!(s.indirect_bytes, t.directory_slots() * 4);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = FullCssTree::<u32, 16>::build(&[]);
        assert_eq!(t.search(1), None);
        assert_eq!(t.lower_bound(1), 0);
        let t = FullCssTree::<u32, 16>::build(&[5]);
        assert_eq!(t.search(5), Some(0));
        assert_eq!(t.search(4), None);
        assert_eq!(t.search(6), None);
        assert_eq!(t.directory_slots(), 0);
    }

    #[test]
    fn u64_and_signed_keys() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i << 32).collect();
        let t = FullCssTree::<u64, 8>::build(&keys);
        assert_eq!(t.search(5_000u64 << 32), Some(5_000));
        assert_eq!(t.search((5_000u64 << 32) + 1), None);

        let keys: Vec<i32> = (-5_000..5_000).map(|i| i * 2).collect();
        let t = FullCssTree::<i32, 16>::build(&keys);
        assert_eq!(t.search(-4_000), Some(3_000)); // (-4000/2) - (-5000) = 3000
        assert_eq!(t.search(-3_999), None);
        assert_eq!(t.lower_bound(i32::MIN), 0);
        assert_eq!(t.lower_bound(i32::MAX), 10_000);
    }

    #[test]
    fn probe_beyond_max_returns_n() {
        for n in [5usize, 97, 104, 260, 1000] {
            let keys: Vec<u32> = (0..n as u32).collect();
            let t = FullCssTree::<u32, 4>::build(&keys);
            assert_eq!(t.lower_bound(n as u32 + 100), n, "n={n}");
            assert_eq!(t.search(n as u32 + 100), None);
        }
    }

    #[test]
    fn level_pages_reassemble_the_tree() {
        for n in [0usize, 3, 97, 260, 4_097] {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            let built = FullCssTree::<u32, 4>::build(&keys);
            // Serialize level by level, reopen from the concatenated pages.
            let mut slots = Vec::new();
            for level in 0..built.layout().directory_levels() {
                slots.extend_from_slice(built.directory_level(level));
            }
            assert_eq!(&slots[..], built.directory(), "n={n}");
            let reopened =
                FullCssTree::<u32, 4>::from_shared_with_directory(built.array().clone(), &slots)
                    .expect("geometry matches");
            for probe in (0..n as u32 * 3 + 4).step_by(7) {
                assert_eq!(
                    reopened.lower_bound(probe),
                    built.lower_bound(probe),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn wrong_slot_count_is_an_error_not_a_panic() {
        let keys: Vec<u32> = (0..100).collect();
        let built = FullCssTree::<u32, 4>::build(&keys);
        let mut slots = built.directory().to_vec();
        slots.pop();
        let err = FullCssTree::<u32, 4>::from_shared_with_directory(built.array().clone(), &slots)
            .expect_err("short directory must fail");
        assert!(err.contains("slots"), "{err}");
    }
}
