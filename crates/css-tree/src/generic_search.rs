//! The deliberately *unspecialised* full CSS-tree — the §6.2 ablation.
//!
//! "Code specialization is important. When our code was more 'generic'
//! (including a binary search loop for each node), we found the
//! performance to be 20% to 45% worse than the specialized code."
//!
//! [`GenericFullCss`] takes the node size `m` at *runtime*: the intra-node
//! binary search has data-dependent bounds the compiler cannot unroll, and
//! child-offset arithmetic uses real multiplication/division instead of
//! shift-resolvable constants. `bench_ablation` measures it against the
//! const-generic [`crate::FullCssTree`] to reproduce the paper's 20–45 %
//! claim. It also backs [`crate::DynCssTree`] for non-standard node sizes
//! such as the m = 24 bump point of Figs. 12–13.

use crate::batch;
use crate::layout::{CssLayout, LeafSegment};
use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray,
    SpaceReport, DEFAULT_BATCH_LANES,
};

/// A full CSS-tree whose node size is a runtime value.
#[derive(Debug, Clone)]
pub struct GenericFullCss<K: Key> {
    array: SortedArray<K>,
    directory: AlignedBuf<K>,
    layout: CssLayout,
}

impl<K: Key> GenericFullCss<K> {
    /// Build over a sorted slice with `m` keys per node.
    pub fn build(keys: &[K], m: usize) -> Self {
        Self::from_shared(SortedArray::from_slice(keys), m)
    }

    /// Build over an existing shared array without copying it.
    pub fn from_shared(array: SortedArray<K>, m: usize) -> Self {
        assert!(m >= 1, "node size must be >= 1");
        let layout = CssLayout::full(array.len(), m);
        let mut directory: AlignedBuf<K> = AlignedBuf::new_zeroed(layout.directory_slots());
        Self::fill_directory(array.as_slice(), &layout, &mut directory);
        Self {
            array,
            directory,
            layout,
        }
    }

    /// Algorithm 4.1 with runtime `m` (same construction as the
    /// specialised tree; only the search differs for the ablation).
    fn fill_directory(keys: &[K], layout: &CssLayout, directory: &mut AlignedBuf<K>) {
        let t = layout.internal_nodes;
        if t == 0 {
            return;
        }
        let m = layout.m;
        let pad = keys[layout.first_part_len - 1];
        for i in (0..t * m).rev() {
            let d = i / m;
            let e = i % m;
            let mut c = layout.child(d, e);
            while layout.is_internal(c) {
                c = layout.child(c, m);
            }
            directory[i] = match layout.leaf_segment(c) {
                LeafSegment::Range { end, .. } => keys[end - 1],
                LeafSegment::BeyondEnd => pad,
            };
        }
    }

    /// The directory geometry.
    pub fn layout(&self) -> &CssLayout {
        &self.layout
    }

    /// Runtime-`m` intra-node search: the deliberately unspecialised
    /// branch pick (division and data-dependent bounds the compiler cannot
    /// unroll). Shared with the interleaved batch descent in
    /// [`crate::batch`].
    pub(crate) fn node_branch<T: AccessTracer>(&self, d: usize, probe: K, tracer: &mut T) -> usize {
        let m = self.layout.m;
        let base = d * m;
        let dir = self.directory.as_slice();
        tracer.read(self.directory.base_addr() + base * K::WIDTH, m * K::WIDTH);
        // Generic (non-unrolled) intra-node binary search.
        let mut lo = 0usize;
        let mut hi = m;
        while lo < hi {
            let mid = (lo + hi) / 2; // division, not shift: the ablation
            tracer.compare();
            if dir[base + mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Leftmost position with key `>= probe`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> usize {
        let n = self.array.len();
        if n == 0 {
            return 0;
        }
        let m = self.layout.m;
        let mut d = 0usize;
        while self.layout.is_internal(d) {
            let l = self.node_branch(d, probe, tracer);
            d = d * (m + 1) + 1 + l; // multiplication, not shift
            tracer.descend();
        }
        let (start, end) = match self.layout.leaf_segment(d) {
            LeafSegment::Range { start, end } => (start, end),
            LeafSegment::BeyondEnd => return n,
        };
        let a = self.array.as_slice();
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = (lo + hi) / 2;
            tracer.compare();
            tracer.read(self.array.addr_of(mid), K::WIDTH);
            if a[mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Sequential batch: one full descent per probe (reference path).
    pub fn lower_bound_batch_sequential(&self, probes: &[K]) -> Vec<usize> {
        probes
            .iter()
            .map(|&p| self.lower_bound_with(p, &mut NoopTracer))
            .collect()
    }

    /// Level-synchronous batch with a runtime lane count.
    pub fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }

    /// As [`Self::lower_bound_batch_lanes`], with access tracing.
    pub fn lower_bound_batch_lanes_with<T: AccessTracer>(
        &self,
        probes: &[K],
        lanes: usize,
        tracer: &mut T,
    ) -> Vec<usize> {
        batch::interleaved_descent(
            &self.layout,
            probes,
            lanes,
            tracer,
            |d, p, tr| self.node_branch(d, p, tr),
            |leaf, p, tr| batch::resolve_leaf(&self.layout, &self.array, leaf, p, tr),
        )
    }

    /// Batched point lookup via the interleaved descent.
    pub fn search_batch_lanes_with<T: AccessTracer>(
        &self,
        probes: &[K],
        lanes: usize,
        tracer: &mut T,
    ) -> Vec<Option<usize>> {
        let lbs = self.lower_bound_batch_lanes_with(probes, lanes, tracer);
        batch::confirm_matches(&self.array, probes, lbs, tracer)
    }

    /// Partitioned batched lower bounds: chunk `probes` across `threads`
    /// workers, each chunk running the interleaved descent at `lanes`
    /// (`threads == 0` = one per core; results are byte-identical to
    /// [`Self::lower_bound_batch_lanes`]).
    pub fn lower_bound_batch_par(&self, probes: &[K], lanes: usize, threads: usize) -> Vec<usize> {
        ccindex_parallel::WorkerPool::new(threads)
            .flat_map_chunks(probes, |chunk| self.lower_bound_batch_lanes(chunk, lanes))
    }

    /// Partitioned batched point lookups; see
    /// [`Self::lower_bound_batch_par`].
    pub fn search_batch_par(
        &self,
        probes: &[K],
        lanes: usize,
        threads: usize,
    ) -> Vec<Option<usize>> {
        ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(probes, |chunk| {
            self.search_batch_lanes_with(chunk, lanes, &mut NoopTracer)
        })
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(probe, tracer);
        if pos < self.array.len() {
            tracer.compare();
            if self.array.get_traced(pos, tracer) == probe {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key> SearchIndex<K> for GenericFullCss<K> {
    fn name(&self) -> &'static str {
        "full CSS-tree (generic)"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn search_batch(&self, probes: &[K]) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut NoopTracer)
    }
    fn search_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn search_batch_traced(
        &self,
        probes: &[K],
        tracer: &mut dyn AccessTracer,
    ) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        SpaceReport::same(self.directory.size_bytes())
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.layout.levels(),
            internal_nodes: self.layout.internal_nodes,
            branching: self.layout.branching,
            node_bytes: self.layout.m * K::WIDTH,
        }
    }
}

impl<K: Key> OrderedIndex<K> for GenericFullCss<K> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
    fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
        self.lower_bound_batch_lanes(probes, DEFAULT_BATCH_LANES)
    }
    fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn lower_bound_batch_traced(&self, probes: &[K], tracer: &mut dyn AccessTracer) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_specialised_tree_everywhere() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i * 2 + 1).collect();
        let spec = crate::FullCssTree::<u32, 16>::build(&keys);
        let gen = GenericFullCss::build(&keys, 16);
        for probe in 0..6_100u32 {
            assert_eq!(
                gen.lower_bound(probe),
                spec.lower_bound(probe),
                "probe {probe}"
            );
            assert_eq!(gen.search(probe), spec.search(probe), "probe {probe}");
        }
    }

    #[test]
    fn odd_node_sizes_work() {
        // m = 24 (the Fig. 12 bump) and other non-powers.
        for m in [3usize, 5, 7, 24, 48, 100] {
            let keys: Vec<u32> = (0..1013u32).map(|i| i * 3).collect();
            let g = GenericFullCss::build(&keys, m);
            for probe in (0..3_100u32).step_by(11) {
                assert_eq!(
                    g.lower_bound(probe),
                    keys.partition_point(|&k| k < probe),
                    "m={m} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn identical_layout_to_specialised() {
        let keys: Vec<u32> = (0..10_000).collect();
        let spec = crate::FullCssTree::<u32, 8>::build(&keys);
        let gen = GenericFullCss::build(&keys, 8);
        assert_eq!(spec.layout(), gen.layout());
        assert_eq!(spec.space(), gen.space());
    }

    #[test]
    fn empty_input() {
        let g = GenericFullCss::<u32>::build(&[], 16);
        assert_eq!(g.search(5), None);
        assert_eq!(g.lower_bound(5), 0);
    }
}
