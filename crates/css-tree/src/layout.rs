//! CSS-tree directory geometry: Lemma 4.1 and the two-part leaf mapping.
//!
//! A CSS-tree over a sorted array `a[0..n)` with `m`-slot nodes and
//! branching factor `f` (`f = m + 1` for full trees, `f = m` for level
//! trees) is a complete `f`-ary tree up to depth `k − 1`, with the leaves
//! at depth `k` filled left to right (§4.1). Nodes are numbered breadth
//! first; node `b`'s children are `b·f + 1 .. b·f + f`.
//!
//! Lemma 4.1 (generalised to branching `f`): with `B` leaf nodes and
//! `k = ⌈log_f B⌉`,
//!
//! * the first leaf node of the bottom level is `F = (f^k − 1)/(f − 1)`,
//! * the number of internal nodes is `T = F − ⌊(f^k − B)/(f − 1)⌋`.
//!
//! Leaves are the node numbers `T .. T+B`. Those `≥ F` form the *bottom*
//! level and map onto the **front** of the sorted array; those in `[T, F)`
//! are one level higher and map onto the **tail** — the "switching of
//! regions I and II" of Fig. 3. The `MARK` is the directory-entry offset
//! `F·m` of the bottom level's first key: a virtual leaf entry offset `x`
//! addresses `a[x − MARK]` when `x ≥ MARK` and `a[n + (x − MARK)]`
//! otherwise.

use ccindex_common::{ceil_div, ceil_log, pow_saturating};

/// Which CSS variant a layout describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CssKind {
    /// §4.1: `m` keys per node, branching `m + 1`.
    Full,
    /// §4.2: `m − 1` keys per node (one auxiliary slot), branching `m`.
    Level,
}

/// Complete geometry of a CSS-tree directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CssLayout {
    /// Variant.
    pub kind: CssKind,
    /// Number of indexed elements.
    pub n: usize,
    /// Slots per node (`m`); each directory node occupies `m` key slots.
    pub m: usize,
    /// Branching factor (`m + 1` for full, `m` for level).
    pub branching: usize,
    /// Number of leaf nodes `B = ⌈n/m⌉` (leaves hold `m` array elements).
    pub leaves: usize,
    /// Depth `k = ⌈log_f B⌉` of the bottom leaf level.
    pub depth: u32,
    /// Number of internal (directory) nodes `T`.
    pub internal_nodes: usize,
    /// First node number of the bottom leaf level (`F`).
    pub first_bottom: usize,
    /// Directory-entry offset of the bottom level's first key (`F · m`).
    pub mark: usize,
    /// Length of the array's first part (covered by bottom-level leaves);
    /// the remaining `n − first_part_len` elements are covered by the
    /// upper-level leaves.
    pub first_part_len: usize,
}

/// Where a virtual leaf node's keys live in the sorted array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafSegment {
    /// `[start, end)` positions in the sorted array.
    Range {
        /// First position.
        start: usize,
        /// One past the last position (clamped for the partial leaf).
        end: usize,
    },
    /// The leaf lies entirely beyond the data (reachable only when the
    /// probe exceeds every key): the lower bound is `n`.
    BeyondEnd,
}

/// Alias retained for the level variant in public signatures.
pub type LevelLayout = CssLayout;

impl CssLayout {
    /// Geometry of a full CSS-tree (§4.1) with `m` keys per node.
    pub fn full(n: usize, m: usize) -> Self {
        assert!(m >= 1, "node size must be at least 1");
        Self::compute(CssKind::Full, n, m, m + 1)
    }

    /// Geometry of a level CSS-tree (§4.2); `m` must be a power of two
    /// `>= 2` ("for m = 2^t, we define a tree that only uses m − 1 entries
    /// per node and has a branching factor of m").
    pub fn level(n: usize, m: usize) -> Self {
        assert!(
            m >= 2 && m.is_power_of_two(),
            "level CSS-trees require a power-of-two node size >= 2"
        );
        Self::compute(CssKind::Level, n, m, m)
    }

    fn compute(kind: CssKind, n: usize, m: usize, f: usize) -> Self {
        let leaves = ceil_div(n, m);
        if leaves <= 1 {
            // A single (possibly partial) leaf: no directory at all.
            return Self {
                kind,
                n,
                m,
                branching: f,
                leaves,
                depth: 0,
                internal_nodes: 0,
                first_bottom: 0,
                mark: 0,
                first_part_len: n,
            };
        }
        let k = ceil_log(f, leaves);
        let fk = pow_saturating(f, k);
        let first_bottom = (fk - 1) / (f - 1);
        let internal_nodes = first_bottom - (fk - leaves) / (f - 1);
        let upper_leaves = first_bottom - internal_nodes;
        let first_part_len = n - upper_leaves * m;
        Self {
            kind,
            n,
            m,
            branching: f,
            leaves,
            depth: k,
            internal_nodes,
            first_bottom,
            mark: first_bottom * m,
            first_part_len,
        }
    }

    /// Is `node` an internal (directory) node?
    #[inline]
    pub fn is_internal(&self, node: usize) -> bool {
        node < self.internal_nodes
    }

    /// Child node number for branch `l` of internal node `node`.
    #[inline]
    pub fn child(&self, node: usize, l: usize) -> usize {
        debug_assert!(l < self.branching);
        node * self.branching + 1 + l
    }

    /// Directory-entry offset of `node`'s first key slot.
    #[inline]
    pub fn node_entry(&self, node: usize) -> usize {
        node * self.m
    }

    /// Map a virtual leaf `node` to its sorted-array segment (the region
    /// I/II switch of Fig. 3).
    #[inline]
    pub fn leaf_segment(&self, node: usize) -> LeafSegment {
        debug_assert!(!self.is_internal(node));
        let x = self.node_entry(node);
        if x >= self.mark {
            let start = x - self.mark;
            if start >= self.first_part_len {
                LeafSegment::BeyondEnd
            } else {
                LeafSegment::Range {
                    start,
                    end: (start + self.m).min(self.first_part_len),
                }
            }
        } else {
            // Upper-level leaf: `mark − x` from the end of the array.
            let start = self.n - (self.mark - x);
            LeafSegment::Range {
                start,
                end: start + self.m,
            }
        }
    }

    /// Directory key slots (`T · m`); the directory's space in keys.
    pub fn directory_slots(&self) -> usize {
        self.internal_nodes * self.m
    }

    /// Number of directory levels actually holding internal nodes
    /// (the leaf level is not part of the directory). Every probe
    /// descent touches exactly these levels, root first.
    pub fn directory_levels(&self) -> u32 {
        if self.internal_nodes == 0 {
            0
        } else {
            self.depth
        }
    }

    /// Internal node numbers of directory level `level` (0 = the
    /// root). Breadth-first numbering makes each level contiguous —
    /// level `L` starts at `(f^L − 1)/(f − 1)` — which is what lets a
    /// serialized tree be written and reopened one level page at a
    /// time (geomedea's `node_ranges_by_level`, transposed to CSS).
    pub fn level_nodes(&self, level: u32) -> std::ops::Range<usize> {
        let f = self.branching;
        let start = (pow_saturating(f, level) - 1) / (f - 1);
        let end = (pow_saturating(f, level + 1) - 1) / (f - 1);
        start.min(self.internal_nodes)..end.min(self.internal_nodes)
    }

    /// Directory key-slot range of level `level` — the page a
    /// serialized tree stores (and a cold start reads) per level.
    pub fn level_slots(&self, level: u32) -> std::ops::Range<usize> {
        let nodes = self.level_nodes(level);
        nodes.start * self.m..nodes.end * self.m
    }

    /// Directory size in bytes for `key_width`-byte keys — the CSS-tree's
    /// entire space cost (Fig. 7: identical in both accounting modes).
    pub fn space_bytes(&self, key_width: usize) -> usize {
        self.directory_slots() * key_width
    }

    /// Number of levels a probe traverses (internal levels + the leaf).
    pub fn levels(&self) -> u32 {
        self.depth + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Fig. 3): m = 4, 65 leaf nodes
    /// (65·4 = 260 elements).
    #[test]
    fn paper_figure3_example() {
        let l = CssLayout::full(260, 4);
        assert_eq!(l.leaves, 65);
        assert_eq!(l.depth, 3); // 5^2 = 25 < 65 <= 125 = 5^3
        assert_eq!(l.first_bottom, 31); // (125-1)/4, "first key in node 31"
        assert_eq!(l.internal_nodes, 16); // nodes 0..=15, "last key in node 15"
        assert_eq!(l.mark, 124);
        // Upper leaves 16..31 (15 nodes, 60 elements) hold the array tail.
        assert_eq!(l.first_part_len, 260 - 15 * 4);
    }

    #[test]
    fn fig3_leaf_mapping_switches_regions() {
        let l = CssLayout::full(260, 4);
        // Bottom-level leaf 31 is the first part's start.
        assert_eq!(l.leaf_segment(31), LeafSegment::Range { start: 0, end: 4 });
        // Last bottom leaf 80 ends the first part.
        assert_eq!(
            l.leaf_segment(80),
            LeafSegment::Range {
                start: 196,
                end: 200
            }
        );
        // Upper leaf 16 starts region II (tail of the array).
        assert_eq!(
            l.leaf_segment(16),
            LeafSegment::Range {
                start: 200,
                end: 204
            }
        );
        // Last upper leaf 30 ends at n.
        assert_eq!(
            l.leaf_segment(30),
            LeafSegment::Range {
                start: 256,
                end: 260
            }
        );
    }

    #[test]
    fn lemma_4_1_internal_count_formula() {
        // Cross-check T against the closed form for assorted (n, m).
        for &(n, m) in &[
            (260usize, 4usize),
            (1000, 4),
            (10_000, 16),
            (1_000_000, 16),
            (123_457, 8),
            (97, 2),
        ] {
            let l = CssLayout::full(n, m);
            let b = ceil_div(n, m);
            let k = ceil_log(m + 1, b) as u32;
            let fk = pow_saturating(m + 1, k);
            let expected_t = (fk - 1) / m - (fk - b) / m;
            assert_eq!(l.internal_nodes, expected_t, "n={n} m={m}");
            assert_eq!(l.first_bottom, (fk - 1) / m, "n={n} m={m}");
        }
    }

    #[test]
    fn all_leaves_on_one_level_when_b_is_a_power() {
        // B = 25 = 5^2 with m = 4: every leaf sits at the bottom level.
        let l = CssLayout::full(100, 4);
        assert_eq!(l.leaves, 25);
        assert_eq!(l.first_bottom, 6);
        assert_eq!(l.internal_nodes, 6);
        assert_eq!(l.first_part_len, 100); // no upper leaves
    }

    #[test]
    fn single_leaf_degenerates() {
        for n in 0..=4usize {
            let l = CssLayout::full(n, 4);
            assert_eq!(l.internal_nodes, 0, "n={n}");
            assert_eq!(l.leaves, ceil_div(n, 4));
            assert_eq!(l.first_part_len, n);
            if n > 0 {
                assert_eq!(l.leaf_segment(0), LeafSegment::Range { start: 0, end: n });
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn segments_partition_the_array() {
        // Every element must be covered exactly once across all leaves,
        // in order: bottom leaves cover [0, L1), upper leaves [L1, n).
        for &(n, m) in &[
            (260usize, 4usize),
            (97, 4),
            (1_000, 8),
            (4_097, 16),
            (65_536, 16),
            (100, 5),
            (31, 2),
            (12_345, 7),
        ] {
            let l = CssLayout::full(n, m);
            let t = l.internal_nodes;
            let mut covered = vec![false; n];
            // In-order over positions: bottom leaves first.
            let mut expected_start = 0usize;
            for node in l.first_bottom..t + l.leaves {
                match l.leaf_segment(node) {
                    LeafSegment::Range { start, end } => {
                        assert_eq!(start, expected_start, "n={n} m={m} node={node}");
                        for p in start..end {
                            assert!(!covered[p]);
                            covered[p] = true;
                        }
                        expected_start = end;
                    }
                    LeafSegment::BeyondEnd => {}
                }
            }
            for node in t..l.first_bottom.min(t + l.leaves) {
                match l.leaf_segment(node) {
                    LeafSegment::Range { start, end } => {
                        assert_eq!(start, expected_start, "upper n={n} m={m} node={node}");
                        for p in start..end {
                            assert!(!covered[p]);
                            covered[p] = true;
                        }
                        expected_start = end;
                    }
                    LeafSegment::BeyondEnd => panic!("upper leaves are never dangling"),
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} m={m}");
        }
    }

    #[test]
    fn level_layout_uses_branching_m() {
        let l = CssLayout::level(1000, 8);
        assert_eq!(l.branching, 8);
        assert_eq!(l.leaves, 125);
        // k = ceil(log8 125) = 3; F = (512-1)/7 = 73; T = 73 - (512-125)/7
        // = 73 - 55 = 18.
        assert_eq!(l.depth, 3);
        assert_eq!(l.first_bottom, 73);
        assert_eq!(l.internal_nodes, 18);
    }

    #[test]
    fn level_tree_is_deeper_than_full() {
        // §4.2: "A level CSS-tree will be deeper than the corresponding
        // full CSS-tree since now the branching factor is m instead of
        // m + 1" — visible at boundary sizes.
        let full = CssLayout::full(17 * 17 * 16, 16);
        let level = CssLayout::level(17 * 17 * 16, 16);
        assert!(level.depth >= full.depth);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn level_rejects_non_power_of_two() {
        let _ = CssLayout::level(100, 12);
    }

    #[test]
    fn dangling_leaf_is_beyond_end() {
        // Choose n so the bottom level has dangling node positions:
        // m = 4, B = 26 leaves -> k = 3, F = 31, T = 7, bottom leaves
        // 31..33, upper leaves 7..31 (24 nodes). Virtual bottom positions
        // 33.. are dangling.
        let l = CssLayout::full(104, 4);
        assert_eq!(l.leaves, 26);
        assert_eq!(l.internal_nodes, 7);
        assert_eq!(l.first_bottom, 31);
        assert_eq!(l.first_part_len, 104 - 24 * 4);
        assert_eq!(l.leaf_segment(31), LeafSegment::Range { start: 0, end: 4 });
        assert_eq!(l.leaf_segment(32), LeafSegment::Range { start: 4, end: 8 });
        assert_eq!(l.leaf_segment(33), LeafSegment::BeyondEnd);
    }

    #[test]
    fn space_matches_paper_typicals() {
        // Fig. 7: full CSS-tree over n = 10^7 4-byte keys with 64-byte
        // nodes (m = 16): nK^2/(sc) = 2.5 MB.
        let l = CssLayout::full(10_000_000, 16);
        let mb = l.space_bytes(4) as f64 / 1e6;
        assert!((2.3..2.8).contains(&mb), "space = {mb} MB");
        // Level CSS-tree: slightly more (2.7 MB in Fig. 7).
        let ll = CssLayout::level(10_000_000, 16);
        let lmb = ll.space_bytes(4) as f64 / 1e6;
        assert!(lmb > mb, "level {lmb} vs full {mb}");
        assert!((2.4..3.1).contains(&lmb), "level space = {lmb} MB");
    }

    #[test]
    fn level_ranges_tile_the_directory() {
        // Concatenating every level's node (and slot) range must
        // reproduce 0..T (and 0..T·m) exactly, in order — the
        // invariant the per-level page serialization rests on.
        for &(n, m) in &[
            (260usize, 4usize),
            (97, 4),
            (1_000, 8),
            (4_097, 16),
            (100, 5),
            (12_345, 7),
            (3, 4),
            (0, 4),
        ] {
            let layouts = if m.is_power_of_two() && m >= 2 {
                vec![CssLayout::full(n, m), CssLayout::level(n, m)]
            } else {
                vec![CssLayout::full(n, m)]
            };
            for l in layouts {
                let mut next_node = 0usize;
                let mut next_slot = 0usize;
                for level in 0..l.directory_levels() {
                    let nodes = l.level_nodes(level);
                    let slots = l.level_slots(level);
                    assert_eq!(nodes.start, next_node, "n={n} m={m} level={level}");
                    assert!(!nodes.is_empty(), "n={n} m={m} level={level}");
                    assert_eq!(slots, nodes.start * l.m..nodes.end * l.m);
                    next_node = nodes.end;
                    next_slot = slots.end;
                }
                assert_eq!(next_node, l.internal_nodes, "n={n} m={m}");
                assert_eq!(next_slot, l.directory_slots(), "n={n} m={m}");
                // One level past the directory is empty, not a panic.
                assert!(l.level_nodes(l.directory_levels()).is_empty() || l.internal_nodes == 0);
            }
        }
    }

    #[test]
    fn paper_example_level_ranges() {
        // Fig. 3 geometry: 16 internal nodes over 3 directory levels.
        let l = CssLayout::full(260, 4);
        assert_eq!(l.directory_levels(), 3);
        assert_eq!(l.level_nodes(0), 0..1);
        assert_eq!(l.level_nodes(1), 1..6);
        assert_eq!(l.level_nodes(2), 6..16); // clamped from 6..31
        assert_eq!(l.level_slots(2), 24..64);
    }

    #[test]
    fn partial_last_leaf_is_clamped() {
        let l = CssLayout::full(103, 4); // B = 26, L1 = 103 - 96 = 7
        assert_eq!(l.first_part_len, 7);
        assert_eq!(l.leaf_segment(32), LeafSegment::Range { start: 4, end: 7 });
    }
}
