//! Level CSS-trees (§4.2).
//!
//! For `M = 2^t`, a level CSS-tree "only uses m − 1 entries per node and
//! has a branching factor of m": the intra-node search becomes a *perfect*
//! binary comparison tree of exactly `t` comparisons (Fig. 4's point), and
//! because both the branching factor and the node stride are powers of
//! two, every child-offset computation is a shift — the paper's fix for
//! the m = 24 "bump" of Figs. 12–13.
//!
//! The spare `M`-th slot is not wasted during *construction*: it caches
//! "the largest value in the last branch of each node", letting the build
//! fill parent entries without re-descending subtrees. That is why level
//! trees build measurably faster than full trees (Fig. 9).

use crate::batch;
use crate::layout::{CssLayout, LeafSegment};
use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, OrderedIndex, SearchIndex, SortedArray,
    SpaceReport, DEFAULT_BATCH_LANES,
};

/// A level CSS-tree with `M`-slot nodes (`M − 1` separator keys + 1
/// auxiliary slot; branching factor `M`). `M` must be a power of two ≥ 2.
#[derive(Debug, Clone)]
pub struct LevelCssTree<K: Key, const M: usize> {
    array: SortedArray<K>,
    /// Directory: `internal_nodes · M` slots; slot `M−1` of each node is
    /// the auxiliary subtree maximum (used by the build, not the search).
    directory: AlignedBuf<K>,
    layout: CssLayout,
}

impl<K: Key, const M: usize> LevelCssTree<K, M> {
    /// Build over a sorted slice.
    pub fn build(keys: &[K]) -> Self {
        Self::from_shared(SortedArray::from_slice(keys))
    }

    /// Build over an existing shared array without copying it.
    pub fn from_shared(array: SortedArray<K>) -> Self {
        assert!(
            M >= 2 && M.is_power_of_two(),
            "level CSS-trees require a power-of-two node size >= 2"
        );
        let layout = CssLayout::level(array.len(), M);
        let mut directory: AlignedBuf<K> = AlignedBuf::new_zeroed(layout.directory_slots());
        Self::fill_directory(array.as_slice(), &layout, &mut directory);
        Self {
            array,
            directory,
            layout,
        }
    }

    /// Bottom-up fill using the auxiliary slot: entry `e < M−1` of node
    /// `d` is the max of child `e`'s subtree; slot `M−1` is the max of the
    /// last child's subtree. A child's subtree max is its own aux slot
    /// when internal (already computed — children have larger node
    /// numbers), or its segment's last key when a leaf.
    fn fill_directory(keys: &[K], layout: &CssLayout, directory: &mut AlignedBuf<K>) {
        let t = layout.internal_nodes;
        if t == 0 {
            return;
        }
        let l1 = layout.first_part_len;
        debug_assert!(l1 > 0);
        let pad = keys[l1 - 1];
        for d in (0..t).rev() {
            for e in 0..M {
                // Entries 0..M−2 are separators (max of child e); the aux
                // slot e = M−1 stores the last child's subtree max.
                let c = layout.child(d, e);
                let max = if layout.is_internal(c) {
                    directory[c * M + (M - 1)] // child's aux slot
                } else {
                    match layout.leaf_segment(c) {
                        LeafSegment::Range { end, .. } => keys[end - 1],
                        LeafSegment::BeyondEnd => pad,
                    }
                };
                directory[d * M + e] = max;
            }
        }
    }

    /// Reassemble a tree from its shared array plus pre-built
    /// directory slots (a serialized tree's level pages, concatenated
    /// root level first, auxiliary slots included) without re-running
    /// the bottom-up fill. The slot count must match the geometry
    /// recomputed from `(n, M)`; a mismatch is an `Err` (never a
    /// panic) so a damaged file surfaces as a typed storage error
    /// upstream.
    pub fn from_shared_with_directory(array: SortedArray<K>, slots: &[K]) -> Result<Self, String> {
        assert!(
            M >= 2 && M.is_power_of_two(),
            "level CSS-trees require a power-of-two node size >= 2"
        );
        let layout = CssLayout::level(array.len(), M);
        if slots.len() != layout.directory_slots() {
            return Err(format!(
                "level CSS directory has {} slots, geometry for n={} m={M} needs {}",
                slots.len(),
                array.len(),
                layout.directory_slots()
            ));
        }
        Ok(Self {
            array,
            directory: AlignedBuf::from_slice(slots),
            layout,
        })
    }

    /// The directory geometry.
    pub fn layout(&self) -> &CssLayout {
        &self.layout
    }

    /// One directory level's key slots (level 0 = the root) — the
    /// page a level-addressable serialization writes per level.
    pub fn directory_level(&self, level: u32) -> &[K] {
        &self.directory.as_slice()[self.layout.level_slots(level)]
    }

    /// The whole directory, root level first; the per-level pages of
    /// [`directory_level`](Self::directory_level) concatenate to
    /// exactly this slice.
    pub fn directory(&self) -> &[K] {
        self.directory.as_slice()
    }

    /// The underlying shared array.
    pub fn array(&self) -> &SortedArray<K> {
        &self.array
    }

    /// Directory key slots (including auxiliary slots).
    pub fn directory_slots(&self) -> usize {
        self.directory.len()
    }

    /// Leftmost branch with separator `>= probe`, else `M − 1`.
    ///
    /// Exactly `t = log2 M` comparisons over the `M − 1` separators — the
    /// full binary comparison tree of Fig. 4. Shared with the interleaved
    /// batch descent in [`crate::batch`].
    #[inline(always)]
    pub(crate) fn node_branch<T: AccessTracer>(&self, d: usize, probe: K, tracer: &mut T) -> usize {
        let base = d * M;
        let node = &self.directory.as_slice()[base..base + M];
        tracer.read(self.directory.base_addr() + base * K::WIDTH, M * K::WIDTH);
        let mut lo = 0usize;
        let mut hi = M - 1;
        while lo < hi {
            let mid = (lo + hi) >> 1;
            tracer.compare();
            if node[mid] < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Descent to the virtual leaf; child offset is `d·M + 1 + l` — all
    /// shifts because `M` is a power of two.
    #[inline]
    fn descend<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> usize {
        let mut d = 0usize;
        while self.layout.is_internal(d) {
            let l = self.node_branch(d, probe, tracer);
            d = self.layout.child(d, l);
            tracer.descend();
        }
        d
    }

    /// Leftmost position with key `>= probe`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> usize {
        if self.array.is_empty() {
            return 0;
        }
        let leaf = self.descend(probe, tracer);
        batch::resolve_leaf(&self.layout, &self.array, leaf, probe, tracer)
    }

    /// Leftmost matching position, traced.
    pub fn search_with<T: AccessTracer>(&self, probe: K, tracer: &mut T) -> Option<usize> {
        let pos = self.lower_bound_with(probe, tracer);
        if pos < self.array.len() {
            tracer.compare();
            if self.array.get_traced(pos, tracer) == probe {
                return Some(pos);
            }
        }
        None
    }
}

impl<K: Key, const M: usize> SearchIndex<K> for LevelCssTree<K, M> {
    fn name(&self) -> &'static str {
        "level CSS-tree"
    }
    fn len(&self) -> usize {
        self.array.len()
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn search_batch(&self, probes: &[K]) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut NoopTracer)
    }
    fn search_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn search_batch_traced(
        &self,
        probes: &[K],
        tracer: &mut dyn AccessTracer,
    ) -> Vec<Option<usize>> {
        self.search_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        SpaceReport::same(self.directory.size_bytes())
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.layout.levels(),
            internal_nodes: self.layout.internal_nodes,
            branching: M,
            node_bytes: M * K::WIDTH,
        }
    }
}

impl<K: Key, const M: usize> OrderedIndex<K> for LevelCssTree<K, M> {
    fn lower_bound(&self, key: K) -> usize {
        self.lower_bound_with(key, &mut NoopTracer)
    }
    fn lower_bound_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> usize {
        self.lower_bound_with(key, &mut { tracer })
    }
    fn lower_bound_batch(&self, probes: &[K]) -> Vec<usize> {
        self.lower_bound_batch_lanes(probes, DEFAULT_BATCH_LANES)
    }
    fn lower_bound_batch_lanes(&self, probes: &[K], lanes: usize) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, lanes, &mut NoopTracer)
    }
    fn lower_bound_batch_traced(&self, probes: &[K], tracer: &mut dyn AccessTracer) -> Vec<usize> {
        self.lower_bound_batch_lanes_with(probes, DEFAULT_BATCH_LANES, &mut { tracer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 2 + 1).collect();
        let t = LevelCssTree::<u32, 16>::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.search(k), Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_are_none() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 2 + 1).collect();
        let t = LevelCssTree::<u32, 16>::build(&keys);
        for i in (0..10_000).step_by(7) {
            assert_eq!(t.search(i * 2), None);
        }
        assert_eq!(t.search(u32::MAX), None);
    }

    #[test]
    fn lower_bound_exhaustive_small_sizes() {
        for n in 0..200usize {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 3 + 2).collect();
            macro_rules! check {
                ($m:literal) => {{
                    let t = LevelCssTree::<u32, $m>::build(&keys);
                    for probe in 0..(n as u32 * 3 + 5) {
                        assert_eq!(
                            t.lower_bound(probe),
                            keys.partition_point(|&k| k < probe),
                            "n={n} m={} probe={probe}",
                            $m
                        );
                    }
                }};
            }
            check!(2);
            check!(4);
            check!(8);
            check!(16);
            check!(32);
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        let mut keys = Vec::new();
        for block in 0..50u32 {
            for _ in 0..9 {
                keys.push(block * 100);
            }
        }
        let t = LevelCssTree::<u32, 8>::build(&keys);
        for block in 0..50u32 {
            assert_eq!(t.search(block * 100), Some((block * 9) as usize));
        }
    }

    #[test]
    fn exactly_log2_m_comparisons_per_node() {
        // §4.2: "The number of comparisons per node is t for a level
        // CSS-tree" (t = log2 M). Verify compares == descends * t + leaf.
        let keys: Vec<u32> = (0..1_000_000).collect();
        let t = LevelCssTree::<u32, 16>::build(&keys);
        let mut tr = CountingTracer::new();
        t.lower_bound_with(777_777, &mut tr);
        let per_node = 4; // log2(16)
        let leaf_cost = tr.compares - tr.descends * per_node;
        assert!(leaf_cost <= 5, "leaf comparisons = {leaf_cost}");
    }

    #[test]
    fn level_uses_more_space_than_full_same_node_size() {
        // §4.2: "A level CSS-tree uses a little more space than a full
        // CSS-tree."
        let keys: Vec<u32> = (0..1_000_000).collect();
        let full = crate::full::FullCssTree::<u32, 16>::build(&keys);
        let level = LevelCssTree::<u32, 16>::build(&keys);
        assert!(level.space().indirect_bytes > full.space().indirect_bytes);
    }

    #[test]
    fn fewer_total_comparisons_than_full(/* Fig. 5's comparison ratio < 1 */) {
        let keys: Vec<u32> = (0..1_048_576u32).collect();
        let full = crate::full::FullCssTree::<u32, 16>::build(&keys);
        let level = LevelCssTree::<u32, 16>::build(&keys);
        let (mut cf, mut cl) = (0u64, 0u64);
        for probe in (0..1_048_576u32).step_by(9973) {
            let mut a = CountingTracer::new();
            full.lower_bound_with(probe, &mut a);
            cf += a.compares;
            let mut b = CountingTracer::new();
            level.lower_bound_with(probe, &mut b);
            cl += b.compares;
        }
        assert!(cl < cf, "level {cl} vs full {cf} comparisons");
    }

    #[test]
    fn empty_tiny_and_beyond_max() {
        let t = LevelCssTree::<u32, 8>::build(&[]);
        assert_eq!(t.search(1), None);
        assert_eq!(t.lower_bound(1), 0);
        let t = LevelCssTree::<u32, 8>::build(&[5]);
        assert_eq!(t.search(5), Some(0));
        assert_eq!(t.lower_bound(9), 1);
        for n in [5usize, 63, 64, 65, 512, 513] {
            let keys: Vec<u32> = (0..n as u32).collect();
            let t = LevelCssTree::<u32, 8>::build(&keys);
            assert_eq!(t.lower_bound(n as u32 + 7), n, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_m() {
        let keys: Vec<u32> = (0..100).collect();
        let _ = LevelCssTree::<u32, 24>::build(&keys);
    }

    #[test]
    fn u64_keys() {
        let keys: Vec<u64> = (0..50_000u64).map(|i| i * 977).collect();
        let t = LevelCssTree::<u64, 8>::build(&keys);
        for (i, &k) in keys.iter().enumerate().step_by(331) {
            assert_eq!(t.search(k), Some(i));
            assert_eq!(t.search(k + 1), None);
        }
    }

    #[test]
    fn level_pages_reassemble_the_tree() {
        for n in [0usize, 3, 97, 260, 4_097] {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            let built = LevelCssTree::<u32, 8>::build(&keys);
            let mut slots = Vec::new();
            for level in 0..built.layout().directory_levels() {
                slots.extend_from_slice(built.directory_level(level));
            }
            assert_eq!(&slots[..], built.directory(), "n={n}");
            let reopened =
                LevelCssTree::<u32, 8>::from_shared_with_directory(built.array().clone(), &slots)
                    .expect("geometry matches");
            for probe in (0..n as u32 * 3 + 4).step_by(7) {
                assert_eq!(
                    reopened.lower_bound(probe),
                    built.lower_bound(probe),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn wrong_slot_count_is_an_error_not_a_panic() {
        let keys: Vec<u32> = (0..300).collect();
        let built = LevelCssTree::<u32, 8>::build(&keys);
        let mut slots = built.directory().to_vec();
        slots.extend_from_slice(&[0, 0]);
        let err = LevelCssTree::<u32, 8>::from_shared_with_directory(built.array().clone(), &slots)
            .expect_err("oversized directory must fail");
        assert!(err.contains("slots"), "{err}");
    }
}
