//! Cache-Sensitive Search Trees (CSS-trees) — the paper's contribution.
//!
//! A CSS-tree is a directory structure stored on top of a sorted array
//! (§4). The directory is a balanced search tree stored itself as an array;
//! nodes are sized to the cache line, and children are found by arithmetic
//! on array offsets instead of stored pointers, so **every byte fetched is
//! a key**. A lookup costs at most `log_{m+1} n` cache misses instead of
//! binary search's `log_2 n`.
//!
//! Two variants, per the paper:
//!
//! * [`FullCssTree`] (§4.1) — nodes hold exactly `m` keys; the tree is a
//!   complete `(m+1)`-ary tree except for a partially filled bottom leaf
//!   level. Because the sorted array is kept contiguous in key order while
//!   the natural tree order would split it, leaf offsets are remapped
//!   around the `MARK` point (the "switching of regions I and II" of
//!   Fig. 3, Lemma 4.1, Algorithms 4.1 and 4.2).
//! * [`LevelCssTree`] (§4.2) — for `m = 2^t`, nodes sacrifice one slot and
//!   hold `m − 1` keys with branching factor `m`, turning the per-node
//!   search into a perfect binary tree: `log_2 n` total comparisons (fewer
//!   than full CSS-trees) at the price of `log_m n ≥ log_{m+1} n` levels.
//!   The spare slot caches the subtree maximum during construction, which
//!   is why level trees also *build* faster (Fig. 9).
//!
//! Node size is a const generic `M` (keys per node), giving each size its
//! own fully unrolled monomorphised search — the Rust equivalent of the
//! paper's hand-specialised code which §6.2 measured to be worth 20–45 %.
//! [`dynamic`] provides enum-dispatched wrappers over the standard sizes
//! for parameter sweeps, and [`generic_search`] keeps the deliberately
//! *unspecialised* variant as an ablation target.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod dynamic;
pub mod full;
pub mod generic_search;
pub mod layout;
pub mod level;
pub mod records;

pub use dynamic::{CssVariant, DynCssTree, STANDARD_NODE_SIZES};
pub use full::FullCssTree;
pub use generic_search::GenericFullCss;
pub use layout::{CssLayout, LevelLayout};
pub use level::LevelCssTree;
pub use records::{KeyedRecord, RecordCssTree};
