//! CSS-trees over sorted arrays of *records*, not just bare keys.
//!
//! §4: "our techniques apply to sorted arrays having elements of size
//! different from the size of a key. Offsets into the leaf array are
//! independent of the record size within the array; the compiler will
//! generate the appropriate byte offsets." — the array `a` may hold
//! `(key, RID)` pairs, packed rows of a clustered table, or any other
//! fixed-width record ordered by an embedded key.
//!
//! [`RecordCssTree`] is the full CSS-tree over such an array: the
//! *directory* still stores only keys (so its nodes stay cache-line dense
//! — the whole point of the structure), while leaf probes touch the wider
//! records.

use crate::layout::{CssLayout, LeafSegment};
use ccindex_common::{AccessTracer, AlignedBuf, Key, NoopTracer};

/// A fixed-width record carrying an ordering key.
pub trait KeyedRecord: Copy + Default + Send + Sync + 'static {
    /// The embedded key type.
    type Key: Key;
    /// Extract the ordering key.
    fn key(&self) -> Self::Key;
}

/// `(key, payload)` pairs are the canonical keyed record — e.g.
/// `(key, RID)` per §4's "companion array" remark, fused into one array.
impl<K: Key, V: Copy + Default + Send + Sync + 'static> KeyedRecord for (K, V) {
    type Key = K;
    #[inline]
    fn key(&self) -> K {
        self.0
    }
}

/// A full CSS-tree over a sorted array of records, `M` keys per directory
/// node.
#[derive(Debug, Clone)]
pub struct RecordCssTree<R: KeyedRecord, const M: usize> {
    records: AlignedBuf<R>,
    directory: AlignedBuf<R::Key>,
    layout: CssLayout,
}

impl<R: KeyedRecord, const M: usize> RecordCssTree<R, M> {
    /// Build over records sorted by key (duplicates allowed).
    pub fn build(records: &[R]) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].key() <= w[1].key()),
            "records must be sorted by key"
        );
        let layout = CssLayout::full(records.len(), M);
        let records = AlignedBuf::from_slice(records);
        let mut directory: AlignedBuf<R::Key> = AlignedBuf::new_zeroed(layout.directory_slots());
        Self::fill_directory(records.as_slice(), &layout, &mut directory);
        Self {
            records,
            directory,
            layout,
        }
    }

    /// Algorithm 4.1, reading subtree maxima through the record keys.
    fn fill_directory(records: &[R], layout: &CssLayout, directory: &mut AlignedBuf<R::Key>) {
        let t = layout.internal_nodes;
        if t == 0 {
            return;
        }
        let pad = records[layout.first_part_len - 1].key();
        for i in (0..t * M).rev() {
            let d = i / M;
            let e = i % M;
            let mut c = layout.child(d, e);
            while layout.is_internal(c) {
                c = layout.child(c, M);
            }
            directory[i] = match layout.leaf_segment(c) {
                LeafSegment::Range { end, .. } => records[end - 1].key(),
                LeafSegment::BeyondEnd => pad,
            };
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record array.
    pub fn records(&self) -> &[R] {
        self.records.as_slice()
    }

    /// The directory geometry.
    pub fn layout(&self) -> &CssLayout {
        &self.layout
    }

    /// Directory bytes — unchanged by the record width, which is the
    /// §4 point: wider records do not bloat the searched structure.
    pub fn directory_bytes(&self) -> usize {
        self.directory.size_bytes()
    }

    /// Leftmost position whose record key is `>= probe`, traced.
    pub fn lower_bound_with<T: AccessTracer>(&self, probe: R::Key, tracer: &mut T) -> usize {
        let n = self.records.len();
        if n == 0 {
            return 0;
        }
        let mut d = 0usize;
        while self.layout.is_internal(d) {
            let base = d * M;
            let node = &self.directory.as_slice()[base..base + M];
            tracer.read(
                self.directory.base_addr() + base * R::Key::WIDTH,
                M * R::Key::WIDTH,
            );
            let mut lo = 0usize;
            let mut hi = M;
            while lo < hi {
                let mid = (lo + hi) >> 1;
                tracer.compare();
                if node[mid] < probe {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            d = self.layout.child(d, lo);
            tracer.descend();
        }
        let (start, end) = match self.layout.leaf_segment(d) {
            LeafSegment::Range { start, end } => (start, end),
            LeafSegment::BeyondEnd => return n,
        };
        let recs = self.records.as_slice();
        let rec_size = core::mem::size_of::<R>();
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + ((hi - lo) >> 1);
            tracer.compare();
            tracer.read(self.records.base_addr() + mid * rec_size, rec_size);
            if recs[mid].key() < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Leftmost position with key `>= probe`.
    pub fn lower_bound(&self, probe: R::Key) -> usize {
        self.lower_bound_with(probe, &mut NoopTracer)
    }

    /// The leftmost record matching `probe`, if any.
    pub fn search(&self, probe: R::Key) -> Option<&R> {
        let pos = self.lower_bound(probe);
        let recs = self.records.as_slice();
        (pos < recs.len() && recs[pos].key() == probe).then(|| &recs[pos])
    }

    /// All records whose key lies in the inclusive range `[lo, hi]`.
    pub fn range(&self, lo: R::Key, hi: R::Key) -> &[R] {
        assert!(lo <= hi, "inverted key range");
        let start = self.lower_bound(lo);
        let end = match hi.to_rank().checked_add(1) {
            Some(next) if R::Key::from_rank(next) > hi => self.lower_bound(R::Key::from_rank(next)),
            _ => self.records.len(),
        };
        &self.records.as_slice()[start..end.max(start)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_common::CountingTracer;

    /// A 16-byte record: key + RID + 8-byte payload.
    #[repr(C)]
    #[derive(Debug, Clone, Copy, Default, PartialEq)]
    struct Row {
        key: u32,
        rid: u32,
        payload: [u8; 8],
    }

    impl KeyedRecord for Row {
        type Key = u32;
        fn key(&self) -> u32 {
            self.key
        }
    }

    fn rows(n: u32) -> Vec<Row> {
        (0..n)
            .map(|i| Row {
                key: i * 3,
                rid: i,
                payload: [i as u8; 8],
            })
            .collect()
    }

    #[test]
    fn finds_records_with_payload() {
        let data = rows(10_000);
        let t = RecordCssTree::<Row, 16>::build(&data);
        for probe in (0..10_000u32).step_by(37) {
            let r = t.search(probe * 3).expect("present");
            assert_eq!(r.rid, probe);
            assert_eq!(r.payload, [probe as u8; 8]);
            assert_eq!(t.search(probe * 3 + 1), None);
        }
    }

    #[test]
    fn lower_bound_matches_reference_over_many_sizes() {
        for n in [0u32, 1, 7, 63, 64, 65, 257, 1000] {
            let data = rows(n);
            let t = RecordCssTree::<Row, 4>::build(&data);
            for probe in 0..(n * 3 + 4) {
                assert_eq!(
                    t.lower_bound(probe),
                    data.iter()
                        .position(|r| r.key >= probe)
                        .unwrap_or(n as usize),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    #[test]
    fn tuple_records_work_out_of_the_box() {
        let data: Vec<(u32, u64)> = (0..1000).map(|i| (i * 2, (i as u64) << 32)).collect();
        let t = RecordCssTree::<(u32, u64), 16>::build(&data);
        assert_eq!(t.search(500 * 2), Some(&(1000, 250u64 << 33)));
        assert_eq!(t.search(1001), None);
    }

    #[test]
    fn range_returns_contiguous_records() {
        let data = rows(100);
        let t = RecordCssTree::<Row, 8>::build(&data);
        let slice = t.range(30, 60); // keys 30,33,...,60
        assert_eq!(slice.len(), 11);
        assert_eq!(slice.first().map(|r| r.key), Some(30));
        assert_eq!(slice.last().map(|r| r.key), Some(60));
        assert!(t.range(1, 2).is_empty());
    }

    #[test]
    fn directory_size_is_independent_of_record_width(/* the §4 claim */) {
        let narrow: Vec<(u32, u32)> = (0..10_000).map(|i| (i, i)).collect();
        let wide: Vec<(u32, [u64; 7])> = (0..10_000).map(|i| (i, [i as u64; 7])).collect();
        let tn = RecordCssTree::<(u32, u32), 16>::build(&narrow);
        let tw = RecordCssTree::<(u32, [u64; 7]), 16>::build(&wide);
        assert_eq!(tn.directory_bytes(), tw.directory_bytes());
        assert!(tn.directory_bytes() > 0);
        assert_eq!(tw.search(777).map(|r| r.1[0]), Some(777));
    }

    #[test]
    fn directory_reads_stay_line_dense_for_wide_records() {
        // Descent reads are M keys (64 B) even though records are 64 B
        // each; only leaf reads touch record-sized regions.
        let wide: Vec<(u32, [u64; 7])> = (0..100_000).map(|i| (i, [0; 7])).collect();
        let t = RecordCssTree::<(u32, [u64; 7]), 16>::build(&wide);
        let mut tr = CountingTracer::new();
        t.lower_bound_with(54_321, &mut tr);
        // Directory levels contribute 64-byte reads; leaf contributes
        // record-sized (64-byte) reads too here, but the directory read
        // count must equal the internal depth.
        assert!(tr.reads > 0);
    }

    #[test]
    fn duplicates_leftmost() {
        let mut data = rows(50);
        for r in data.iter_mut().skip(10).take(20) {
            r.key = 99;
        }
        data.sort_by_key(|r| r.key);
        let t = RecordCssTree::<Row, 4>::build(&data);
        let pos = t.lower_bound(99);
        assert_eq!(data[pos].key, 99);
        assert!(pos == 0 || data[pos - 1].key < 99);
    }

    #[test]
    #[should_panic(expected = "sorted by key")]
    fn rejects_unsorted_records() {
        let mut data = rows(10);
        data.swap(0, 5);
        let _ = RecordCssTree::<Row, 4>::build(&data);
    }
}
