//! Cache-line-sized hash buckets.
//!
//! §6.2: "Besides keys, each bucket also contains a counter indicating the
//! number of occupied slots in the bucket and the pointer to the next
//! bucket." With 4-byte keys and RIDs, a 64-byte bucket holds the 8-byte
//! header plus seven `<key, RID>` pairs — "squeeze in as many <key,RID>
//! pairs as possible" \[GBC98\].

use ccindex_common::Key;

/// Overflow-chain terminator.
pub const NO_NEXT: u32 = u32::MAX;

/// Entries per 64-byte bucket for 4-byte keys and RIDs.
pub const U32_BUCKET_ENTRIES: usize = 7;

/// One chained bucket with `E` entry slots.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct Bucket<K, const E: usize> {
    /// Occupied slots (≤ `E`).
    pub count: u32,
    /// Overflow bucket (arena index) or [`NO_NEXT`].
    pub next: u32,
    /// Keys of the occupied slots.
    pub keys: [K; E],
    /// RIDs (sorted-array positions) parallel to `keys`.
    pub rids: [u32; E],
}

impl<K: Key, const E: usize> Default for Bucket<K, E> {
    fn default() -> Self {
        Self {
            count: 0,
            next: NO_NEXT,
            keys: [K::default(); E],
            rids: [0; E],
        }
    }
}

impl<K: Key, const E: usize> Bucket<K, E> {
    /// Append an entry; returns `false` when the bucket is full.
    pub fn push(&mut self, key: K, rid: u32) -> bool {
        let c = self.count as usize;
        if c >= E {
            return false;
        }
        self.keys[c] = key;
        self.rids[c] = rid;
        self.count += 1;
        true
    }

    /// Linear scan for `key`; returns its RID if present.
    #[inline]
    pub fn find(&self, key: K) -> Option<u32> {
        let c = self.count as usize;
        self.keys[..c]
            .iter()
            .position(|&k| k == key)
            .map(|i| self.rids[i])
    }
}

/// Geometry description used by the space model and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLayout {
    /// Bytes per bucket.
    pub bucket_bytes: usize,
    /// Entry slots per bucket.
    pub entries: usize,
}

impl BucketLayout {
    /// Layout for key width `K::WIDTH` with 4-byte RIDs in 64-byte lines.
    pub fn for_key<K: Key, const E: usize>() -> Self {
        Self {
            bucket_bytes: core::mem::size_of::<Bucket<K, E>>(),
            entries: E,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_bucket_fits_one_cache_line() {
        assert_eq!(
            core::mem::size_of::<Bucket<u32, U32_BUCKET_ENTRIES>>(),
            64,
            "8-byte header + 7 * 8-byte pairs"
        );
    }

    #[test]
    fn push_until_full() {
        let mut b = Bucket::<u32, 3>::default();
        assert!(b.push(10, 0));
        assert!(b.push(20, 1));
        assert!(b.push(30, 2));
        assert!(!b.push(40, 3), "fourth push must report full");
        assert_eq!(b.count, 3);
    }

    #[test]
    fn find_scans_occupied_slots_only() {
        let mut b = Bucket::<u32, 4>::default();
        b.push(10, 5);
        b.push(20, 6);
        assert_eq!(b.find(10), Some(5));
        assert_eq!(b.find(20), Some(6));
        assert_eq!(
            b.find(0),
            None,
            "default key in unoccupied slot is not a match"
        );
    }

    #[test]
    fn layout_report() {
        let l = BucketLayout::for_key::<u32, 7>();
        assert_eq!(l.bucket_bytes, 64);
        assert_eq!(l.entries, 7);
    }
}
