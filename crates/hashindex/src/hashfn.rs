//! Hash functions for the bucket directory.
//!
//! §3.5: "Skewed data can seriously affect the performance of hash indices
//! unless we have a relatively sophisticated hash function, which will
//! increase the computation time." §6.2 uses the cheap one: "Our hash
//! function simply uses the low order bits of the key."
//!
//! Both choices are provided so the skew trade-off can be measured: the
//! paper's [`HashFn::LowBits`], and [`HashFn::Fibonacci`] (multiplicative
//! hashing by the 64-bit golden-ratio constant — Knuth §6.4, the
//! "sophisticated" option), which spreads strided key sets at the price of
//! one multiplication per probe.

/// Directory hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashFn {
    /// The paper's: low-order key bits. Fastest; collapses on keys that
    /// share low bits (strides, padded IDs).
    #[default]
    LowBits,
    /// Fibonacci (multiplicative) hashing: `(key · 2^64/φ) >> shift`.
    /// One multiply slower, robust to strided keys.
    Fibonacci,
}

/// 2^64 / golden ratio, the classic multiplicative-hash constant.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl HashFn {
    /// Map `bits` (the key's rank) to a bucket in `[0, dir_size)`;
    /// `dir_size` must be a power of two.
    #[inline]
    pub fn bucket(self, bits: u64, dir_size: usize) -> usize {
        debug_assert!(dir_size.is_power_of_two() && dir_size >= 1);
        let mask = (dir_size - 1) as u64;
        match self {
            HashFn::LowBits => (bits & mask) as usize,
            HashFn::Fibonacci => {
                let shift = 64 - dir_size.trailing_zeros().max(1);
                ((bits.wrapping_mul(FIB) >> shift) & mask) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_is_the_identity_mask() {
        assert_eq!(HashFn::LowBits.bucket(0x1234_5678, 256), 0x78);
        assert_eq!(HashFn::LowBits.bucket(255, 256), 255);
        assert_eq!(HashFn::LowBits.bucket(256, 256), 0);
    }

    #[test]
    fn both_stay_in_range() {
        for f in [HashFn::LowBits, HashFn::Fibonacci] {
            for dir in [1usize, 2, 64, 4096] {
                for k in [0u64, 1, 255, 1 << 40, u64::MAX] {
                    assert!(f.bucket(k, dir) < dir, "{f:?} dir={dir} k={k}");
                }
            }
        }
    }

    #[test]
    fn fibonacci_spreads_strided_keys() {
        // Keys all ≡ 0 mod 256: low-bits uses one bucket of 256; the
        // multiplicative hash spreads them near-uniformly.
        let dir = 256usize;
        let mut low = vec![0usize; dir];
        let mut fib = vec![0usize; dir];
        for i in 0..4096u64 {
            low[HashFn::LowBits.bucket(i * 256, dir)] += 1;
            fib[HashFn::Fibonacci.bucket(i * 256, dir)] += 1;
        }
        assert_eq!(*low.iter().max().unwrap(), 4096, "all collide");
        let fib_max = *fib.iter().max().unwrap();
        assert!(fib_max < 64, "fibonacci max bucket load = {fib_max}");
    }

    #[test]
    fn fibonacci_is_deterministic() {
        assert_eq!(
            HashFn::Fibonacci.bucket(42, 1024),
            HashFn::Fibonacci.bucket(42, 1024)
        );
    }
}
