//! Chained bucket hash index with cache-line-sized buckets.
//!
//! §3.5/§6.2: "we followed the techniques used in \[GBC98\] by using the
//! cache line size as the bucket size. Besides keys, each bucket also
//! contains a counter indicating the number of occupied slots in the bucket
//! and the pointer to the next bucket. Our hash function simply uses the
//! low order bits of the key."
//!
//! The hash index is the "fast but fat" end of the paper's space/time
//! frontier (Figs. 2/14): about 3× faster than a CSS-tree for point lookups
//! but ~20× the space, no ordered access (the only "N" in Fig. 7's
//! RID-ordered column), and sensitive to skew and to the directory-size
//! choice (the hash sweep in Fig. 12).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bucket;
pub mod hashfn;
pub mod table;

pub use bucket::{Bucket, BucketLayout};
pub use hashfn::HashFn;
pub use table::HashIndex;
