//! The chained-bucket hash table.
//!
//! §3.5: "Hash indices are fast in searching only if the length of each
//! bucket is small. This requires a fairly large directory size and thus a
//! fairly large amount of space. ... Hash indices do not preserve order."
//! The directory size is an explicit parameter so the Fig. 12 sweep (hash
//! directory sizes 2¹⁸..2²³) and the space/time frontier of Figs. 2/14 can
//! trade space against chain length.
//!
//! The hash function is the paper's: the key's low-order bits (§6.2),
//! which is "cheap to compute" but — as §3.5 warns — sensitive to skewed
//! key sets; the `skew` tests exercise exactly that.

use crate::bucket::{Bucket, NO_NEXT};
use crate::hashfn::HashFn;
use ccindex_common::{
    AccessTracer, AlignedBuf, IndexStats, Key, NoopTracer, SearchIndex, SpaceReport,
};

/// Chained bucket hash index with `E` entries per bucket.
///
/// Duplicate keys: only the *leftmost* occurrence of each key is inserted,
/// so `search` returns the same position every ordered method returns
/// (§3.6 semantics); the remaining duplicates are reachable by scanning the
/// sorted array rightwards from that position.
#[derive(Debug, Clone)]
pub struct HashIndex<K: Key, const E: usize> {
    directory: AlignedBuf<Bucket<K, E>>,
    overflow: AlignedBuf<Bucket<K, E>>,
    hash_fn: HashFn,
    len: usize,
    entries: usize,
    max_chain: usize,
}

impl<K: Key, const E: usize> HashIndex<K, E> {
    /// Build from a **sorted** slice (positions become RIDs) with an
    /// explicit power-of-two directory size and the paper's low-order-bit
    /// hash function.
    pub fn build_with_directory(keys: &[K], directory_size: usize) -> Self {
        Self::build_with_config(keys, directory_size, HashFn::LowBits)
    }

    /// Build with an explicit directory size *and* hash function — the
    /// §3.5 skew trade-off knob.
    pub fn build_with_config(keys: &[K], directory_size: usize, hash_fn: HashFn) -> Self {
        assert!(
            directory_size.is_power_of_two() && directory_size >= 1,
            "directory size must be a power of two"
        );
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        // Pass 1: leftmost occurrences and their chain loads.
        let mut loads = vec![0u32; directory_size];
        let mut entries = 0usize;
        let mut prev: Option<K> = None;
        for &k in keys {
            if prev == Some(k) {
                continue;
            }
            prev = Some(k);
            loads[hash_fn.bucket(k.hash_bits(), directory_size)] += 1;
            entries += 1;
        }
        // Overflow buckets needed per chain: ceil(load/E) - 1.
        let mut overflow_total = 0usize;
        let mut max_chain = 0usize;
        for &load in &loads {
            if load as usize > E {
                overflow_total += (load as usize - 1) / E;
            }
            max_chain = max_chain.max(if load == 0 {
                0
            } else {
                (load as usize - 1) / E + 1
            });
        }
        let mut directory: AlignedBuf<Bucket<K, E>> = AlignedBuf::new_zeroed(directory_size);
        for b in directory.iter_mut() {
            *b = Bucket::default();
        }
        let mut overflow: AlignedBuf<Bucket<K, E>> = AlignedBuf::new_zeroed(overflow_total);
        for b in overflow.iter_mut() {
            *b = Bucket::default();
        }
        // Pass 2: insert.
        let mut next_overflow = 0u32;
        let mut prev: Option<K> = None;
        for (pos, &k) in keys.iter().enumerate() {
            if prev == Some(k) {
                continue;
            }
            prev = Some(k);
            let h = hash_fn.bucket(k.hash_bits(), directory_size);
            if directory[h].push(k, pos as u32) {
                continue;
            }
            // Walk the chain to its tail, extending when full.
            let mut cur = directory[h].next;
            if cur == NO_NEXT {
                directory[h].next = next_overflow;
                cur = next_overflow;
                next_overflow += 1;
            }
            loop {
                if overflow[cur as usize].push(k, pos as u32) {
                    break;
                }
                let nxt = overflow[cur as usize].next;
                if nxt == NO_NEXT {
                    overflow[cur as usize].next = next_overflow;
                    next_overflow += 1;
                    let tail = overflow[cur as usize].next;
                    let ok = overflow[tail as usize].push(k, pos as u32);
                    debug_assert!(ok);
                    break;
                }
                cur = nxt;
            }
        }
        debug_assert_eq!(next_overflow as usize, overflow_total);
        Self {
            directory,
            overflow,
            hash_fn,
            len: keys.len(),
            entries,
            max_chain,
        }
    }

    /// Build with the default sizing: the smallest power-of-two directory
    /// whose expected load is below `E` entries per bucket with the
    /// paper's fudge factor h ≈ 1.2 of slack.
    pub fn build(keys: &[K]) -> Self {
        let distinct_estimate = keys.len().max(1);
        let target_buckets = (distinct_estimate as f64 * 1.2 / E as f64).ceil() as usize;
        let directory_size = target_buckets.next_power_of_two().max(1);
        Self::build_with_directory(keys, directory_size)
    }

    /// Directory size (buckets).
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Overflow buckets allocated.
    pub fn overflow_buckets(&self) -> usize {
        self.overflow.len()
    }

    /// Longest chain (buckets) — the skew indicator of §3.5.
    pub fn max_chain(&self) -> usize {
        self.max_chain
    }

    /// Distinct keys stored.
    pub fn distinct_keys(&self) -> usize {
        self.entries
    }

    #[inline]
    fn bucket_addr(&self, arena: &AlignedBuf<Bucket<K, E>>, idx: usize) -> usize {
        arena.base_addr() + idx * core::mem::size_of::<Bucket<K, E>>()
    }

    /// Probe for `key`, reporting each touched bucket to `tracer`.
    pub fn search_with<T: AccessTracer>(&self, key: K, tracer: &mut T) -> Option<usize> {
        if self.directory.is_empty() {
            return None;
        }
        let h = self.hash_fn.bucket(key.hash_bits(), self.directory.len());
        let bucket_bytes = core::mem::size_of::<Bucket<K, E>>();
        let first = &self.directory[h];
        tracer.read(self.bucket_addr(&self.directory, h), bucket_bytes);
        for _ in 0..first.count {
            tracer.compare();
        }
        if let Some(rid) = first.find(key) {
            return Some(rid as usize);
        }
        let mut cur = first.next;
        while cur != NO_NEXT {
            let b = &self.overflow[cur as usize];
            tracer.read(self.bucket_addr(&self.overflow, cur as usize), bucket_bytes);
            for _ in 0..b.count {
                tracer.compare();
            }
            if let Some(rid) = b.find(key) {
                return Some(rid as usize);
            }
            cur = b.next;
            tracer.descend();
        }
        None
    }
}

impl<K: Key, const E: usize> SearchIndex<K> for HashIndex<K, E> {
    fn name(&self) -> &'static str {
        "hash"
    }
    fn len(&self) -> usize {
        self.len
    }
    fn search(&self, key: K) -> Option<usize> {
        self.search_with(key, &mut NoopTracer)
    }
    fn search_traced(&self, key: K, tracer: &mut dyn AccessTracer) -> Option<usize> {
        self.search_with(key, &mut { tracer })
    }
    fn space(&self) -> SpaceReport {
        // Fig. 7: the RIDs inside the table are charged only in the
        // "direct" column; "indirect" counts the table's excess over the
        // raw RID list.
        let total = self.directory.size_bytes() + self.overflow.size_bytes();
        SpaceReport {
            indirect_bytes: total.saturating_sub(self.len * 4),
            direct_bytes: total,
        }
    }
    fn stats(&self) -> IndexStats {
        IndexStats {
            levels: self.max_chain as u32,
            internal_nodes: self.directory.len() + self.overflow.len(),
            branching: 1,
            node_bytes: core::mem::size_of::<Bucket<K, E>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::U32_BUCKET_ENTRIES;
    use ccindex_common::CountingTracer;

    type H = HashIndex<u32, U32_BUCKET_ENTRIES>;

    #[test]
    fn finds_every_key() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 3 + 1).collect();
        let h = H::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(h.search(k), Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_are_none() {
        let keys: Vec<u32> = (0..10_000).map(|i| i * 3 + 1).collect();
        let h = H::build(&keys);
        for i in (0..9_999u32).step_by(131) {
            assert_eq!(h.search(i * 3 + 2), None);
        }
    }

    #[test]
    fn duplicates_return_leftmost() {
        let keys = vec![2u32, 7, 7, 7, 9, 9];
        let h = H::build(&keys);
        assert_eq!(h.search(7), Some(1));
        assert_eq!(h.search(9), Some(4));
        assert_eq!(h.distinct_keys(), 3);
    }

    #[test]
    fn tiny_directory_forces_overflow_chains() {
        let keys: Vec<u32> = (0..1000).collect();
        let h = H::build_with_directory(&keys, 8);
        assert!(h.overflow_buckets() > 0);
        assert!(h.max_chain() > 10);
        for (i, &k) in keys.iter().enumerate().step_by(13) {
            assert_eq!(h.search(k), Some(i));
        }
    }

    #[test]
    fn default_sizing_keeps_chains_short() {
        let keys: Vec<u32> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let h = H::build(&sorted);
        assert!(h.max_chain() <= 3, "max chain {}", h.max_chain());
    }

    #[test]
    fn low_order_bit_hash_suffers_on_strided_keys() {
        // §3.5's skew warning: keys all ≡ 0 (mod 256) collide into 1/256th
        // of a 256+-bucket directory when hashing by low-order bits.
        let keys: Vec<u32> = (0..2048).map(|i| i * 256).collect();
        let h = H::build_with_directory(&keys, 256);
        assert!(
            h.max_chain() >= 2048 / U32_BUCKET_ENTRIES / 8,
            "expected pathological chaining, got {}",
            h.max_chain()
        );
        // Still correct, just slow.
        assert_eq!(h.search(256 * 100), Some(100));
    }

    #[test]
    fn fibonacci_hash_fixes_strided_skew() {
        // Same pathological keys as above; the "sophisticated" hash
        // function of §3.5 restores short chains.
        let keys: Vec<u32> = (0..2048).map(|i| i * 256).collect();
        let low = H::build_with_config(&keys, 256, crate::HashFn::LowBits);
        let fib = H::build_with_config(&keys, 256, crate::HashFn::Fibonacci);
        assert!(
            low.max_chain() > 10 * fib.max_chain(),
            "low {} vs fib {}",
            low.max_chain(),
            fib.max_chain()
        );
        for (i, &k) in keys.iter().enumerate().step_by(37) {
            assert_eq!(fib.search(k), Some(i));
            assert_eq!(fib.search(k + 1), None);
        }
    }

    #[test]
    fn probe_reads_whole_buckets() {
        let keys: Vec<u32> = (0..10_000).collect();
        let h = H::build(&keys);
        let mut t = CountingTracer::new();
        h.search_with(1234, &mut t);
        assert!(t.reads >= 1);
        assert_eq!(t.bytes_read % 64, 0, "bucket reads are line-sized");
    }

    #[test]
    fn space_direct_includes_rids() {
        let keys: Vec<u32> = (0..10_000).collect();
        let h = H::build(&keys);
        let s = h.space();
        assert_eq!(s.direct_bytes - s.indirect_bytes, 10_000 * 4);
        // Direct space ≈ directory + overflow; must exceed raw data size
        // (the "hash is fat" observation).
        assert!(s.direct_bytes > 10_000 * 4);
    }

    #[test]
    fn empty_table() {
        let h = H::build(&[]);
        assert_eq!(h.search(5), None);
        assert_eq!(h.len(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_directory() {
        let _ = H::build_with_directory(&[1, 2, 3], 100);
    }
}
