//! Grouped aggregation over sorted RID lists.
//!
//! OLAP queries (§1, §2.2) aggregate after selecting and joining. A RID
//! list sorted on the group-by column already clusters each group into a
//! contiguous run of equal domain IDs, so grouping is a single linear pass
//! — no hash table, and the per-group ranges are exactly the
//! `equal_range`s an ordered index reports.

use crate::column::Column;
use crate::domain::Value;
use crate::rid::RidList;

/// Supported aggregate functions over an `Int` measure column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count per group.
    Count,
    /// Sum of the measure.
    Sum,
    /// Minimum of the measure.
    Min,
    /// Maximum of the measure.
    Max,
}

/// One output group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// The group's (decoded) key value.
    pub group: Value,
    /// The aggregate result (`Count` is reported as `Int`).
    pub value: i64,
}

/// `SELECT group, agg(measure) FROM t GROUP BY group` where `rids` is the
/// RID list sorted on the group column. `measure` may be `None` for
/// `Count`. Results come out in group-value order (the "interesting
/// order" §2.2 mentions comes for free from the sorted RID list).
pub fn group_aggregate(
    group_col: &Column,
    rids: &RidList,
    measure: Option<&Column>,
    agg: AggFn,
) -> Vec<GroupRow> {
    if agg != AggFn::Count {
        let m = measure.expect("aggregate other than Count needs a measure column");
        assert_eq!(m.len(), group_col.len(), "measure length mismatch");
    }
    let keys = rids.keys().as_slice();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < keys.len() {
        let id = keys[start];
        let mut end = start + 1;
        while end < keys.len() && keys[end] == id {
            end += 1;
        }
        let value = match agg {
            AggFn::Count => (end - start) as i64,
            AggFn::Sum | AggFn::Min | AggFn::Max => {
                let m = measure.expect("checked above");
                let mut acc: Option<i64> = None;
                for pos in start..end {
                    let v = match m.value(rids.rid(pos)) {
                        Value::Int(v) => *v,
                        other => panic!("non-integer measure value {other}"),
                    };
                    acc = Some(match (acc, agg) {
                        (None, _) => v,
                        (Some(a), AggFn::Sum) => a + v,
                        (Some(a), AggFn::Min) => a.min(v),
                        (Some(a), AggFn::Max) => a.max(v),
                        (Some(_), AggFn::Count) => unreachable!(),
                    });
                }
                acc.expect("non-empty group")
            }
        };
        out.push(GroupRow {
            group: group_col.domain().decode(id).clone(),
            value,
        });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn setup() -> (crate::table::Table, RidList) {
        let t = TableBuilder::new("sales")
            .str_column("region", ["e", "w", "e", "n", "w", "e"])
            .int_column("amount", [10, 20, 30, 40, 50, 60])
            .build();
        let rl = RidList::for_column(t.column("region").unwrap());
        (t, rl)
    }

    #[test]
    fn count_per_group() {
        let (t, rl) = setup();
        let rows = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Count);
        assert_eq!(
            rows,
            vec![
                GroupRow {
                    group: "e".into(),
                    value: 3
                },
                GroupRow {
                    group: "n".into(),
                    value: 1
                },
                GroupRow {
                    group: "w".into(),
                    value: 2
                },
            ]
        );
    }

    #[test]
    fn sum_min_max_per_group() {
        let (t, rl) = setup();
        let region = t.column("region").unwrap();
        let amount = t.column("amount").unwrap();
        let sums = group_aggregate(region, &rl, Some(amount), AggFn::Sum);
        assert_eq!(
            sums[0],
            GroupRow {
                group: "e".into(),
                value: 100
            }
        ); // 10+30+60
        assert_eq!(
            sums[2],
            GroupRow {
                group: "w".into(),
                value: 70
            }
        ); // 20+50
        let mins = group_aggregate(region, &rl, Some(amount), AggFn::Min);
        assert_eq!(mins[0].value, 10);
        let maxs = group_aggregate(region, &rl, Some(amount), AggFn::Max);
        assert_eq!(maxs[0].value, 60);
    }

    #[test]
    fn groups_come_out_in_value_order() {
        let (t, rl) = setup();
        let rows = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Count);
        let order: Vec<String> = rows.iter().map(|r| r.group.to_string()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn empty_table_yields_no_groups() {
        let t = TableBuilder::new("empty").int_column("g", []).build();
        let rl = RidList::for_column(t.column("g").unwrap());
        assert!(group_aggregate(t.column("g").unwrap(), &rl, None, AggFn::Count).is_empty());
    }

    #[test]
    #[should_panic(expected = "needs a measure column")]
    fn sum_requires_measure() {
        let (t, rl) = setup();
        let _ = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Sum);
    }
}
