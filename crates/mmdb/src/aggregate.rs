//! Grouped aggregation over sorted RID lists.
//!
//! OLAP queries (§1, §2.2) aggregate after selecting and joining. A RID
//! list sorted on the group-by column already clusters each group into a
//! contiguous run of equal domain IDs, so grouping is a single linear pass
//! — no hash table, and the per-group ranges are exactly the
//! `equal_range`s an ordered index reports.

use crate::column::Column;
use crate::domain::Value;
use crate::rid::RidList;
use std::collections::BTreeMap;

/// Supported aggregate functions over an `Int` measure column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count per group.
    Count,
    /// Sum of the measure.
    Sum,
    /// Minimum of the measure.
    Min,
    /// Maximum of the measure.
    Max,
}

/// One output group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// The group's (decoded) key value.
    pub group: Value,
    /// The aggregate result (`Count` is reported as `Int`).
    pub value: i64,
}

/// Grouped aggregation over arbitrary `(group_rid, measure_rid)` pairs —
/// the operator a query plan runs when grouping *filtered* selections or
/// join output, where rows no longer arrive clustered by group. Groups
/// accumulate keyed by domain ID (an ordered map, so results still come
/// out in group-value order, matching [`group_aggregate`]), and the group
/// keys are decoded in one
/// [`decode_batch`](crate::domain::Domain::decode_batch) at the end.
///
/// The two RIDs of a pair may address different relations (group column
/// from one join side, measure from the other); for plain selections pass
/// each RID twice. `measure` may be `None` for `Count`. Callers must have
/// checked that the measure column is integer-valued for Sum/Min/Max.
pub fn group_aggregate_pairs(
    group_col: &Column,
    measure: Option<&Column>,
    pairs: impl IntoIterator<Item = (u32, u32)>,
    agg: AggFn,
) -> Vec<GroupRow> {
    if agg != AggFn::Count {
        measure.expect("aggregate other than Count needs a measure column");
    }
    let mut acc = BTreeMap::new();
    accumulate_pairs(&mut acc, group_col, measure, pairs, agg);
    decode_accumulator(group_col, acc)
}

/// Parallel [`group_aggregate_pairs`]: the pairs are partitioned into one
/// contiguous chunk per worker, each worker folds its chunk into a
/// **partial** per-group accumulator, and the partials are merged at the
/// join barrier (every [`AggFn`] is commutative and associative, and the
/// ordered accumulator map keys groups by domain ID, so the merged result
/// — including group order — is byte-identical to the sequential pass).
/// `threads == 0` means one worker per core; `threads == 1` runs inline.
pub fn group_aggregate_pairs_par(
    group_col: &Column,
    measure: Option<&Column>,
    pairs: &[(u32, u32)],
    agg: AggFn,
    threads: usize,
) -> Vec<GroupRow> {
    group_aggregate_chunked_par(group_col, measure, pairs, |&p| p, agg, threads)
}

/// The general partitioned grouping: any sliceable row source plus a
/// pair-extraction closure, so the executor can chunk join rows or
/// selected RIDs **in place** instead of materialising an intermediate
/// `(group_rid, measure_rid)` vector. [`group_aggregate_pairs_par`] is
/// the `items = pairs` instance.
pub fn group_aggregate_chunked_par<T, F>(
    group_col: &Column,
    measure: Option<&Column>,
    items: &[T],
    to_pair: F,
    agg: AggFn,
    threads: usize,
) -> Vec<GroupRow>
where
    T: Sync,
    F: Fn(&T) -> (u32, u32) + Sync,
{
    if agg != AggFn::Count {
        measure.expect("aggregate other than Count needs a measure column");
    }
    let partials = ccindex_parallel::WorkerPool::new(threads).map_chunks(items, |chunk| {
        let mut acc = BTreeMap::new();
        accumulate_pairs(
            &mut acc,
            group_col,
            measure,
            chunk.iter().map(&to_pair),
            agg,
        );
        acc
    });
    decode_accumulator(group_col, merge_partials(agg, partials))
}

/// Partitioned grouping of whole-table row ranges (`(r, r)` pairs for
/// every RID in `0..rows`) — no slice exists to chunk, so the RID space
/// itself is partitioned.
pub fn group_aggregate_rows_par(
    group_col: &Column,
    measure: Option<&Column>,
    rows: u32,
    agg: AggFn,
    threads: usize,
) -> Vec<GroupRow> {
    if agg != AggFn::Count {
        measure.expect("aggregate other than Count needs a measure column");
    }
    let pool = ccindex_parallel::WorkerPool::new(threads);
    let ranges = ccindex_parallel::partition(rows as usize, pool.threads());
    let partials = pool.run(ranges.len(), |i| {
        let mut acc = BTreeMap::new();
        let range = ranges[i].start as u32..ranges[i].end as u32;
        accumulate_pairs(&mut acc, group_col, measure, range.map(|r| (r, r)), agg);
        acc
    });
    decode_accumulator(group_col, merge_partials(agg, partials))
}

/// Merge per-worker partial accumulators at the join barrier.
fn merge_partials(
    agg: AggFn,
    partials: impl IntoIterator<Item = BTreeMap<u32, i64>>,
) -> BTreeMap<u32, i64> {
    let mut merged: BTreeMap<u32, i64> = BTreeMap::new();
    for partial in partials {
        for (id, v) in partial {
            merged
                .entry(id)
                .and_modify(|a| *a = combine(agg, *a, v))
                .or_insert(v);
        }
    }
    merged
}

/// Fold one combined value into the accumulator (`Count` partials merge
/// by addition like `Sum`).
fn combine(agg: AggFn, a: i64, v: i64) -> i64 {
    match agg {
        AggFn::Count | AggFn::Sum => a + v,
        AggFn::Min => a.min(v),
        AggFn::Max => a.max(v),
    }
}

/// The shared accumulation loop of the sequential and per-worker passes.
fn accumulate_pairs(
    acc: &mut BTreeMap<u32, i64>,
    group_col: &Column,
    measure: Option<&Column>,
    pairs: impl IntoIterator<Item = (u32, u32)>,
    agg: AggFn,
) {
    for (group_rid, measure_rid) in pairs {
        let id = group_col.id(group_rid);
        match agg {
            AggFn::Count => *acc.entry(id).or_insert(0) += 1,
            AggFn::Sum | AggFn::Min | AggFn::Max => {
                let v = match measure.expect("checked by callers").value(measure_rid) {
                    Value::Int(v) => *v,
                    other => panic!("non-integer measure value {other}"),
                };
                acc.entry(id)
                    .and_modify(|a| *a = combine(agg, *a, v))
                    .or_insert(v);
            }
        }
    }
}

/// Decode the accumulator's domain IDs in one batch and emit the rows in
/// group-value order (the map's iteration order).
fn decode_accumulator(group_col: &Column, acc: BTreeMap<u32, i64>) -> Vec<GroupRow> {
    let ids: Vec<u32> = acc.keys().copied().collect();
    let groups = group_col.domain().decode_batch(&ids);
    groups
        .into_iter()
        .zip(acc.into_values())
        .map(|(group, value)| GroupRow { group, value })
        .collect()
}

/// `SELECT group, agg(measure) FROM t GROUP BY group` where `rids` is the
/// RID list sorted on the group column. `measure` may be `None` for
/// `Count`. Results come out in group-value order (the "interesting
/// order" §2.2 mentions comes for free from the sorted RID list).
pub fn group_aggregate(
    group_col: &Column,
    rids: &RidList,
    measure: Option<&Column>,
    agg: AggFn,
) -> Vec<GroupRow> {
    if agg != AggFn::Count {
        let m = measure.expect("aggregate other than Count needs a measure column");
        assert_eq!(m.len(), group_col.len(), "measure length mismatch");
    }
    let keys = rids.keys().as_slice();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < keys.len() {
        let id = keys[start];
        let mut end = start + 1;
        while end < keys.len() && keys[end] == id {
            end += 1;
        }
        let value = match agg {
            AggFn::Count => (end - start) as i64,
            AggFn::Sum | AggFn::Min | AggFn::Max => {
                let m = measure.expect("checked above");
                let mut acc: Option<i64> = None;
                for pos in start..end {
                    let v = match m.value(rids.rid(pos)) {
                        Value::Int(v) => *v,
                        other => panic!("non-integer measure value {other}"),
                    };
                    acc = Some(match (acc, agg) {
                        (None, _) => v,
                        (Some(a), AggFn::Sum) => a + v,
                        (Some(a), AggFn::Min) => a.min(v),
                        (Some(a), AggFn::Max) => a.max(v),
                        (Some(_), AggFn::Count) => unreachable!(),
                    });
                }
                acc.expect("non-empty group")
            }
        };
        out.push(GroupRow {
            group: group_col.domain().decode(id).clone(),
            value,
        });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn setup() -> (crate::table::Table, RidList) {
        let t = TableBuilder::new("sales")
            .str_column("region", ["e", "w", "e", "n", "w", "e"])
            .int_column("amount", [10, 20, 30, 40, 50, 60])
            .build()
            .expect("equal-length columns");
        let rl = RidList::for_column(t.column("region").unwrap());
        (t, rl)
    }

    #[test]
    fn count_per_group() {
        let (t, rl) = setup();
        let rows = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Count);
        assert_eq!(
            rows,
            vec![
                GroupRow {
                    group: "e".into(),
                    value: 3
                },
                GroupRow {
                    group: "n".into(),
                    value: 1
                },
                GroupRow {
                    group: "w".into(),
                    value: 2
                },
            ]
        );
    }

    #[test]
    fn sum_min_max_per_group() {
        let (t, rl) = setup();
        let region = t.column("region").unwrap();
        let amount = t.column("amount").unwrap();
        let sums = group_aggregate(region, &rl, Some(amount), AggFn::Sum);
        assert_eq!(
            sums[0],
            GroupRow {
                group: "e".into(),
                value: 100
            }
        ); // 10+30+60
        assert_eq!(
            sums[2],
            GroupRow {
                group: "w".into(),
                value: 70
            }
        ); // 20+50
        let mins = group_aggregate(region, &rl, Some(amount), AggFn::Min);
        assert_eq!(mins[0].value, 10);
        let maxs = group_aggregate(region, &rl, Some(amount), AggFn::Max);
        assert_eq!(maxs[0].value, 60);
    }

    #[test]
    fn groups_come_out_in_value_order() {
        let (t, rl) = setup();
        let rows = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Count);
        let order: Vec<String> = rows.iter().map(|r| r.group.to_string()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn pairs_match_sorted_rid_list_on_whole_tables() {
        let (t, rl) = setup();
        let region = t.column("region").unwrap();
        let amount = t.column("amount").unwrap();
        let all: Vec<(u32, u32)> = (0..region.len() as u32).map(|r| (r, r)).collect();
        for agg in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max] {
            let measure = (agg != AggFn::Count).then_some(amount);
            assert_eq!(
                group_aggregate_pairs(region, measure, all.iter().copied(), agg),
                group_aggregate(region, &rl, measure, agg),
                "{agg:?}"
            );
        }
    }

    #[test]
    fn pairs_handle_filtered_subsets_and_cross_relation_measures() {
        let (t, _) = setup();
        let region = t.column("region").unwrap();
        let amount = t.column("amount").unwrap();
        // Only rows 0, 2, 4: regions e, e, w with amounts 10, 30, 50.
        let pairs = [(0u32, 0u32), (2, 2), (4, 4)];
        let sums = group_aggregate_pairs(region, Some(amount), pairs, AggFn::Sum);
        assert_eq!(
            sums,
            vec![
                GroupRow {
                    group: "e".into(),
                    value: 40
                },
                GroupRow {
                    group: "w".into(),
                    value: 50
                },
            ]
        );
        // Measure RID differing from group RID (the join shape): group by
        // row 0's region but measure row 5's amount.
        let cross = group_aggregate_pairs(region, Some(amount), [(0u32, 5u32)], AggFn::Max);
        assert_eq!(cross[0].value, 60);
        assert!(group_aggregate_pairs(region, None, [], AggFn::Count).is_empty());
    }

    #[test]
    fn parallel_pairs_match_sequential_for_every_aggregate() {
        // Enough rows that the chunking is non-trivial at 8 workers.
        let n = 5_000u32;
        let t = TableBuilder::new("sales")
            .str_column(
                "region",
                (0..n).map(|i| ["e", "w", "n", "s"][i as usize % 4]),
            )
            .int_column("amount", (0..n).map(|i| (i as i64 * 37) % 1_000 - 200))
            .build()
            .expect("equal-length columns");
        let region = t.column("region").unwrap();
        let amount = t.column("amount").unwrap();
        let pairs: Vec<(u32, u32)> = (0..n).map(|r| (r, (r + 7) % n)).collect();
        for agg in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max] {
            let measure = (agg != AggFn::Count).then_some(amount);
            let seq = group_aggregate_pairs(region, measure, pairs.iter().copied(), agg);
            for threads in [0usize, 1, 2, 8] {
                assert_eq!(
                    group_aggregate_pairs_par(region, measure, &pairs, agg, threads),
                    seq,
                    "{agg:?} threads={threads}"
                );
            }
        }
        assert!(group_aggregate_pairs_par(region, None, &[], AggFn::Count, 8).is_empty());
        // The in-place chunked and whole-table range variants agree too.
        let all: Vec<(u32, u32)> = (0..n).map(|r| (r, r)).collect();
        for agg in [AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max] {
            let measure = (agg != AggFn::Count).then_some(amount);
            let seq = group_aggregate_pairs(region, measure, all.iter().copied(), agg);
            for threads in [0usize, 1, 2, 8] {
                assert_eq!(
                    group_aggregate_chunked_par(region, measure, &all, |&p| p, agg, threads),
                    seq,
                    "{agg:?} threads={threads}"
                );
                assert_eq!(
                    group_aggregate_rows_par(region, measure, n, agg, threads),
                    seq,
                    "{agg:?} threads={threads}"
                );
            }
        }
        assert!(group_aggregate_rows_par(region, None, 0, AggFn::Count, 8).is_empty());
    }

    #[test]
    fn empty_table_yields_no_groups() {
        let t = TableBuilder::new("empty")
            .int_column("g", [])
            .build()
            .expect("one column");
        let rl = RidList::for_column(t.column("g").unwrap());
        assert!(group_aggregate(t.column("g").unwrap(), &rl, None, AggFn::Count).is_empty());
    }

    #[test]
    #[should_panic(expected = "needs a measure column")]
    fn sum_requires_measure() {
        let (t, rl) = setup();
        let _ = group_aggregate(t.column("region").unwrap(), &rl, None, AggFn::Sum);
    }
}
