//! Domain-encoded columns.
//!
//! A column stores one 4-byte domain ID per row ("only pointers to domain
//! values are stored in place in each column", §2.1); the values live in
//! the column's [`Domain`]. This gives the paper's three benefits:
//! duplicate-free value storage, fixed-width rows regardless of value
//! type, and ID comparisons standing in for value comparisons.

use crate::domain::{Domain, Value};

/// One domain-encoded column.
#[derive(Debug, Clone)]
pub struct Column {
    domain: Domain,
    ids: Vec<u32>,
}

impl Column {
    /// Encode raw row values into a fresh column (builds the domain).
    pub fn from_values(values: &[Value]) -> Self {
        let domain = Domain::from_values(values.to_vec());
        let ids = values
            .iter()
            .map(|v| domain.encode(v).expect("value came from this input"))
            .collect();
        Self { domain, ids }
    }

    /// Construct from pre-encoded parts (used by batch updates).
    pub fn from_parts(domain: Domain, ids: Vec<u32>) -> Self {
        assert!(
            ids.iter().all(|&id| (id as usize) < domain.len()),
            "id out of domain range"
        );
        Self { domain, ids }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The column's domain dictionary.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Domain ID of row `rid`.
    pub fn id(&self, rid: u32) -> u32 {
        self.ids[rid as usize]
    }

    /// Decoded value of row `rid`.
    pub fn value(&self, rid: u32) -> &Value {
        self.domain.decode(self.id(rid))
    }

    /// All row IDs (the fixed-width in-place data).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// In-place bytes (4 per row) — what §2.1's encoding saves versus raw
    /// values is visible by comparing with `domain().size_bytes()`.
    pub fn inplace_bytes(&self) -> usize {
        self.ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_and_decodes_rows() {
        let vals: Vec<Value> = ["b", "a", "c", "a", "b"]
            .iter()
            .map(|&s| s.into())
            .collect();
        let col = Column::from_values(&vals);
        assert_eq!(col.len(), 5);
        assert_eq!(col.domain().len(), 3);
        for (rid, v) in vals.iter().enumerate() {
            assert_eq!(col.value(rid as u32), v);
        }
        // "a" < "b" < "c" => ids 0,1,2 in value order.
        assert_eq!(col.ids(), &[1, 0, 2, 0, 1]);
    }

    #[test]
    fn duplicates_share_domain_entries() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 10)).collect();
        let col = Column::from_values(&vals);
        assert_eq!(col.domain().len(), 10);
        assert_eq!(col.inplace_bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "out of domain range")]
    fn from_parts_validates_ids() {
        let d = Domain::from_values(vec![Value::Int(1)]);
        let _ = Column::from_parts(d, vec![0, 1]);
    }
}
