//! Sorted domain dictionaries (§2.1).
//!
//! "When data is first loaded into main memory, distinct data values are
//! stored in an external structure — domain — and only pointers to domain
//! values are stored in place in each column. ... We go further than
//! \[AHK85\] by keeping the domain values in order and associate each value
//! with a domain ID (represented by an integer). As a result, we can
//! process both equality and inequality tests on domain IDs directly."
//!
//! Because the domain is sorted, **domain-ID order equals value order**:
//! `encode(a) < encode(b) ⇔ a < b`, which is what lets range predicates run
//! on the 4-byte IDs and lets every index in this workspace index IDs
//! instead of (possibly variable-length) values.

use std::sync::Arc;

/// A database value. Variable-length strings demonstrate benefit (b) of
/// domain encoding ("simplified handling of variable-length fields").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A sorted dictionary of the distinct values of one column.
///
/// Domain IDs are dense `0..len` integers in value order. "Transforming
/// domain values to domain IDs ... requires searching on the domain"
/// (§2.2) — [`Domain::encode`] is that search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Arc<Vec<Value>>,
}

impl Domain {
    /// Build from any collection of values (deduplicated and sorted).
    pub fn from_values(mut values: Vec<Value>) -> Self {
        values.sort_unstable();
        values.dedup();
        Self {
            values: Arc::new(values),
        }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Domain ID of `value`, if present (binary search on the sorted
    /// domain — itself one of the paper's three index consumers).
    pub fn encode(&self, value: &Value) -> Option<u32> {
        self.values.binary_search(value).ok().map(|i| i as u32)
    }

    /// Domain IDs for a whole batch of values; `out[i]` is
    /// `encode(values[i])`.
    ///
    /// "Transforming domain values to domain IDs requires searching on
    /// the domain" (§2.2), and the query operators transform constants by
    /// the batch, so the search runs [`DEFAULT_BATCH_LANES`] interleaved
    /// bisections: every live probe advances one step per round, keeping
    /// the round's dictionary accesses independent of one another — the
    /// same software pipelining the CSS-trees apply to directory descents.
    ///
    /// [`DEFAULT_BATCH_LANES`]: ccindex_common::DEFAULT_BATCH_LANES
    pub fn encode_batch(&self, values: &[Value]) -> Vec<Option<u32>> {
        const LANES: usize = ccindex_common::DEFAULT_BATCH_LANES;
        let n = self.values.len();
        let mut out = vec![None; values.len()];
        if n == 0 {
            return out;
        }
        for (chunk_idx, chunk) in values.chunks(LANES).enumerate() {
            let base = chunk_idx * LANES;
            let mut lo = [0usize; LANES];
            let mut hi = [n; LANES];
            let mut live = true;
            while live {
                live = false;
                for (lane, probe) in chunk.iter().enumerate() {
                    if lo[lane] < hi[lane] {
                        let mid = lo[lane] + (hi[lane] - lo[lane]) / 2;
                        if self.values[mid] < *probe {
                            lo[lane] = mid + 1;
                        } else {
                            hi[lane] = mid;
                        }
                        live |= lo[lane] < hi[lane];
                    }
                }
            }
            for (lane, probe) in chunk.iter().enumerate() {
                let pos = lo[lane];
                if pos < n && self.values[pos] == *probe {
                    out[base + lane] = Some(pos as u32);
                }
            }
        }
        out
    }

    /// ID of the first domain value `>= value` (equals `len` when every
    /// value is smaller). This is how inequality predicates on raw values
    /// become inequality predicates on IDs.
    pub fn lower_bound_id(&self, value: &Value) -> u32 {
        self.values.partition_point(|v| v < value) as u32
    }

    /// Inclusive ID range corresponding to the inclusive value range
    /// `[lo, hi]`; `None` when no domain value falls inside. An inverted
    /// range (`lo > hi`) contains no value, so it is `None` too — not a
    /// panic: range predicates arrive from untrusted query (and, through
    /// the serving layer, client) input, and the physical layer stays
    /// panic-free by construction.
    pub fn id_range(&self, lo: &Value, hi: &Value) -> Option<(u32, u32)> {
        if lo > hi {
            return None;
        }
        let start = self.lower_bound_id(lo);
        let end = self.values.partition_point(|v| v <= hi) as u32;
        (start < end).then(|| (start, end - 1))
    }

    /// The value for `id`.
    pub fn decode(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Decoded values for a whole batch of IDs; `out[i]` is
    /// `decode(ids[i]).clone()` — the inverse of [`Domain::encode_batch`].
    ///
    /// Decoding is a plain array gather (no search), so unlike encoding it
    /// needs no interleaving; the batch form exists so result sets can
    /// surface decoded values in one call instead of a per-row `decode`.
    pub fn decode_batch(&self, ids: &[u32]) -> Vec<Value> {
        ids.iter()
            .map(|&id| self.values[id as usize].clone())
            .collect()
    }

    /// All values in ID (= value) order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Approximate heap footprint of the dictionary in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::Int(_) => core::mem::size_of::<Value>(),
                Value::Str(s) => core::mem::size_of::<Value>() + s.len(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Domain {
        Domain::from_values(vec![
            "cherry".into(),
            "apple".into(),
            "banana".into(),
            "apple".into(), // duplicate collapses
        ])
    }

    #[test]
    fn ids_are_dense_and_value_ordered() {
        let d = domain();
        assert_eq!(d.len(), 3);
        assert_eq!(d.encode(&"apple".into()), Some(0));
        assert_eq!(d.encode(&"banana".into()), Some(1));
        assert_eq!(d.encode(&"cherry".into()), Some(2));
        assert_eq!(d.encode(&"durian".into()), None);
    }

    #[test]
    fn id_order_equals_value_order() {
        // The §2.1 property: comparisons on IDs == comparisons on values.
        let d = Domain::from_values((0..100).map(|i| Value::Int(i * 7)).collect());
        for a in 0..100u32 {
            for b in 0..100u32 {
                assert_eq!(
                    d.decode(a) < d.decode(b),
                    a < b,
                    "IDs must be value-ordered"
                );
            }
        }
    }

    #[test]
    fn inequality_predicates_on_ids() {
        let d = Domain::from_values((0..50).map(|i| Value::Int(i * 10)).collect());
        // value < 95  <=>  id < lower_bound_id(95) = 10.
        assert_eq!(d.lower_bound_id(&Value::Int(95)), 10);
        assert_eq!(d.lower_bound_id(&Value::Int(90)), 9);
        assert_eq!(d.lower_bound_id(&Value::Int(-5)), 0);
        assert_eq!(d.lower_bound_id(&Value::Int(10_000)), 50);
    }

    #[test]
    fn id_range_maps_value_ranges() {
        let d = Domain::from_values((0..50).map(|i| Value::Int(i * 10)).collect());
        assert_eq!(
            d.id_range(&Value::Int(95), &Value::Int(130)),
            Some((10, 13))
        );
        assert_eq!(
            d.id_range(&Value::Int(100), &Value::Int(100)),
            Some((10, 10))
        );
        assert_eq!(d.id_range(&Value::Int(101), &Value::Int(109)), None);
    }

    #[test]
    fn encode_batch_matches_encode() {
        let d = Domain::from_values((0..137).map(|i| Value::Int(i * 3)).collect());
        let probes: Vec<Value> = (0..450).map(|i| Value::Int(i - 20)).collect();
        let expected: Vec<Option<u32>> = probes.iter().map(|v| d.encode(v)).collect();
        assert_eq!(d.encode_batch(&probes), expected);
        // Degenerate shapes: empty batch, empty domain, ragged tails.
        assert!(d.encode_batch(&[]).is_empty());
        let empty = Domain::from_values(vec![]);
        assert_eq!(empty.encode_batch(&probes[..3]), vec![None, None, None]);
        for len in [1usize, 7, 8, 9, 15, 16, 17] {
            assert_eq!(d.encode_batch(&probes[..len]), expected[..len]);
        }
    }

    #[test]
    fn decode_batch_inverts_encode_batch() {
        let d = Domain::from_values((0..97).map(|i| Value::Int(i * 5)).collect());
        let probes: Vec<Value> = (0..97).rev().map(|i| Value::Int(i * 5)).collect();
        let ids: Vec<u32> = d
            .encode_batch(&probes)
            .into_iter()
            .map(|id| id.expect("all present"))
            .collect();
        assert_eq!(d.decode_batch(&ids), probes);
        assert!(d.decode_batch(&[]).is_empty());
    }

    #[test]
    fn decode_roundtrip() {
        let d = domain();
        for id in 0..d.len() as u32 {
            assert_eq!(d.encode(d.decode(id)).unwrap(), id);
        }
    }

    #[test]
    fn mixed_type_ordering_is_total() {
        // Ints sort before strings (enum variant order): a quirk, but
        // total — domains with mixed types still behave.
        let d = Domain::from_values(vec![Value::Str("a".into()), Value::Int(5)]);
        assert_eq!(d.encode(&Value::Int(5)), Some(0));
        assert_eq!(d.encode(&Value::Str("a".into())), Some(1));
    }

    #[test]
    fn id_range_answers_inverted_with_none() {
        // An inverted range contains no value — empty, never a panic
        // (ranges arrive from untrusted query/client input).
        let d = domain();
        assert_eq!(d.id_range(&Value::Int(5), &Value::Int(1)), None);
    }
}
