//! The [`Database`] engine: a system catalog owning tables, RID lists and
//! indexes.
//!
//! §2 of the paper situates CSS-trees inside a main-memory
//! decision-support *system* — relations, per-column sorted RID lists,
//! and "an index" chosen per access path. The free functions in
//! [`query`](crate::query) are that system's physical operators; this
//! module is the system itself. A [`Database`] registers [`Table`]s,
//! builds and owns one [`RidList`] per indexed column, and keys any
//! number of [`IndexHandle`]s per column by [`IndexKind`] — so an index
//! is built once and reused by every selection and join that touches the
//! column, instead of being threaded by hand through each call.
//!
//! Queries start at [`Database::query`], which hands back the composable
//! builder in [`plan`](crate::plan):
//!
//! ```
//! use mmdb::{eq, between, Database, IndexKind, TableBuilder};
//!
//! let mut db = Database::new();
//! db.register(
//!     TableBuilder::new("sales")
//!         .int_column("amount", [120, 40, 975, 40])
//!         .str_column("region", ["east", "west", "east", "east"])
//!         .build()?,
//! )?;
//! db.create_index("sales", "amount", IndexKind::FullCss)?;
//! db.create_index("sales", "region", IndexKind::Hash)?;
//!
//! let hits = db
//!     .query("sales")
//!     .filter(eq("region", "east"))
//!     .filter(between("amount", 100, 1000))
//!     .run()?;
//! assert_eq!(hits.rids(), &[0, 2]);
//! # Ok::<(), mmdb::MmdbError>(())
//! ```
//!
//! Updates follow the paper's OLAP cycle (§2.3): mutate a column
//! wholesale, then [`Database::rebuild_column`] reruns the batch-update
//! cycle ([`apply_batch_kinds_par`]) for every index registered on it —
//! the independent per-kind rebuilds fanning out across the worker pool
//! sized by the catalog's [`ExecOptions`].

use crate::column::Column;
use crate::domain::Value;
use crate::error::{MmdbError, Result};
use crate::index_choice::{IndexHandle, IndexKind};
use crate::plan::{ExecOptions, Query};
use crate::rid::RidList;
use crate::table::Table;
use crate::update::apply_batch_kinds_par;
use std::collections::BTreeMap;
use std::time::Duration;

/// The engine: tables plus their access paths, behind name resolution
/// that fails with a typed, offender-naming [`MmdbError`] instead of a
/// panic.
#[derive(Debug)]
pub struct Database {
    tables: BTreeMap<String, TableEntry>,
    /// Catalog-wide execution knobs every compiled plan inherits (unless
    /// the query overrides them with [`Query::exec`]).
    exec: ExecOptions,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
pub(crate) struct TableEntry {
    pub(crate) table: Table,
    /// Access paths, created lazily: a column gets an entry when its
    /// first index is built.
    pub(crate) columns: BTreeMap<String, ColumnEntry>,
}

/// A column's access paths: the sorted RID list every index of the
/// column shares, and the indexes keyed by kind.
#[derive(Debug)]
pub(crate) struct ColumnEntry {
    pub(crate) rids: RidList,
    pub(crate) indexes: BTreeMap<IndexKind, IndexHandle>,
}

/// What one [`Database::rebuild_column`] cycle did, per §2.3's
/// "rebuild an index from scratch after a batch of updates".
#[derive(Debug)]
pub struct RebuildReport {
    /// Time to re-sort the column into its RID list (the merge phase of
    /// the cycle; a wholesale column replacement re-sorts rather than
    /// merging deltas).
    pub sort_time: Duration,
    /// Per-kind from-scratch rebuild times (Fig. 9's measurement).
    pub rebuilds: Vec<(IndexKind, Duration)>,
}

impl Database {
    /// An empty catalog. Execution options start from
    /// [`ExecOptions::from_env`], so `CCINDEX_THREADS=8` switches every
    /// query of a process to partitioned execution without code changes
    /// (the compiled-in default is sequential).
    pub fn new() -> Self {
        Self {
            tables: BTreeMap::new(),
            exec: ExecOptions::from_env(),
        }
    }

    /// Set the catalog-wide [`ExecOptions`]: worker threads for the
    /// partitioned equality/range/join/group operators and interleave
    /// lanes for batch-aware indexes. Plans compiled afterwards record
    /// these; running plans are unaffected.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        self.exec = options;
    }

    /// The catalog-wide [`ExecOptions`] new plans inherit.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Register a table under its own name. Fails with
    /// [`MmdbError::DuplicateTable`] if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(MmdbError::DuplicateTable { table: name });
        }
        self.tables.insert(
            name,
            TableEntry {
                table,
                columns: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Registered table names, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The table registered as `name`.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|e| &e.table)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: name.to_owned(),
            })
    }

    /// Build (or rebuild) a `kind` index on `table.column`. The column's
    /// sorted [`RidList`] is computed on its first index and shared by
    /// all of them.
    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        let col_entry = entry.columns.entry(column.to_owned()).or_insert_with(|| {
            let col = entry.table.column(column).expect("checked above");
            ColumnEntry {
                rids: RidList::for_column(col),
                indexes: BTreeMap::new(),
            }
        });
        let handle = IndexHandle::build(kind, col_entry.rids.keys());
        col_entry.indexes.insert(kind, handle);
        Ok(())
    }

    /// Drop the `kind` index on `table.column` (the RID list stays while
    /// any other kind remains).
    pub fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let table_name = table.to_owned();
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table_name,
                column: column.to_owned(),
            });
        }
        let col_entry = entry
            .columns
            .get_mut(column)
            .ok_or_else(|| MmdbError::NoIndex {
                table: table_name.clone(),
                column: column.to_owned(),
            })?;
        if col_entry.indexes.remove(&kind).is_none() {
            return Err(MmdbError::IndexNotBuilt {
                table: table_name,
                column: column.to_owned(),
                kind,
            });
        }
        if col_entry.indexes.is_empty() {
            entry.columns.remove(column);
        }
        Ok(())
    }

    /// The sorted RID list the catalog owns for `table.column` (present
    /// once any index exists on the column).
    pub fn rid_list(&self, table: &str, column: &str) -> Result<&RidList> {
        Ok(&self.column_entry(table, column)?.rids)
    }

    /// The `kind` index on `table.column`.
    pub fn index(&self, table: &str, column: &str, kind: IndexKind) -> Result<&IndexHandle> {
        self.column_entry(table, column)?
            .indexes
            .get(&kind)
            .ok_or_else(|| MmdbError::IndexNotBuilt {
                table: table.to_owned(),
                column: column.to_owned(),
                kind,
            })
    }

    /// Which kinds are built on `table.column`, in [`IndexKind`] order.
    pub fn indexed_kinds(&self, table: &str, column: &str) -> Result<Vec<IndexKind>> {
        Ok(self
            .column_entry(table, column)?
            .indexes
            .keys()
            .copied()
            .collect())
    }

    /// Replace a column's values wholesale (the OLAP batch-update entry
    /// point), then run the rebuild cycle over its indexes — an empty
    /// report if the column has none. The new values must keep the
    /// table's row count; every error path leaves the table untouched.
    pub fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<RebuildReport> {
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        if values.len() != entry.table.rows() {
            return Err(MmdbError::RaggedColumn {
                table: table.to_owned(),
                column: column.to_owned(),
                expected: entry.table.rows(),
                got: values.len(),
            });
        }
        let indexed = entry.columns.contains_key(column);
        entry
            .table
            .replace_column(column, Column::from_values(&values));
        if indexed {
            self.rebuild_column(table, column)
        } else {
            Ok(RebuildReport {
                sort_time: Duration::ZERO,
                rebuilds: Vec::new(),
            })
        }
    }

    /// Re-derive `table.column`'s RID list from the (possibly mutated)
    /// column and rebuild every index registered on it from scratch via
    /// the [`apply_batch_kinds_par`] cycle — §2.3: "it may be relatively
    /// cheap to rebuild an index from scratch after a batch of updates."
    /// The per-kind rebuilds are independent, so they fan out across the
    /// worker pool sized by the catalog's [`ExecOptions::threads`]
    /// (`1` rebuilds sequentially; `0` spawns one worker per kind up to
    /// the core count — each job here is a whole index build, so the
    /// kind count, not a probe estimate, is the right partition unit).
    pub fn rebuild_column(&mut self, table: &str, column: &str) -> Result<RebuildReport> {
        let threads = self.exec.threads;
        let table_name = table.to_owned();
        let entry = self.entry_mut(table)?;
        let col = entry
            .table
            .column(column)
            .ok_or_else(|| MmdbError::UnknownColumn {
                table: table_name.clone(),
                column: column.to_owned(),
            })?;
        let col_entry = entry
            .columns
            .get_mut(column)
            .ok_or_else(|| MmdbError::NoIndex {
                table: table_name,
                column: column.to_owned(),
            })?;
        let t0 = std::time::Instant::now();
        col_entry.rids = RidList::for_column(col);
        let sort_time = t0.elapsed();
        // A wholesale replacement carries no key-level deltas, so the
        // cycle runs with an empty batch: pure from-scratch rebuilds,
        // one pool job per registered kind.
        let kinds: Vec<IndexKind> = col_entry.indexes.keys().copied().collect();
        let cycle = apply_batch_kinds_par(col_entry.rids.keys(), &[], &[], &kinds, threads);
        let mut rebuilds = Vec::with_capacity(kinds.len());
        for (kind, handle, rebuild_time) in cycle.rebuilds {
            col_entry.indexes.insert(kind, handle);
            rebuilds.push((kind, rebuild_time));
        }
        Ok(RebuildReport {
            sort_time,
            rebuilds,
        })
    }

    /// Remove a table and every access path built on it. Fails with
    /// [`MmdbError::UnknownTable`] when the name is not registered —
    /// the entry point a sharded catalog uses when re-partitioning a
    /// table whose shard-key column was replaced.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        if self.tables.remove(table).is_none() {
            return Err(MmdbError::UnknownTable {
                table: table.to_owned(),
            });
        }
        Ok(())
    }

    /// Start a composable query over `table` (resolution happens at
    /// [`Query::plan`]/[`Query::run`], so an unknown name fails there
    /// with a typed error, not here).
    pub fn query(&self, table: impl Into<String>) -> Query<'_> {
        Query::new(self, table.into())
    }

    // ---- crate-internal resolution used by the planner/executor ----

    pub(crate) fn entry(&self, table: &str) -> Result<&TableEntry> {
        self.tables
            .get(table)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }

    fn entry_mut(&mut self, table: &str) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }

    /// The column itself (no index required).
    pub(crate) fn column(&self, table: &str, column: &str) -> Result<&Column> {
        self.entry(table)?
            .table
            .column(column)
            .ok_or_else(|| MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            })
    }

    /// The column's access paths; [`MmdbError::NoIndex`] when the column
    /// exists but has never been indexed.
    pub(crate) fn column_entry(&self, table: &str, column: &str) -> Result<&ColumnEntry> {
        let entry = self.entry(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        entry.columns.get(column).ok_or_else(|| MmdbError::NoIndex {
            table: table.to_owned(),
            column: column.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sales_db() -> Database {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("sales")
                .int_column("amount", [30, 10, 20, 10, 30])
                .str_column("region", ["e", "w", "e", "n", "w"])
                .build()
                .expect("equal columns"),
        )
        .expect("fresh name");
        db
    }

    #[test]
    fn registration_and_lookup() {
        let mut db = sales_db();
        assert_eq!(db.tables().collect::<Vec<_>>(), ["sales"]);
        assert_eq!(db.table("sales").unwrap().rows(), 5);
        assert_eq!(
            db.table("saels").unwrap_err(),
            MmdbError::UnknownTable {
                table: "saels".into()
            }
        );
        let dup = TableBuilder::new("sales").build().unwrap();
        assert_eq!(
            db.register(dup).unwrap_err(),
            MmdbError::DuplicateTable {
                table: "sales".into()
            }
        );
    }

    #[test]
    fn create_index_owns_rid_list_and_handles() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        assert_eq!(
            db.indexed_kinds("sales", "amount").unwrap(),
            vec![IndexKind::FullCss, IndexKind::Hash]
        );
        // One shared RID list; both kinds resolve.
        assert_eq!(db.rid_list("sales", "amount").unwrap().len(), 5);
        assert!(db
            .index("sales", "amount", IndexKind::Hash)
            .unwrap()
            .as_ordered()
            .is_none());
        assert!(db
            .index("sales", "amount", IndexKind::FullCss)
            .unwrap()
            .as_ordered()
            .is_some());
        // Typed failures name the offender.
        assert_eq!(
            db.index("sales", "amount", IndexKind::TTree).unwrap_err(),
            MmdbError::IndexNotBuilt {
                table: "sales".into(),
                column: "amount".into(),
                kind: IndexKind::TTree
            }
        );
        assert_eq!(
            db.rid_list("sales", "region").unwrap_err(),
            MmdbError::NoIndex {
                table: "sales".into(),
                column: "region".into()
            }
        );
        assert_eq!(
            db.create_index("sales", "amuont", IndexKind::Hash)
                .unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "amuont".into()
            }
        );
    }

    #[test]
    fn drop_index_removes_kind_then_entry() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        db.create_index("sales", "amount", IndexKind::TTree)
            .unwrap();
        db.drop_index("sales", "amount", IndexKind::Hash).unwrap();
        assert_eq!(
            db.indexed_kinds("sales", "amount").unwrap(),
            vec![IndexKind::TTree]
        );
        db.drop_index("sales", "amount", IndexKind::TTree).unwrap();
        // Last index gone: the whole access-path entry disappears.
        assert!(matches!(
            db.rid_list("sales", "amount").unwrap_err(),
            MmdbError::NoIndex { .. }
        ));
        assert!(matches!(
            db.drop_index("sales", "amount", IndexKind::TTree)
                .unwrap_err(),
            MmdbError::NoIndex { .. }
        ));
        // A typo'd column reports UnknownColumn, not NoIndex.
        assert_eq!(
            db.drop_index("sales", "amuont", IndexKind::TTree)
                .unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "amuont".into()
            }
        );
    }

    #[test]
    fn replace_column_runs_the_rebuild_cycle() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        let report = db
            .replace_column(
                "sales",
                "amount",
                vec![1i64, 2, 3, 4, 5].into_iter().map(Value::Int).collect(),
            )
            .unwrap();
        assert_eq!(report.rebuilds.len(), 2);
        // The fresh indexes answer over the new values.
        let hits = db
            .query("sales")
            .filter(crate::plan::eq("amount", 4))
            .run()
            .unwrap();
        assert_eq!(hits.rids(), &[3]);
        // Row-count mismatch is a named error, and the table keeps its
        // current values.
        assert_eq!(
            db.replace_column("sales", "amount", vec![Value::Int(1)])
                .unwrap_err(),
            MmdbError::RaggedColumn {
                table: "sales".into(),
                column: "amount".into(),
                expected: 5,
                got: 1
            }
        );
        assert_eq!(
            db.table("sales").unwrap().value("amount", 3),
            Some(&Value::Int(4))
        );
    }

    #[test]
    fn rebuild_fans_kinds_across_the_pool_with_identical_results() {
        // The same replace-then-query cycle must answer identically
        // whatever the catalog's thread count — including 0 (auto).
        let mut reference: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 8, 0] {
            let mut db = sales_db();
            db.set_exec_options(crate::plan::ExecOptions::threads(threads));
            for kind in [IndexKind::FullCss, IndexKind::Hash, IndexKind::TTree] {
                db.create_index("sales", "amount", kind).unwrap();
            }
            let report = db
                .replace_column(
                    "sales",
                    "amount",
                    vec![7i64, 3, 7, 1, 7].into_iter().map(Value::Int).collect(),
                )
                .unwrap();
            assert_eq!(report.rebuilds.len(), 3, "threads={threads}");
            // Kind order in the report stays deterministic (map order).
            let kinds: Vec<IndexKind> = report.rebuilds.iter().map(|&(k, _)| k).collect();
            assert_eq!(
                kinds,
                vec![IndexKind::TTree, IndexKind::FullCss, IndexKind::Hash]
            );
            let hits = db
                .query("sales")
                .filter(crate::plan::eq("amount", 7))
                .run()
                .unwrap()
                .rids()
                .to_vec();
            match &reference {
                None => reference = Some(hits),
                Some(r) => assert_eq!(&hits, r, "threads={threads}"),
            }
        }
        assert_eq!(reference.unwrap(), vec![0, 2, 4]);
    }

    #[test]
    fn drop_table_removes_the_entry() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        db.drop_table("sales").unwrap();
        assert_eq!(db.tables().count(), 0);
        assert!(matches!(
            db.table("sales").unwrap_err(),
            MmdbError::UnknownTable { .. }
        ));
        assert_eq!(
            db.drop_table("sales").unwrap_err(),
            MmdbError::UnknownTable {
                table: "sales".into()
            }
        );
        // The name is reusable afterwards.
        db.register(TableBuilder::new("sales").build().unwrap())
            .unwrap();
    }

    #[test]
    fn replace_unindexed_column_succeeds_with_empty_report() {
        let mut db = sales_db();
        let report = db
            .replace_column(
                "sales",
                "region",
                ["a", "b", "c", "d", "e"]
                    .iter()
                    .map(|&s| Value::from(s))
                    .collect(),
            )
            .unwrap();
        assert!(report.rebuilds.is_empty());
        assert_eq!(
            db.table("sales").unwrap().value("region", 4),
            Some(&Value::Str("e".into()))
        );
    }
}
