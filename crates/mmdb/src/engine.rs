//! The [`Database`] engine: a system catalog owning tables, RID lists and
//! indexes.
//!
//! §2 of the paper situates CSS-trees inside a main-memory
//! decision-support *system* — relations, per-column sorted RID lists,
//! and "an index" chosen per access path. The free functions in
//! [`query`](crate::query) are that system's physical operators; this
//! module is the system itself. A [`Database`] registers [`Table`]s,
//! builds and owns one [`RidList`] per indexed column, and keys any
//! number of [`IndexHandle`]s per column by [`IndexKind`] — so an index
//! is built once and reused by every selection and join that touches the
//! column, instead of being threaded by hand through each call.
//!
//! Queries start at [`Database::query`], which hands back the composable
//! builder in [`plan`](crate::plan):
//!
//! ```
//! use mmdb::{eq, between, Database, IndexKind, TableBuilder};
//!
//! let mut db = Database::new();
//! db.register(
//!     TableBuilder::new("sales")
//!         .int_column("amount", [120, 40, 975, 40])
//!         .str_column("region", ["east", "west", "east", "east"])
//!         .build()?,
//! )?;
//! db.create_index("sales", "amount", IndexKind::FullCss)?;
//! db.create_index("sales", "region", IndexKind::Hash)?;
//!
//! let hits = db
//!     .query("sales")
//!     .filter(eq("region", "east"))
//!     .filter(between("amount", 100, 1000))
//!     .run()?;
//! assert_eq!(hits.rids(), &[0, 2]);
//! # Ok::<(), mmdb::MmdbError>(())
//! ```
//!
//! Updates follow the paper's OLAP cycle (§2.3): mutate a column
//! wholesale, then [`Database::rebuild_column`] reruns the batch-update
//! cycle ([`apply_batch_kinds_par`]) for every index registered on it —
//! the independent per-kind rebuilds fanning out across the worker pool
//! sized by the catalog's [`ExecOptions`].
//!
//! **Concurrency** follows the epoch/snapshot discipline in
//! [`snapshot`](crate::snapshot): the `Database` owns a private mutable
//! *tip* ([`CatalogState`]), and every successful mutator commits the
//! tip as the next immutable generation of a shared [`SwapSlot`].
//! Readers on other threads pin generations through
//! [`Database::snapshot`]/[`Database::handle`] and keep probing them,
//! lock-free, while the writer builds the next one off to the side —
//! a commit is one `Arc` swap, never a data race.

use crate::column::Column;
use crate::domain::Value;
use crate::error::{MmdbError, Result};
use crate::index_choice::{IndexHandle, IndexKind};
use crate::plan::{ExecOptions, Query};
use crate::rid::RidList;
use crate::snapshot::{CatalogState, DatabaseHandle, Snapshot, SwapSlot};
use crate::table::Table;
use crate::update::apply_batch_kinds_par;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The engine: tables plus their access paths, behind name resolution
/// that fails with a typed, offender-naming [`MmdbError`] instead of a
/// panic.
///
/// The catalog data itself lives in an immutable-once-committed
/// [`CatalogState`]; the `Database` is the single writer building the
/// next generation in place and committing it on every successful
/// mutation. All read methods answer from the tip (the writer always
/// sees its own latest commit); concurrent readers answer from whatever
/// generation they [`snapshot`](Database::snapshot)ted.
#[derive(Debug)]
pub struct Database {
    /// The writer's private next generation, committed by
    /// [`Database::publish`] at the end of every successful mutator.
    tip: CatalogState,
    /// The commit point shared with every reader handle and snapshot.
    slot: Arc<SwapSlot<CatalogState>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct TableEntry {
    pub(crate) table: Table,
    /// Access paths, created lazily: a column gets an entry when its
    /// first index is built.
    pub(crate) columns: BTreeMap<String, ColumnEntry>,
}

/// A column's access paths: the sorted RID list every index of the
/// column shares, and the indexes keyed by kind. Handles sit behind
/// [`Arc`] so an untouched index is *shared* between generations when a
/// commit copy-on-writes its table entry, instead of being rebuilt or
/// deep-copied.
#[derive(Debug, Clone)]
pub(crate) struct ColumnEntry {
    pub(crate) rids: RidList,
    pub(crate) indexes: BTreeMap<IndexKind, Arc<IndexHandle>>,
}

/// What one [`Database::rebuild_column`] cycle did, per §2.3's
/// "rebuild an index from scratch after a batch of updates".
#[derive(Debug)]
pub struct RebuildReport {
    /// Time to re-sort the column into its RID list (the merge phase of
    /// the cycle; a wholesale column replacement re-sorts rather than
    /// merging deltas).
    pub sort_time: Duration,
    /// Per-kind from-scratch rebuild times (Fig. 9's measurement).
    pub rebuilds: Vec<(IndexKind, Duration)>,
}

impl Database {
    /// An empty catalog. Execution options start from
    /// [`ExecOptions::from_env`], so `CCINDEX_THREADS=8` switches every
    /// query of a process to partitioned execution without code changes
    /// (the compiled-in default is sequential).
    pub fn new() -> Self {
        let tip = CatalogState {
            tables: BTreeMap::new(),
            exec: ExecOptions::from_env(),
            generation: 0,
        };
        let slot = SwapSlot::new(tip.clone(), 0);
        Self { tip, slot }
    }

    /// Set the catalog-wide [`ExecOptions`]: worker threads for the
    /// partitioned equality/range/join/group operators and interleave
    /// lanes for batch-aware indexes. Plans compiled afterwards record
    /// these; running plans are unaffected. Commits a generation, so
    /// snapshots pinned afterwards inherit the new knobs.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        self.tip.exec = options;
        self.publish();
    }

    /// The catalog-wide [`ExecOptions`] new plans inherit.
    pub fn exec_options(&self) -> ExecOptions {
        self.tip.exec
    }

    /// Register a table under its own name. Fails with
    /// [`MmdbError::DuplicateTable`] if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_owned();
        if self.tip.tables.contains_key(&name) {
            return Err(MmdbError::DuplicateTable { table: name });
        }
        self.tip.tables.insert(
            name,
            Arc::new(TableEntry {
                table,
                columns: BTreeMap::new(),
            }),
        );
        self.publish();
        Ok(())
    }

    /// Registered table names, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tip.tables()
    }

    /// The table registered as `name`.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tip.table(name)
    }

    /// Build (or rebuild) a `kind` index on `table.column`. The column's
    /// sorted [`RidList`] is computed on its first index and shared by
    /// all of them.
    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        let col_entry = entry.columns.entry(column.to_owned()).or_insert_with(|| {
            let col = entry.table.column(column).expect("checked above");
            ColumnEntry {
                rids: RidList::for_column(col),
                indexes: BTreeMap::new(),
            }
        });
        let handle = IndexHandle::build(kind, col_entry.rids.keys());
        col_entry.indexes.insert(kind, Arc::new(handle));
        self.publish();
        Ok(())
    }

    /// Drop the `kind` index on `table.column` (the RID list stays while
    /// any other kind remains).
    pub fn drop_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let table_name = table.to_owned();
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table_name,
                column: column.to_owned(),
            });
        }
        let col_entry = entry
            .columns
            .get_mut(column)
            .ok_or_else(|| MmdbError::NoIndex {
                table: table_name.clone(),
                column: column.to_owned(),
            })?;
        if col_entry.indexes.remove(&kind).is_none() {
            return Err(MmdbError::IndexNotBuilt {
                table: table_name,
                column: column.to_owned(),
                kind,
            });
        }
        if col_entry.indexes.is_empty() {
            entry.columns.remove(column);
        }
        self.publish();
        Ok(())
    }

    /// The sorted RID list the catalog owns for `table.column` (present
    /// once any index exists on the column).
    pub fn rid_list(&self, table: &str, column: &str) -> Result<&RidList> {
        self.tip.rid_list(table, column)
    }

    /// The `kind` index on `table.column`.
    pub fn index(&self, table: &str, column: &str, kind: IndexKind) -> Result<&IndexHandle> {
        self.tip.index(table, column, kind)
    }

    /// Which kinds are built on `table.column`, in [`IndexKind`] order.
    pub fn indexed_kinds(&self, table: &str, column: &str) -> Result<Vec<IndexKind>> {
        self.tip.indexed_kinds(table, column)
    }

    /// Replace a column's values wholesale (the OLAP batch-update entry
    /// point), then run the rebuild cycle over its indexes — an empty
    /// report if the column has none. The new values must keep the
    /// table's row count; every error path leaves the table untouched.
    ///
    /// The whole cycle commits **one** generation, at the end: a
    /// concurrent snapshot sees either the old column with the old
    /// indexes or the new column with the new indexes, never the torn
    /// state in between.
    pub fn replace_column(
        &mut self,
        table: &str,
        column: &str,
        values: Vec<Value>,
    ) -> Result<RebuildReport> {
        let entry = self.entry_mut(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        if values.len() != entry.table.rows() {
            return Err(MmdbError::RaggedColumn {
                table: table.to_owned(),
                column: column.to_owned(),
                expected: entry.table.rows(),
                got: values.len(),
            });
        }
        let indexed = entry.columns.contains_key(column);
        entry
            .table
            .replace_column(column, Column::from_values(&values));
        let report = if indexed {
            self.rebuild_column_in_tip(table, column)?
        } else {
            RebuildReport {
                sort_time: Duration::ZERO,
                rebuilds: Vec::new(),
            }
        };
        self.publish();
        Ok(report)
    }

    /// Re-derive `table.column`'s RID list from the (possibly mutated)
    /// column and rebuild every index registered on it from scratch via
    /// the [`apply_batch_kinds_par`] cycle — §2.3: "it may be relatively
    /// cheap to rebuild an index from scratch after a batch of updates."
    /// The per-kind rebuilds are independent, so they fan out across the
    /// worker pool sized by the catalog's [`ExecOptions::threads`]
    /// (`1` rebuilds sequentially; `0` spawns one worker per kind up to
    /// the core count — each job here is a whole index build, so the
    /// kind count, not a probe estimate, is the right partition unit).
    /// On success the rebuilt generation commits atomically.
    pub fn rebuild_column(&mut self, table: &str, column: &str) -> Result<RebuildReport> {
        let report = self.rebuild_column_in_tip(table, column)?;
        self.publish();
        Ok(report)
    }

    /// The rebuild cycle itself, run against the uncommitted tip — so
    /// [`Database::replace_column`] can mutate and rebuild under a
    /// single commit instead of exposing a column/index mismatch.
    fn rebuild_column_in_tip(&mut self, table: &str, column: &str) -> Result<RebuildReport> {
        let threads = self.tip.exec.threads;
        let table_name = table.to_owned();
        let entry = self.entry_mut(table)?;
        let col = entry
            .table
            .column(column)
            .ok_or_else(|| MmdbError::UnknownColumn {
                table: table_name.clone(),
                column: column.to_owned(),
            })?;
        let col_entry = entry
            .columns
            .get_mut(column)
            .ok_or_else(|| MmdbError::NoIndex {
                table: table_name,
                column: column.to_owned(),
            })?;
        let t0 = std::time::Instant::now();
        col_entry.rids = RidList::for_column(col);
        let sort_time = t0.elapsed();
        // A wholesale replacement carries no key-level deltas, so the
        // cycle runs with an empty batch: pure from-scratch rebuilds,
        // one pool job per registered kind.
        let kinds: Vec<IndexKind> = col_entry.indexes.keys().copied().collect();
        let cycle = apply_batch_kinds_par(col_entry.rids.keys(), &[], &[], &kinds, threads);
        let mut rebuilds = Vec::with_capacity(kinds.len());
        for (kind, handle, rebuild_time) in cycle.rebuilds {
            col_entry.indexes.insert(kind, Arc::new(handle));
            rebuilds.push((kind, rebuild_time));
        }
        Ok(RebuildReport {
            sort_time,
            rebuilds,
        })
    }

    /// Remove a table and every access path built on it. Fails with
    /// [`MmdbError::UnknownTable`] when the name is not registered —
    /// the entry point a sharded catalog uses when re-partitioning a
    /// table whose shard-key column was replaced.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        if self.tip.tables.remove(table).is_none() {
            return Err(MmdbError::UnknownTable {
                table: table.to_owned(),
            });
        }
        self.publish();
        Ok(())
    }

    /// Start a composable query over `table` (resolution happens at
    /// [`Query::plan`]/[`Query::run`], so an unknown name fails there
    /// with a typed error, not here). Answers from the writer's tip —
    /// concurrent readers should [`snapshot`](Database::snapshot) and
    /// query that instead.
    pub fn query(&self, table: impl Into<String>) -> Query<'_> {
        self.tip.query(table)
    }

    // ---- the epoch/snapshot surface ----

    /// Pin the current committed generation: the returned [`Snapshot`]
    /// answers the whole read surface ([`CatalogState`]) lock-free and
    /// is unaffected by any later mutation of this `Database`.
    pub fn snapshot(&self) -> Snapshot {
        self.slot.pin()
    }

    /// A cloneable, `Send + Sync` reader handle sharing this catalog's
    /// commit slot: other threads snapshot through it while this thread
    /// keeps `&mut` access for updates.
    pub fn handle(&self) -> DatabaseHandle {
        DatabaseHandle {
            slot: Arc::clone(&self.slot),
        }
    }

    /// The writer's current (always committed-or-newer) catalog state —
    /// what [`Database::query`] and the probe batches answer from.
    pub fn catalog(&self) -> &CatalogState {
        &self.tip
    }

    /// The generation number of the latest commit (0 = empty catalog).
    pub fn generation(&self) -> u64 {
        self.tip.generation
    }

    /// How many generations have been committed over this catalog's
    /// lifetime.
    pub fn swap_count(&self) -> u64 {
        self.slot.swaps()
    }

    /// Live pinned snapshots, across all generations (racy by nature;
    /// observability for the serving layer's stats).
    pub fn pinned_snapshots(&self) -> usize {
        self.slot.pinned()
    }

    /// Replace the whole table map and commit — the storage restore
    /// path ([`persist`](crate::persist)): the decoded tables land as
    /// one new generation through the same commit cycle every other
    /// mutator uses, so pinned readers keep their old generation and
    /// the row-rebuild path is never involved.
    pub(crate) fn replace_tables(&mut self, tables: BTreeMap<String, Arc<TableEntry>>) {
        self.tip.tables = tables;
        self.publish();
    }

    /// Commit the tip as the next generation. Every mutator calls this
    /// exactly once, after *all* of its mutations succeeded — the
    /// invariant that makes each generation internally consistent.
    fn publish(&mut self) {
        self.tip.generation += 1;
        self.slot.install(self.tip.clone(), self.tip.generation);
    }

    /// Copy-on-write access to a table entry in the tip: if the entry is
    /// shared with a committed generation it is cloned first, so pinned
    /// readers never observe the mutation.
    fn entry_mut(&mut self, table: &str) -> Result<&mut TableEntry> {
        self.tip
            .tables
            .get_mut(table)
            .map(Arc::make_mut)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::eq;
    use crate::table::TableBuilder;

    fn sales_db() -> Database {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("sales")
                .int_column("amount", [30, 10, 20, 10, 30])
                .str_column("region", ["e", "w", "e", "n", "w"])
                .build()
                .expect("equal columns"),
        )
        .expect("fresh name");
        db
    }

    #[test]
    fn registration_and_lookup() {
        let mut db = sales_db();
        assert_eq!(db.tables().collect::<Vec<_>>(), ["sales"]);
        assert_eq!(db.table("sales").unwrap().rows(), 5);
        assert_eq!(
            db.table("saels").unwrap_err(),
            MmdbError::UnknownTable {
                table: "saels".into()
            }
        );
        let dup = TableBuilder::new("sales").build().unwrap();
        assert_eq!(
            db.register(dup).unwrap_err(),
            MmdbError::DuplicateTable {
                table: "sales".into()
            }
        );
    }

    #[test]
    fn create_index_owns_rid_list_and_handles() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        assert_eq!(
            db.indexed_kinds("sales", "amount").unwrap(),
            vec![IndexKind::FullCss, IndexKind::Hash]
        );
        // One shared RID list; both kinds resolve.
        assert_eq!(db.rid_list("sales", "amount").unwrap().len(), 5);
        assert!(db
            .index("sales", "amount", IndexKind::Hash)
            .unwrap()
            .as_ordered()
            .is_none());
        assert!(db
            .index("sales", "amount", IndexKind::FullCss)
            .unwrap()
            .as_ordered()
            .is_some());
        // Typed failures name the offender.
        assert_eq!(
            db.index("sales", "amount", IndexKind::TTree).unwrap_err(),
            MmdbError::IndexNotBuilt {
                table: "sales".into(),
                column: "amount".into(),
                kind: IndexKind::TTree
            }
        );
        assert_eq!(
            db.rid_list("sales", "region").unwrap_err(),
            MmdbError::NoIndex {
                table: "sales".into(),
                column: "region".into()
            }
        );
        assert_eq!(
            db.create_index("sales", "amuont", IndexKind::Hash)
                .unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "amuont".into()
            }
        );
    }

    #[test]
    fn drop_index_removes_kind_then_entry() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        db.create_index("sales", "amount", IndexKind::TTree)
            .unwrap();
        db.drop_index("sales", "amount", IndexKind::Hash).unwrap();
        assert_eq!(
            db.indexed_kinds("sales", "amount").unwrap(),
            vec![IndexKind::TTree]
        );
        db.drop_index("sales", "amount", IndexKind::TTree).unwrap();
        // Last index gone: the whole access-path entry disappears.
        assert!(matches!(
            db.rid_list("sales", "amount").unwrap_err(),
            MmdbError::NoIndex { .. }
        ));
        assert!(matches!(
            db.drop_index("sales", "amount", IndexKind::TTree)
                .unwrap_err(),
            MmdbError::NoIndex { .. }
        ));
        // A typo'd column reports UnknownColumn, not NoIndex.
        assert_eq!(
            db.drop_index("sales", "amuont", IndexKind::TTree)
                .unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "amuont".into()
            }
        );
    }

    #[test]
    fn replace_column_runs_the_rebuild_cycle() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        let report = db
            .replace_column(
                "sales",
                "amount",
                vec![1i64, 2, 3, 4, 5].into_iter().map(Value::Int).collect(),
            )
            .unwrap();
        assert_eq!(report.rebuilds.len(), 2);
        // The fresh indexes answer over the new values.
        let hits = db
            .query("sales")
            .filter(crate::plan::eq("amount", 4))
            .run()
            .unwrap();
        assert_eq!(hits.rids(), &[3]);
        // Row-count mismatch is a named error, and the table keeps its
        // current values.
        assert_eq!(
            db.replace_column("sales", "amount", vec![Value::Int(1)])
                .unwrap_err(),
            MmdbError::RaggedColumn {
                table: "sales".into(),
                column: "amount".into(),
                expected: 5,
                got: 1
            }
        );
        assert_eq!(
            db.table("sales").unwrap().value("amount", 3),
            Some(&Value::Int(4))
        );
    }

    #[test]
    fn rebuild_fans_kinds_across_the_pool_with_identical_results() {
        // The same replace-then-query cycle must answer identically
        // whatever the catalog's thread count — including 0 (auto).
        let mut reference: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 8, 0] {
            let mut db = sales_db();
            db.set_exec_options(crate::plan::ExecOptions::threads(threads));
            for kind in [IndexKind::FullCss, IndexKind::Hash, IndexKind::TTree] {
                db.create_index("sales", "amount", kind).unwrap();
            }
            let report = db
                .replace_column(
                    "sales",
                    "amount",
                    vec![7i64, 3, 7, 1, 7].into_iter().map(Value::Int).collect(),
                )
                .unwrap();
            assert_eq!(report.rebuilds.len(), 3, "threads={threads}");
            // Kind order in the report stays deterministic (map order).
            let kinds: Vec<IndexKind> = report.rebuilds.iter().map(|&(k, _)| k).collect();
            assert_eq!(
                kinds,
                vec![IndexKind::TTree, IndexKind::FullCss, IndexKind::Hash]
            );
            let hits = db
                .query("sales")
                .filter(crate::plan::eq("amount", 7))
                .run()
                .unwrap()
                .rids()
                .to_vec();
            match &reference {
                None => reference = Some(hits),
                Some(r) => assert_eq!(&hits, r, "threads={threads}"),
            }
        }
        assert_eq!(reference.unwrap(), vec![0, 2, 4]);
    }

    #[test]
    fn drop_table_removes_the_entry() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        db.drop_table("sales").unwrap();
        assert_eq!(db.tables().count(), 0);
        assert!(matches!(
            db.table("sales").unwrap_err(),
            MmdbError::UnknownTable { .. }
        ));
        assert_eq!(
            db.drop_table("sales").unwrap_err(),
            MmdbError::UnknownTable {
                table: "sales".into()
            }
        );
        // The name is reusable afterwards.
        db.register(TableBuilder::new("sales").build().unwrap())
            .unwrap();
    }

    #[test]
    fn replace_unindexed_column_succeeds_with_empty_report() {
        let mut db = sales_db();
        let report = db
            .replace_column(
                "sales",
                "region",
                ["a", "b", "c", "d", "e"]
                    .iter()
                    .map(|&s| Value::from(s))
                    .collect(),
            )
            .unwrap();
        assert!(report.rebuilds.is_empty());
        assert_eq!(
            db.table("sales").unwrap().value("region", 4),
            Some(&Value::Str("e".into()))
        );
    }

    #[test]
    fn snapshots_pin_generations_and_commits_are_atomic() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        let g_before = db.generation();
        let before = db.snapshot();
        assert_eq!(before.generation(), g_before);
        assert_eq!(db.pinned_snapshots(), 1);

        // Replace + rebuild commits exactly one generation.
        let swaps_before = db.swap_count();
        db.replace_column(
            "sales",
            "amount",
            vec![100i64, 200, 300, 400, 500]
                .into_iter()
                .map(Value::Int)
                .collect(),
        )
        .unwrap();
        assert_eq!(db.swap_count(), swaps_before + 1, "one commit per cycle");
        assert_eq!(db.generation(), g_before + 1);

        // The pinned snapshot still answers over the *old* column and
        // old index; a fresh snapshot sees the new generation.
        assert_eq!(
            before
                .query("sales")
                .filter(eq("amount", 30))
                .run()
                .unwrap()
                .rids(),
            &[0, 4]
        );
        assert!(before
            .query("sales")
            .filter(eq("amount", 300))
            .run()
            .unwrap()
            .is_empty());
        let after = db.snapshot();
        assert_eq!(
            after
                .query("sales")
                .filter(eq("amount", 300))
                .run()
                .unwrap()
                .rids(),
            &[2]
        );
        assert_eq!(db.pinned_snapshots(), 2);
        drop(before);
        drop(after);
        assert_eq!(db.pinned_snapshots(), 0);
    }

    #[test]
    fn handle_shares_the_commit_slot_across_threads() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::Hash).unwrap();
        let handle = db.handle();
        let g = db.generation();
        // A reader thread pins and answers while the owner retains &mut.
        let rids = std::thread::scope(|scope| {
            let reader = scope.spawn({
                let handle = handle.clone();
                move || {
                    let snap = handle.snapshot();
                    snap.query("sales")
                        .filter(eq("amount", 10))
                        .run()
                        .unwrap()
                        .rids()
                        .to_vec()
                }
            });
            reader.join().expect("reader thread")
        });
        assert_eq!(rids, vec![1, 3]);
        assert_eq!(handle.generation(), g);
        assert_eq!(handle.pinned(), 0, "reader's pin was dropped");
        // Commits through the owner are visible through the handle.
        db.drop_index("sales", "amount", IndexKind::Hash).unwrap();
        assert_eq!(handle.generation(), g + 1);
        assert!(handle.swaps() >= 1);
    }

    #[test]
    fn unpublished_error_paths_leave_readers_on_the_old_generation() {
        let mut db = sales_db();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        let g = db.generation();
        let swaps = db.swap_count();
        // A failing mutation must not commit anything.
        db.replace_column("sales", "amount", vec![Value::Int(1)])
            .unwrap_err();
        db.create_index("sales", "nope", IndexKind::Hash)
            .unwrap_err();
        db.drop_index("sales", "amount", IndexKind::TTree)
            .unwrap_err();
        db.drop_table("nope").unwrap_err();
        assert_eq!(db.generation(), g);
        assert_eq!(db.swap_count(), swaps);
        assert_eq!(db.snapshot().generation(), g);
    }
}
