//! Typed errors for the database engine.
//!
//! The physical layer (operators over explicit `Column`/`RidList`/index
//! parts) stays panic-free by construction — callers hold the parts. The
//! engine layer resolves *names* (tables, columns, index kinds) at run
//! time, so lookups can fail; every failure names the offending table or
//! column so a query over a million-row catalog fails with a message, not
//! a stack trace.

use crate::index_choice::IndexKind;

/// Everything the engine and builders can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmdbError {
    /// A table name was not found in the catalog.
    UnknownTable {
        /// The name that failed to resolve.
        table: String,
    },
    /// A table was registered under a name the catalog already holds.
    DuplicateTable {
        /// The already-taken name.
        table: String,
    },
    /// A column name was not found in a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// The column name that failed to resolve.
        column: String,
    },
    /// No index of any kind is registered on the column.
    NoIndex {
        /// Table holding the column.
        table: String,
        /// The unindexed column.
        column: String,
    },
    /// A specific index kind was requested but never built.
    IndexNotBuilt {
        /// Table holding the column.
        table: String,
        /// The column.
        column: String,
        /// The kind that was requested.
        kind: IndexKind,
    },
    /// A range or ordered operation needs an ordered index but only
    /// unordered (hash) indexes are registered — §3.5: hash indexes do
    /// not preserve order.
    NoOrderedIndex {
        /// Table holding the column.
        table: String,
        /// The column.
        column: String,
    },
    /// `TableBuilder::build` found columns of unequal length.
    RaggedColumn {
        /// The table being built.
        table: String,
        /// The first column whose length disagrees.
        column: String,
        /// Length implied by the first column.
        expected: usize,
        /// Length actually found.
        got: usize,
    },
    /// An aggregate other than `Count` was asked over a non-integer
    /// measure column.
    NonIntegerMeasure {
        /// Table holding the measure.
        table: String,
        /// The measure column.
        column: String,
    },
    /// A shard key fell outside every range a partitioner declares — the
    /// sharded catalog has no shard that owns the row.
    ShardKeyOutOfRange {
        /// Display form of the offending key value.
        key: String,
        /// How many shards the partitioner declares.
        shards: usize,
    },
    /// A partitioner was constructed from an invalid specification
    /// (zero shards, unsorted or overlapping ranges, inverted bounds).
    InvalidPartitioner {
        /// What was wrong with the specification.
        reason: String,
    },
    /// An execution knob read from the environment did not parse — a
    /// misconfiguration (`CCINDEX_THREADS=abc`) that must fail loudly
    /// instead of silently running with the compiled-in default.
    InvalidExecOption {
        /// The environment variable that failed to parse.
        name: String,
        /// The unparsable value it held.
        value: String,
    },
    /// The requested operation does not apply to this result shape.
    Unsupported {
        /// Human-readable description of what was attempted.
        what: String,
    },
    /// A storage file could not be opened, read, written, or trusted.
    /// Every file-I/O fault on the save/open path surfaces as this
    /// error — a missing, truncated, or bit-flipped catalog file is a
    /// message naming the path, never a panic.
    Storage {
        /// The file (or in-memory snapshot label) at fault.
        path: String,
        /// Which stage of the storage conversation failed.
        fault: StorageFault,
        /// Human-readable detail (the underlying I/O error, the bad
        /// page, ...).
        detail: String,
    },
    /// A remote shard could not be reached, or the wire conversation
    /// with it failed. A dropped shard surfaces as this error on the
    /// affected requests — never a panic or an indefinite hang.
    Transport {
        /// The socket address (or description) of the peer.
        endpoint: String,
        /// Which stage of the conversation failed.
        fault: TransportFault,
        /// Human-readable detail (the underlying I/O error, the bad
        /// frame field, ...).
        detail: String,
        /// How many attempts the bounded-retry loop burned before
        /// giving up (0 when the operation is not retried).
        attempts: u32,
        /// Wall-clock time spent across those attempts, in
        /// milliseconds (0 when the operation is not retried).
        elapsed_ms: u64,
    },
}

/// Which stage of a storage conversation a [`MmdbError::Storage`]
/// failure happened in. Mirrors `ccindex-store`'s `StoreFault` 1:1 so
/// the engine can surface store-crate errors without flattening them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The file could not be opened or created.
    Open,
    /// A read syscall failed or came up short.
    Read,
    /// A write syscall failed.
    Write,
    /// The bytes are not a ccindex store (bad magic, impossible
    /// offsets, truncated structure).
    Format,
    /// The structure parsed but a checksum or catalog invariant
    /// failed — the file was damaged after it was written.
    Corrupt,
    /// The file speaks a storage format version this build does not.
    Version,
}

/// Which stage of a wire conversation a [`MmdbError::Transport`] failure
/// happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Establishing the TCP connection failed (after bounded retries).
    Connect,
    /// Reading or writing an established connection failed or timed out.
    Io,
    /// A frame arrived but its payload did not decode (bad tag, short
    /// buffer, invalid UTF-8).
    Decode,
    /// The frame checksum did not match — bytes were corrupted in
    /// flight.
    Checksum,
    /// The peer speaks a different protocol version (or is not a shard
    /// server at all — bad magic).
    Version,
    /// The peer answered with a well-formed message of the wrong shape
    /// for the request.
    Protocol,
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MmdbError>;

impl std::fmt::Display for MmdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmdbError::UnknownTable { table } => {
                write!(f, "unknown table `{table}`")
            }
            MmdbError::DuplicateTable { table } => {
                write!(f, "table `{table}` is already registered")
            }
            MmdbError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            MmdbError::NoIndex { table, column } => {
                write!(f, "no index registered on `{table}.{column}`")
            }
            MmdbError::IndexNotBuilt {
                table,
                column,
                kind,
            } => {
                write!(f, "no {kind:?} index built on `{table}.{column}`")
            }
            MmdbError::NoOrderedIndex { table, column } => {
                write!(
                    f,
                    "`{table}.{column}` has no ordered index (hash indexes \
                     cannot serve range or ordered access, §3.5)"
                )
            }
            MmdbError::RaggedColumn {
                table,
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "table `{table}`: column `{column}` has {got} rows, \
                     expected {expected}"
                )
            }
            MmdbError::NonIntegerMeasure { table, column } => {
                write!(
                    f,
                    "measure column `{table}.{column}` holds non-integer \
                     values; Sum/Min/Max need an Int column"
                )
            }
            MmdbError::ShardKeyOutOfRange { key, shards } => {
                write!(
                    f,
                    "shard key `{key}` falls outside every declared range \
                     of the {shards}-shard partitioner"
                )
            }
            MmdbError::InvalidPartitioner { reason } => {
                write!(f, "invalid partitioner: {reason}")
            }
            MmdbError::InvalidExecOption { name, value } => {
                write!(
                    f,
                    "invalid execution option: {name}=`{value}` does not \
                     parse as an unsigned integer"
                )
            }
            MmdbError::Unsupported { what } => write!(f, "{what}"),
            MmdbError::Storage {
                path,
                fault,
                detail,
            } => {
                let stage = match fault {
                    StorageFault::Open => "opening",
                    StorageFault::Read => "reading",
                    StorageFault::Write => "writing",
                    StorageFault::Format => "not a ccindex store",
                    StorageFault::Corrupt => "corrupted store",
                    StorageFault::Version => "store format version mismatch",
                };
                write!(f, "storage fault on `{path}` ({stage}): {detail}")
            }
            MmdbError::Transport {
                endpoint,
                fault,
                detail,
                attempts,
                elapsed_ms,
            } => {
                let stage = match fault {
                    TransportFault::Connect => "connect failed",
                    TransportFault::Io => "I/O failed",
                    TransportFault::Decode => "frame did not decode",
                    TransportFault::Checksum => "frame checksum mismatch",
                    TransportFault::Version => "protocol version mismatch",
                    TransportFault::Protocol => "unexpected response shape",
                };
                write!(f, "shard `{endpoint}`: {stage}: {detail}")?;
                if *attempts > 0 {
                    write!(f, " (after {attempts} attempt(s) in {elapsed_ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MmdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = MmdbError::UnknownColumn {
            table: "sales".into(),
            column: "regoin".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("sales") && msg.contains("regoin"), "{msg}");

        let e = MmdbError::RaggedColumn {
            table: "t".into(),
            column: "b".into(),
            expected: 3,
            got: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('t') && msg.contains('b'), "{msg}");
        assert!(msg.contains('3') && msg.contains('2'), "{msg}");

        let e = MmdbError::IndexNotBuilt {
            table: "t".into(),
            column: "c".into(),
            kind: IndexKind::FullCss,
        };
        assert!(e.to_string().contains("FullCss"));

        let e = MmdbError::ShardKeyOutOfRange {
            key: "9999".into(),
            shards: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("9999") && msg.contains('4'), "{msg}");

        let e = MmdbError::InvalidPartitioner {
            reason: "ranges overlap".into(),
        };
        assert!(e.to_string().contains("ranges overlap"));

        let e = MmdbError::InvalidExecOption {
            name: "CCINDEX_THREADS".into(),
            value: "abc".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("CCINDEX_THREADS") && msg.contains("abc"),
            "{msg}"
        );

        let e = MmdbError::Transport {
            endpoint: "127.0.0.1:7070".into(),
            fault: TransportFault::Connect,
            detail: "connection refused".into(),
            attempts: 5,
            elapsed_ms: 150,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("127.0.0.1:7070") && msg.contains("connection refused"),
            "{msg}"
        );
        assert!(
            msg.contains("5 attempt(s)") && msg.contains("150 ms"),
            "{msg}"
        );

        let e = MmdbError::Transport {
            endpoint: "peer".into(),
            fault: TransportFault::Version,
            detail: "peer speaks v9, this build speaks v1".into(),
            attempts: 0,
            elapsed_ms: 0,
        };
        let msg = e.to_string();
        assert!(msg.contains("version"), "{msg}");
        // A non-retried failure does not claim any attempts.
        assert!(!msg.contains("attempt"), "{msg}");

        let e = MmdbError::Storage {
            path: "/data/catalog.ccs".into(),
            fault: StorageFault::Corrupt,
            detail: "page 7 crc 1234abcd, page table says deadbeef".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("/data/catalog.ccs")
                && msg.contains("corrupted")
                && msg.contains("page 7"),
            "{msg}"
        );

        let e = MmdbError::Storage {
            path: "missing.ccs".into(),
            fault: StorageFault::Open,
            detail: "No such file or directory".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("opening") && msg.contains("missing.ccs"),
            "{msg}"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(MmdbError::UnknownTable { table: "x".into() });
        assert!(e.to_string().contains('x'));
    }
}
