//! One constructor per paper method, behind the shared traits.
//!
//! The database layer treats the index choice as a tuning knob: every
//! method implements `SearchIndex<u32>` (point lookups on domain IDs) and
//! all but the hash index implement `OrderedIndex<u32>` (range queries).
//! Node sizes default to one 64-byte cache line (16 four-byte slots), the
//! §5.1/§6.3 optimum.

use bplus::BPlusTree;
use bst_index::BinaryTreeIndex;
use ccindex_common::{OrderedIndex, SearchIndex, SortedArray};
use css_tree::{FullCssTree, LevelCssTree};
use hashindex::HashIndex;
use sorted_search::{BinarySearch, InterpolationSearch};
use ttree::TTree;

/// The index methods available to the database layer.
///
/// `Ord` follows declaration order and exists so catalogs can key maps by
/// kind deterministically; it is **not** a quality ranking — access-path
/// choice uses [`IndexKind::POINT_PREFERENCE`] /
/// [`IndexKind::ORDERED_PREFERENCE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexKind {
    /// Binary search on the sorted RID list — zero extra space.
    BinarySearch,
    /// Interpolation search — for near-linear key distributions only.
    InterpolationSearch,
    /// Pointer-based balanced BST.
    BinaryTree,
    /// T-tree (8 entries/node: 76-byte nodes, closest to one line).
    TTree,
    /// B+-tree (64-byte nodes: branching 8).
    BPlusTree,
    /// Full CSS-tree (64-byte nodes: m = 16) — the paper's recommendation.
    FullCss,
    /// Level CSS-tree (64-byte nodes: m = 16).
    LevelCss,
    /// Chained bucket hash — fastest point lookups, no ordered access.
    Hash,
}

impl IndexKind {
    /// Every kind.
    pub const ALL: [IndexKind; 8] = [
        IndexKind::BinarySearch,
        IndexKind::InterpolationSearch,
        IndexKind::BinaryTree,
        IndexKind::TTree,
        IndexKind::BPlusTree,
        IndexKind::FullCss,
        IndexKind::LevelCss,
        IndexKind::Hash,
    ];

    /// Kinds supporting ordered access (Fig. 7's RID-ordered column).
    pub const ORDERED: [IndexKind; 7] = [
        IndexKind::BinarySearch,
        IndexKind::InterpolationSearch,
        IndexKind::BinaryTree,
        IndexKind::TTree,
        IndexKind::BPlusTree,
        IndexKind::FullCss,
        IndexKind::LevelCss,
    ];

    /// Does this kind support `lower_bound`/range queries?
    pub fn is_ordered(&self) -> bool {
        !matches!(self, IndexKind::Hash)
    }

    /// Access-path preference for equality probes, best first: the hash
    /// index wins point lookups when present (§3.5 "fastest point
    /// lookups"), then the paper's recommendation (full CSS-tree) and the
    /// remaining directories by decreasing branching, with the zero-space
    /// array methods last.
    pub const POINT_PREFERENCE: [IndexKind; 8] = [
        IndexKind::Hash,
        IndexKind::FullCss,
        IndexKind::LevelCss,
        IndexKind::BPlusTree,
        IndexKind::TTree,
        IndexKind::BinaryTree,
        IndexKind::InterpolationSearch,
        IndexKind::BinarySearch,
    ];

    /// Access-path preference for range / ordered probes, best first —
    /// [`IndexKind::POINT_PREFERENCE`] minus the hash index, which cannot
    /// serve ordered access.
    pub const ORDERED_PREFERENCE: [IndexKind; 7] = [
        IndexKind::FullCss,
        IndexKind::LevelCss,
        IndexKind::BPlusTree,
        IndexKind::TTree,
        IndexKind::BinaryTree,
        IndexKind::InterpolationSearch,
        IndexKind::BinarySearch,
    ];
}

/// A built index that remembers whether it can serve ordered access —
/// what a catalog stores per `(column, kind)` so point probes can reach
/// `search_batch` on any kind while range probes are confined, at the
/// type level, to ordered kinds.
pub enum IndexHandle {
    /// Point lookups only (the hash index, §3.5).
    Point(Box<dyn SearchIndex<u32>>),
    /// Full ordered access (every other kind).
    Ordered(Box<dyn OrderedIndex<u32>>),
}

impl IndexHandle {
    /// Build the handle for `kind` over a shared sorted key array.
    pub fn build(kind: IndexKind, keys: &SortedArray<u32>) -> Self {
        if kind.is_ordered() {
            IndexHandle::Ordered(build_ordered_index(kind, keys))
        } else {
            IndexHandle::Point(build_index(kind, keys))
        }
    }

    /// The point-lookup view every kind supports.
    pub fn as_search(&self) -> &dyn SearchIndex<u32> {
        match self {
            IndexHandle::Point(i) => i.as_ref(),
            IndexHandle::Ordered(i) => i.as_ref(),
        }
    }

    /// The ordered view, when the kind preserves key order.
    pub fn as_ordered(&self) -> Option<&dyn OrderedIndex<u32>> {
        match self {
            IndexHandle::Point(_) => None,
            IndexHandle::Ordered(i) => Some(i.as_ref()),
        }
    }
}

impl std::fmt::Debug for IndexHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (shape, name) = match self {
            IndexHandle::Point(i) => ("Point", i.name()),
            IndexHandle::Ordered(i) => ("Ordered", i.name()),
        };
        write!(f, "IndexHandle::{shape}({name})")
    }
}

/// Build a point-lookup index of the chosen kind over a shared sorted
/// key array.
pub fn build_index(kind: IndexKind, keys: &SortedArray<u32>) -> Box<dyn SearchIndex<u32>> {
    match kind {
        IndexKind::BinarySearch => Box::new(BinarySearch::from_shared(keys.clone())),
        IndexKind::InterpolationSearch => Box::new(InterpolationSearch::from_shared(keys.clone())),
        IndexKind::BinaryTree => Box::new(BinaryTreeIndex::build(keys.as_slice())),
        IndexKind::TTree => Box::new(TTree::<u32, 8>::build(keys.as_slice())),
        IndexKind::BPlusTree => Box::new(BPlusTree::<u32, 8>::from_shared(keys.clone())),
        IndexKind::FullCss => Box::new(FullCssTree::<u32, 16>::from_shared(keys.clone())),
        IndexKind::LevelCss => Box::new(LevelCssTree::<u32, 16>::from_shared(keys.clone())),
        IndexKind::Hash => Box::new(HashIndex::<u32, 7>::build(keys.as_slice())),
    }
}

/// Build an ordered index (panics for [`IndexKind::Hash`], which cannot
/// provide ordered access — §3.5).
pub fn build_ordered_index(kind: IndexKind, keys: &SortedArray<u32>) -> Box<dyn OrderedIndex<u32>> {
    match kind {
        IndexKind::BinarySearch => Box::new(BinarySearch::from_shared(keys.clone())),
        IndexKind::InterpolationSearch => Box::new(InterpolationSearch::from_shared(keys.clone())),
        IndexKind::BinaryTree => Box::new(BinaryTreeIndex::build(keys.as_slice())),
        IndexKind::TTree => Box::new(TTree::<u32, 8>::build(keys.as_slice())),
        IndexKind::BPlusTree => Box::new(BPlusTree::<u32, 8>::from_shared(keys.clone())),
        IndexKind::FullCss => Box::new(FullCssTree::<u32, 16>::from_shared(keys.clone())),
        IndexKind::LevelCss => Box::new(LevelCssTree::<u32, 16>::from_shared(keys.clone())),
        IndexKind::Hash => panic!("hash indexes do not preserve order (§3.5)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> SortedArray<u32> {
        SortedArray::from_slice(&(0..5000u32).map(|i| i / 3).collect::<Vec<_>>())
    }

    #[test]
    fn every_kind_agrees_on_search() {
        let ks = keys();
        let reference = ks.as_slice().to_vec();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, &ks);
            for probe in (0..1700u32).step_by(7) {
                let expected = reference
                    .binary_search(&probe)
                    .ok()
                    .map(|_| reference.partition_point(|&k| k < probe));
                assert_eq!(idx.search(probe), expected, "{kind:?} probe {probe}");
            }
            assert_eq!(idx.search(u32::MAX), None, "{kind:?}");
        }
    }

    #[test]
    fn ordered_kinds_agree_on_lower_bound() {
        let ks = keys();
        let reference = ks.as_slice().to_vec();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, &ks);
            for probe in (0..1700u32).step_by(3) {
                assert_eq!(
                    idx.lower_bound(probe),
                    reference.partition_point(|&k| k < probe),
                    "{kind:?} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn is_ordered_matches_build_support() {
        for kind in IndexKind::ALL {
            assert_eq!(kind.is_ordered(), kind != IndexKind::Hash);
        }
    }

    #[test]
    #[should_panic(expected = "do not preserve order")]
    fn hash_cannot_be_ordered() {
        let _ = build_ordered_index(IndexKind::Hash, &keys());
    }

    #[test]
    fn handle_preserves_orderedness() {
        let ks = keys();
        for kind in IndexKind::ALL {
            let h = IndexHandle::build(kind, &ks);
            assert_eq!(h.as_ordered().is_some(), kind.is_ordered(), "{kind:?}");
            assert_eq!(h.as_search().search(7), Some(21), "{kind:?}");
            assert!(format!("{h:?}").starts_with("IndexHandle::"));
            if let Some(o) = h.as_ordered() {
                assert_eq!(o.equal_range(7), (21, 24), "{kind:?}");
            }
        }
    }

    #[test]
    fn preference_orders_cover_the_kinds() {
        // Every kind appears exactly once in the point preference; the
        // ordered preference is the same list minus Hash.
        let mut point = IndexKind::POINT_PREFERENCE.to_vec();
        point.sort();
        let mut all = IndexKind::ALL.to_vec();
        all.sort();
        assert_eq!(point, all);
        assert!(IndexKind::ORDERED_PREFERENCE.iter().all(|k| k.is_ordered()));
        assert_eq!(
            IndexKind::ORDERED_PREFERENCE.len(),
            IndexKind::ALL.len() - 1
        );
    }

    #[test]
    fn css_space_is_smallest_directory(/* §1's headline, at the DB layer */) {
        let ks = SortedArray::from_slice(&(0..200_000u32).collect::<Vec<_>>());
        let css = build_index(IndexKind::FullCss, &ks).space().indirect_bytes;
        let bplus = build_index(IndexKind::BPlusTree, &ks)
            .space()
            .indirect_bytes;
        let ttree = build_index(IndexKind::TTree, &ks).space().indirect_bytes;
        let hash = build_index(IndexKind::Hash, &ks).space().indirect_bytes;
        assert!(css > 0 && css < bplus && bplus < ttree && css < hash);
    }
}
