//! Main-memory OLAP database substrate.
//!
//! §2 of the paper situates CSS-trees inside a main-memory decision-support
//! system: columns store 4-byte **domain IDs** that point into a sorted
//! per-column **domain** of distinct values (§2.1, after \[AHK85\] and
//! Tandem's InfoCharger), RID lists sorted by an attribute provide ordered
//! access (§2.2), and the three index consumers are (1) single-value and
//! range selections, (2) indexed nested-loop joins ("the only join method
//! used in \[WK90\]"), and (3) mapping query constants to domain IDs by
//! searching the domain itself.
//!
//! This crate builds that system in two layers.
//!
//! **The engine** (the primary surface): a [`Database`] whose catalog
//! registers tables and builds/owns per-column RID lists and indexes
//! (keyed by [`IndexKind`]), and a composable [`Query`] builder —
//! `db.query("sales").filter(eq(..)).join(.., on(..)).group_by(..)` —
//! compiled by [`mod@plan`] into a small physical plan whose executor
//! drives the batched operators below — sequentially by default, or
//! partitioned across a scoped worker pool when the catalog's
//! [`ExecOptions`] (or a per-query [`Query::exec`] override) asks for
//! more than one thread, with results byte-identical either way.
//! Failures are typed ([`MmdbError`]) and name the offending
//! table/column.
//!
//! **The physical layer** the engine compiles onto:
//! * [`domain`] — sorted domain dictionaries with domain-ID encoding;
//!   equality *and* inequality predicates evaluate on IDs directly because
//!   the domain is kept in value order,
//! * [`mod@column`]/[`table`] — columnar tables of domain-encoded attributes,
//! * [`rid`] — sorted RID lists (the arrays the indexes sit on),
//! * [`index_choice`] — one constructor per paper method, all behind
//!   `ccindex_common::OrderedIndex`/`SearchIndex`,
//! * [`query`] — point select, range select, and indexed nested-loop join
//!   (each with a `_par` partitioned variant chunking probes/RIDs across
//!   workers),
//! * [`aggregate`] — grouped aggregation over sorted RID lists and
//!   arbitrary row sets (parallel variant: per-worker partial aggregates
//!   merged at the barrier),
//! * [`update`] — the OLAP batch-update cycle: apply inserts/deletes, then
//!   rebuild affected indexes from scratch (§2.3: "it may be relatively
//!   cheap to rebuild an index from scratch after a batch of updates").

#![deny(unsafe_op_in_unsafe_fn)]

pub mod aggregate;
pub mod column;
pub mod domain;
pub mod engine;
pub mod error;
pub mod index_choice;
pub mod persist;
pub mod plan;
pub mod query;
pub mod rid;
pub mod snapshot;
pub mod table;
pub mod update;

// The engine surface.
pub use engine::{Database, RebuildReport};
pub use error::{MmdbError, Result, StorageFault, TransportFault};
pub use persist::{catalog_from_bytes, catalog_to_bytes};
pub use plan::{
    between, count, eq, max, min, on, parse_knob, sum, Agg, ExecOptions, JoinOn, Plan, PlanTimings,
    Predicate, PredicateOp, Query, ResultRows, ResultSet,
};
pub use snapshot::{CatalogState, DatabaseHandle, Pinned, Snapshot, SwapSlot};

// The physical layer.
pub use aggregate::{
    group_aggregate, group_aggregate_chunked_par, group_aggregate_pairs, group_aggregate_pairs_par,
    group_aggregate_rows_par, AggFn, GroupRow,
};
pub use column::Column;
pub use domain::{Domain, Value};
pub use index_choice::{build_index, build_ordered_index, IndexHandle, IndexKind};
pub use query::{
    indexed_nested_loop_join, indexed_nested_loop_join_rids, indexed_nested_loop_join_rids_par,
    point_select, point_select_many, point_select_many_lanes, point_select_many_ordered,
    point_select_many_ordered_lanes, point_select_many_ordered_par, point_select_many_par,
    point_select_ordered, range_select, range_select_many, range_select_many_lanes,
    range_select_many_par, JoinRow, JOIN_PROBE_BLOCK,
};
pub use rid::RidList;
pub use table::{Table, TableBuilder};
pub use update::{
    apply_batch, apply_batch_handle, apply_batch_kinds_par, merge_batch, BatchResult,
    HandleBatchResult, MultiBatchResult,
};
