//! Catalog persistence: save a committed generation as a paged
//! `ccindex-store` image, reopen it cold without touching the
//! row-rebuild path.
//!
//! The paper's structures are all *bulk-built* (§2.3), which makes them
//! naturally serializable: a CSS-tree is its sorted array plus a
//! deterministic directory, so the on-disk format stores exactly the
//! arrays — domain dictionaries, in-place ID columns, sorted RID lists,
//! and one page per CSS directory **level** — and the open path
//! reassembles the catalog from validated parts instead of re-encoding
//! rows, re-sorting RID lists, or rebuilding directories. That is the
//! cold-start win the `figures coldstart` benchmark measures.
//!
//! Layout inside the store container (see `ccindex_store` for the
//! container format — header, checksummed pages, page table, manifest,
//! trailer):
//!
//! * per column: one [`PageKind::DomainValues`] page (the sorted
//!   dictionary) and one [`PageKind::ColumnIds`] page (4 bytes/row);
//! * per indexed column: one [`PageKind::RidKeys`] and one
//!   [`PageKind::RidValues`] page (the sorted RID list);
//! * per CSS index: one [`PageKind::CssLevel`] page per directory
//!   level, written root-first — a reopen reads exactly the levels a
//!   descent touches (all of them, but each is one contiguous page);
//!   non-CSS kinds store no pages and are rebuilt from the loaded RID
//!   keys at open;
//! * the manifest maps table/column/index names to page IDs.
//!
//! Everything read back is **validated before construction**: domain
//! sortedness, ID ranges, RID permutations, the RID-keys/column-IDs
//! correspondence, and CSS directory geometry. A bit-flipped,
//! truncated, or hostile file surfaces as a typed
//! [`MmdbError::Storage`] — the panicking `from_parts` constructors of
//! the physical layer are only reached with proven-good parts.
//!
//! Restoring into a live [`Database`] goes through the same
//! [`SwapSlot`](crate::snapshot::SwapSlot) commit cycle as every other
//! mutator: pinned readers keep their generation, and the restored
//! catalog becomes the next one atomically. The byte image is also the
//! shard snapshot-transfer format — [`catalog_to_bytes`] is what a
//! shard server streams to a bootstrapping peer.

use crate::column::Column;
use crate::domain::{Domain, Value};
use crate::engine::{ColumnEntry, Database, TableEntry};
use crate::error::{MmdbError, Result, StorageFault};
use crate::index_choice::{IndexHandle, IndexKind};
use crate::rid::RidList;
use crate::snapshot::CatalogState;
use crate::table::Table;
use ccindex_common::SortedArray;
use ccindex_store::{PageKind, StoreError, StoreFault, StoreReader, StoreWriter};
use css_tree::{FullCssTree, LevelCssTree};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Version of the *manifest* layout (the container has its own format
/// version underneath). Bumped when the page/manifest schema changes.
pub const MANIFEST_VERSION: u32 = 1;

/// CSS node width the catalog builds with (`index_choice` uses 16
/// four-byte slots = one 64-byte cache line, the §5.1/§6.3 optimum);
/// the on-disk levels are only valid for the same width.
const CSS_M: usize = 16;

impl From<StoreError> for MmdbError {
    fn from(e: StoreError) -> Self {
        let fault = match e.fault {
            StoreFault::Open => StorageFault::Open,
            StoreFault::Read => StorageFault::Read,
            StoreFault::Write => StorageFault::Write,
            StoreFault::Format => StorageFault::Format,
            StoreFault::Corrupt => StorageFault::Corrupt,
            StoreFault::Version => StorageFault::Version,
        };
        MmdbError::Storage {
            path: e.path,
            fault,
            detail: e.detail,
        }
    }
}

fn corrupt(label: &str, detail: impl Into<String>) -> MmdbError {
    MmdbError::Storage {
        path: label.to_owned(),
        fault: StorageFault::Corrupt,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------

/// Serialize one committed catalog generation into a store image —
/// the same bytes [`Database::save_to`] writes to disk and a shard
/// server streams to a bootstrapping peer.
pub fn catalog_to_bytes(state: &CatalogState) -> Vec<u8> {
    let mut w = StoreWriter::new();
    let mut m = MWriter::default();
    m.u32(MANIFEST_VERSION);
    m.u32(state.tables.len() as u32);
    for (name, entry) in &state.tables {
        m.str(name);
        m.u64(entry.table.rows() as u64);
        m.u32(entry.table.columns().count() as u32);
        for (col_name, col) in entry.table.columns() {
            m.str(col_name);
            m.u32(w.page(PageKind::DomainValues, &encode_domain(col.domain())));
            m.u32(w.page(PageKind::ColumnIds, &encode_u32s(col.ids())));
        }
        m.u32(entry.columns.len() as u32);
        for (col_name, col_entry) in &entry.columns {
            m.str(col_name);
            let keys = col_entry.rids.keys();
            m.u32(w.page(PageKind::RidKeys, &encode_u32s(keys.as_slice())));
            m.u32(w.page(PageKind::RidValues, &encode_u32s(col_entry.rids.rids())));
            m.u32(col_entry.indexes.len() as u32);
            for kind in col_entry.indexes.keys() {
                m.u8(kind_code(*kind));
                // CSS directories are deterministic functions of the
                // sorted keys, so the save path builds a fresh tree and
                // writes its levels root-first; the open path loads
                // them back without rebuilding. Other kinds carry no
                // pages and rebuild from the RID keys at open.
                match kind {
                    IndexKind::FullCss => {
                        let t = FullCssTree::<u32, CSS_M>::from_shared(keys.clone());
                        let levels = t.layout().directory_levels();
                        m.u32(levels);
                        for level in 0..levels {
                            m.u32(w.page(
                                PageKind::CssLevel,
                                &encode_u32s_raw(t.directory_level(level)),
                            ));
                        }
                    }
                    IndexKind::LevelCss => {
                        let t = LevelCssTree::<u32, CSS_M>::from_shared(keys.clone());
                        let levels = t.layout().directory_levels();
                        m.u32(levels);
                        for level in 0..levels {
                            m.u32(w.page(
                                PageKind::CssLevel,
                                &encode_u32s_raw(t.directory_level(level)),
                            ));
                        }
                    }
                    _ => m.u32(0),
                }
            }
        }
    }
    w.finish(&m.buf)
}

/// Deserialize a catalog image into a fresh [`Database`] (generation
/// 1, env-derived [`ExecOptions`](crate::plan::ExecOptions)) — the
/// receive side of a shard snapshot transfer. `label` names the byte
/// source in any error (a path, an endpoint, ...).
pub fn catalog_from_bytes(bytes: &[u8], label: &str) -> Result<Database> {
    Database::open_from_bytes(bytes.to_vec(), label)
}

// ---------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------

impl Database {
    /// Serialize the current committed catalog into a store image.
    pub fn save_to_bytes(&self) -> Vec<u8> {
        catalog_to_bytes(self.catalog())
    }

    /// Write the current committed catalog to `path` as a paged,
    /// checksummed store file. Any I/O fault is a typed
    /// [`MmdbError::Storage`], never a panic.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<()> {
        ccindex_store::write_file(path.as_ref(), &self.save_to_bytes())?;
        Ok(())
    }

    /// Cold-start a database from a store file written by
    /// [`Database::save_to`]: pages are read and validated, the
    /// catalog is reassembled from parts — no row re-encoding, no RID
    /// re-sort, no CSS directory rebuild.
    pub fn open_from(path: impl AsRef<Path>) -> Result<Self> {
        let mut reader = StoreReader::open_file(path.as_ref())?;
        let tables = decode_tables(&mut reader)?;
        let mut db = Database::new();
        db.replace_tables(tables);
        Ok(db)
    }

    /// [`Database::open_from`] over an in-memory image; `label` names
    /// the byte source in errors.
    pub fn open_from_bytes(bytes: Vec<u8>, label: &str) -> Result<Self> {
        let mut reader = StoreReader::open_bytes(bytes, label)?;
        let tables = decode_tables(&mut reader)?;
        let mut db = Database::new();
        db.replace_tables(tables);
        Ok(db)
    }

    /// Replace this database's catalog with a decoded image, committed
    /// through the normal [`SwapSlot`](crate::snapshot::SwapSlot)
    /// cycle: readers pinned to older generations are unaffected, the
    /// restored catalog is the next generation, and the database's
    /// [`ExecOptions`](crate::plan::ExecOptions) are kept. Nothing is
    /// replaced if the image fails validation.
    pub fn restore_from_bytes(&mut self, bytes: &[u8], label: &str) -> Result<()> {
        let mut reader = StoreReader::open_bytes(bytes.to_vec(), label)?;
        let tables = decode_tables(&mut reader)?;
        self.replace_tables(tables);
        Ok(())
    }
}

fn decode_tables(r: &mut StoreReader) -> Result<BTreeMap<String, Arc<TableEntry>>> {
    let label = r.path().to_owned();
    let manifest = r.manifest().to_vec();
    let mut m = MReader::new(&manifest, &label);
    let version = m.u32()?;
    if version != MANIFEST_VERSION {
        return Err(MmdbError::Storage {
            path: label,
            fault: StorageFault::Version,
            detail: format!(
                "catalog manifest version {version}, this build reads {MANIFEST_VERSION}"
            ),
        });
    }
    let mut tables = BTreeMap::new();
    let table_count = m.u32()?;
    for _ in 0..table_count {
        let name = m.str()?;
        let rows = usize::try_from(m.u64()?)
            .map_err(|_| corrupt(&label, format!("table `{name}`: impossible row count")))?;
        let column_count = m.u32()?;
        let mut columns: Vec<(String, Column)> = Vec::with_capacity(column_count as usize);
        for _ in 0..column_count {
            let col_name = m.str()?;
            if columns.iter().any(|(n, _)| *n == col_name) {
                return Err(corrupt(
                    &label,
                    format!("table `{name}`: duplicate column `{col_name}`"),
                ));
            }
            let values_page = m.u32()?;
            let ids_page = m.u32()?;
            let domain = decode_domain(r, values_page, &label, &name, &col_name)?;
            let ids = decode_u32s(r, ids_page, PageKind::ColumnIds, &label)?;
            if ids.len() != rows {
                return Err(corrupt(
                    &label,
                    format!(
                        "column `{name}.{col_name}`: {} in-place IDs for {rows} rows",
                        ids.len()
                    ),
                ));
            }
            if let Some(&bad) = ids.iter().find(|&&id| id as usize >= domain.len()) {
                return Err(corrupt(
                    &label,
                    format!(
                        "column `{name}.{col_name}`: ID {bad} outside its {}-value domain",
                        domain.len()
                    ),
                ));
            }
            // Proven: every ID is in range, so the asserting
            // constructor cannot fire.
            columns.push((col_name, Column::from_parts(domain, ids)));
        }
        let table = Table::from_parts(name.clone(), columns, rows);

        let indexed_count = m.u32()?;
        let mut col_entries: BTreeMap<String, ColumnEntry> = BTreeMap::new();
        for _ in 0..indexed_count {
            let col_name = m.str()?;
            let col = table.column(&col_name).ok_or_else(|| {
                corrupt(
                    &label,
                    format!("RID list for `{name}.{col_name}`, which is not a column"),
                )
            })?;
            let keys_page = m.u32()?;
            let rids_page = m.u32()?;
            let keys = decode_u32s(r, keys_page, PageKind::RidKeys, &label)?;
            let rids = decode_u32s(r, rids_page, PageKind::RidValues, &label)?;
            let rid_list = validate_rid_list(&label, &name, &col_name, col, keys, rids)?;
            let shared_keys = rid_list.keys().clone();

            let index_count = m.u32()?;
            let mut indexes: BTreeMap<IndexKind, Arc<IndexHandle>> = BTreeMap::new();
            for _ in 0..index_count {
                let code = m.u8()?;
                let kind = kind_from_code(code).ok_or_else(|| {
                    corrupt(
                        &label,
                        format!("`{name}.{col_name}`: unknown index kind code {code}"),
                    )
                })?;
                let level_count = m.u32()?;
                let handle = if level_count == 0 {
                    // Non-CSS kinds carry no pages; rebuild over the
                    // validated shared keys.
                    IndexHandle::build(kind, &shared_keys)
                } else {
                    let mut slots: Vec<u32> = Vec::new();
                    for _ in 0..level_count {
                        let page = m.u32()?;
                        slots.extend(decode_u32s_raw(r, page, &label)?);
                    }
                    css_handle_from_levels(&label, &name, &col_name, kind, &shared_keys, &slots)?
                };
                indexes.insert(kind, Arc::new(handle));
            }
            col_entries.insert(
                col_name,
                ColumnEntry {
                    rids: rid_list,
                    indexes,
                },
            );
        }
        if tables.contains_key(&name) {
            return Err(corrupt(&label, format!("duplicate table `{name}`")));
        }
        tables.insert(
            name,
            Arc::new(TableEntry {
                table,
                columns: col_entries,
            }),
        );
    }
    m.expect_end()?;
    Ok(tables)
}

/// Prove `keys`/`rids` are exactly `RidList::for_column(col)` — value
/// order with RID-stable ties over a permutation of the rows — before
/// handing them to the asserting constructors. Anything less is
/// corruption, reported, never a panic.
fn validate_rid_list(
    label: &str,
    table: &str,
    column: &str,
    col: &Column,
    keys: Vec<u32>,
    rids: Vec<u32>,
) -> Result<RidList> {
    let at = |detail: String| corrupt(label, format!("RID list for `{table}.{column}`: {detail}"));
    let rows = col.len();
    if keys.len() != rows || rids.len() != rows {
        return Err(at(format!(
            "{} keys / {} RIDs for {rows} rows",
            keys.len(),
            rids.len()
        )));
    }
    let mut seen = vec![false; rows];
    for (pos, (&key, &rid)) in keys.iter().zip(&rids).enumerate() {
        if rid as usize >= rows {
            return Err(at(format!("RID {rid} out of range at position {pos}")));
        }
        if seen[rid as usize] {
            return Err(at(format!("RID {rid} appears twice")));
        }
        seen[rid as usize] = true;
        if col.id(rid) != key {
            return Err(at(format!(
                "key {key} at position {pos} disagrees with the column's ID for row {rid}"
            )));
        }
        if pos > 0 && (key, rid) < (keys[pos - 1], rids[pos - 1]) {
            return Err(at(format!("unsorted at position {pos}")));
        }
    }
    // Sorted (checked above), parallel (length-checked): neither
    // asserting constructor can fire.
    Ok(RidList::from_parts(SortedArray::from_vec(keys), rids))
}

/// Reassemble a CSS tree from its concatenated level pages; a
/// slot-count/geometry mismatch is a typed corruption error.
fn css_handle_from_levels(
    label: &str,
    table: &str,
    column: &str,
    kind: IndexKind,
    keys: &SortedArray<u32>,
    slots: &[u32],
) -> Result<IndexHandle> {
    let wrap = |e: String| corrupt(label, format!("{kind:?} index on `{table}.{column}`: {e}"));
    match kind {
        IndexKind::FullCss => {
            FullCssTree::<u32, CSS_M>::from_shared_with_directory(keys.clone(), slots)
                .map(|t| IndexHandle::Ordered(Box::new(t)))
                .map_err(wrap)
        }
        IndexKind::LevelCss => {
            LevelCssTree::<u32, CSS_M>::from_shared_with_directory(keys.clone(), slots)
                .map(|t| IndexHandle::Ordered(Box::new(t)))
                .map_err(wrap)
        }
        other => Err(wrap(format!("{other:?} indexes carry no directory pages"))),
    }
}

// ---------------------------------------------------------------------
// Page payload codecs
// ---------------------------------------------------------------------

fn encode_domain(domain: &Domain) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(domain.len() as u32).to_le_bytes());
    for v in domain.values() {
        match v {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

fn decode_domain(
    r: &mut StoreReader,
    page: u32,
    label: &str,
    table: &str,
    column: &str,
) -> Result<Domain> {
    let bytes = r.read_page_expect(page, PageKind::DomainValues)?;
    let mut c = MReader::new(&bytes, label);
    let count = c.u32()?;
    let mut values = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let v = match c.u8()? {
            0 => Value::Int(i64::from_le_bytes(
                c.bytes(8)?.try_into().expect("8 bytes requested"),
            )),
            1 => {
                let len = c.u32()? as usize;
                let raw = c.bytes(len)?.to_vec();
                Value::Str(String::from_utf8(raw).map_err(|_| {
                    corrupt(
                        label,
                        format!("domain of `{table}.{column}`: invalid UTF-8"),
                    )
                })?)
            }
            tag => {
                return Err(corrupt(
                    label,
                    format!("domain of `{table}.{column}`: unknown value tag {tag}"),
                ))
            }
        };
        if let Some(prev) = values.last() {
            if *prev >= v {
                return Err(corrupt(
                    label,
                    format!("domain of `{table}.{column}`: values not strictly increasing"),
                ));
            }
        }
        values.push(v);
    }
    c.expect_end()?;
    // Sorted and deduplicated (proven above), so `from_values` is a
    // no-op pass over already-ordered input.
    Ok(Domain::from_values(values))
}

fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + vals.len() * 4);
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    out.extend_from_slice(&encode_u32s_raw(vals));
    out
}

fn encode_u32s_raw(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u32s(r: &mut StoreReader, page: u32, kind: PageKind, label: &str) -> Result<Vec<u32>> {
    let bytes = r.read_page_expect(page, kind)?;
    let mut c = MReader::new(&bytes, label);
    let count = c.u32()? as usize;
    if bytes.len() != 4 + count * 4 {
        return Err(corrupt(
            label,
            format!(
                "page {page}: {count}-entry array in a {}-byte page",
                bytes.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(c.u32()?);
    }
    Ok(out)
}

fn decode_u32s_raw(r: &mut StoreReader, page: u32, label: &str) -> Result<Vec<u32>> {
    let bytes = r.read_page_expect(page, PageKind::CssLevel)?;
    if bytes.len() % 4 != 0 {
        return Err(corrupt(
            label,
            format!("page {page}: CSS level page of {} bytes", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunks")))
        .collect())
}

// ---------------------------------------------------------------------
// Manifest codec + index-kind codes
// ---------------------------------------------------------------------

/// Stable on-disk code per [`IndexKind`] (declaration order — do not
/// renumber; the manifest version covers schema changes instead).
fn kind_code(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::BinarySearch => 0,
        IndexKind::InterpolationSearch => 1,
        IndexKind::BinaryTree => 2,
        IndexKind::TTree => 3,
        IndexKind::BPlusTree => 4,
        IndexKind::FullCss => 5,
        IndexKind::LevelCss => 6,
        IndexKind::Hash => 7,
    }
}

fn kind_from_code(code: u8) -> Option<IndexKind> {
    IndexKind::ALL.into_iter().find(|&k| kind_code(k) == code)
}

/// Little-endian manifest writer.
#[derive(Default)]
struct MWriter {
    buf: Vec<u8>,
}

impl MWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over manifest or page bytes;
/// every short read is a typed corruption error naming `label`.
struct MReader<'a> {
    buf: &'a [u8],
    pos: usize,
    label: &'a str,
}

impl<'a> MReader<'a> {
    fn new(buf: &'a [u8], label: &'a str) -> Self {
        Self { buf, pos: 0, label }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(corrupt(
                self.label,
                format!(
                    "truncated: {n} bytes wanted at offset {}, {} remain",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            )),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes requested"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes requested"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?.to_vec();
        String::from_utf8(raw).map_err(|_| corrupt(self.label, "manifest string is invalid UTF-8"))
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt(
                self.label,
                format!(
                    "{} trailing bytes after the manifest",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{between, eq};
    use crate::table::TableBuilder;

    fn seeded_db() -> Database {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("sales")
                .int_column("amount", [30, 10, 20, 10, 30, 40, 10])
                .str_column("region", ["e", "w", "e", "n", "w", "e", "s"])
                .build()
                .expect("equal columns"),
        )
        .expect("fresh name");
        db.create_index("sales", "amount", IndexKind::FullCss)
            .expect("index");
        db.create_index("sales", "amount", IndexKind::LevelCss)
            .expect("index");
        db.create_index("sales", "amount", IndexKind::Hash)
            .expect("index");
        db.create_index("sales", "region", IndexKind::BPlusTree)
            .expect("index");
        db.register(
            TableBuilder::new("unindexed")
                .int_column("x", [1, 2, 3])
                .build()
                .expect("equal columns"),
        )
        .expect("fresh name");
        db
    }

    fn answers(db: &Database) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let a = db
            .query("sales")
            .filter(eq("amount", 10))
            .run()
            .expect("query")
            .rids()
            .to_vec();
        let b = db
            .query("sales")
            .filter(between("amount", 15, 35))
            .run()
            .expect("query")
            .rids()
            .to_vec();
        let c = db
            .query("sales")
            .filter(eq("region", "e"))
            .run()
            .expect("query")
            .rids()
            .to_vec();
        (a, b, c)
    }

    #[test]
    fn bytes_roundtrip_preserves_catalog_and_answers() {
        let db = seeded_db();
        let image = db.save_to_bytes();
        let back = Database::open_from_bytes(image, "mem").expect("reopen");
        assert_eq!(
            back.tables().collect::<Vec<_>>(),
            db.tables().collect::<Vec<_>>()
        );
        assert_eq!(back.table("sales").unwrap().rows(), 7);
        assert_eq!(
            back.indexed_kinds("sales", "amount").unwrap(),
            vec![IndexKind::FullCss, IndexKind::LevelCss, IndexKind::Hash]
        );
        assert_eq!(
            back.indexed_kinds("sales", "region").unwrap(),
            vec![IndexKind::BPlusTree]
        );
        assert_eq!(answers(&back), answers(&db));
        // The unindexed table survives with its values.
        assert_eq!(
            back.table("unindexed").unwrap().value("x", 2),
            Some(&Value::Int(3))
        );
    }

    #[test]
    fn file_roundtrip_and_missing_file_are_typed() {
        let dir = std::env::temp_dir().join(format!("ccindex-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("catalog.ccs");
        let db = seeded_db();
        db.save_to(&path).expect("save");
        let back = Database::open_from(&path).expect("open");
        assert_eq!(answers(&back), answers(&db));

        let missing = dir.join("missing.ccs");
        let err = Database::open_from(&missing).expect_err("missing file");
        assert!(matches!(
            err,
            MmdbError::Storage {
                fault: StorageFault::Open,
                ..
            }
        ));
        assert!(err.to_string().contains("missing.ccs"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_commits_a_generation_and_keeps_pinned_readers() {
        let db = seeded_db();
        let image = db.save_to_bytes();

        let mut other = Database::new();
        other
            .register(
                TableBuilder::new("old")
                    .int_column("v", [9])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let pinned = other.snapshot();
        let g = other.generation();
        other
            .restore_from_bytes(&image, "transfer")
            .expect("restore");
        assert_eq!(other.generation(), g + 1, "one commit");
        // The pinned reader still sees the pre-restore catalog.
        assert_eq!(pinned.tables().collect::<Vec<_>>(), ["old"]);
        // The restored tip answers identically to the source.
        assert_eq!(answers(&other), answers(&db));
        assert!(other.table("old").is_err(), "restore replaces the catalog");
    }

    #[test]
    fn corrupt_manifest_version_is_a_typed_version_error() {
        let db = seeded_db();
        let mut m = MWriter::default();
        m.u32(MANIFEST_VERSION + 9);
        let image = StoreWriter::new().finish(&m.buf);
        let err = Database::open_from_bytes(image, "mem").expect_err("future manifest");
        assert!(matches!(
            err,
            MmdbError::Storage {
                fault: StorageFault::Version,
                ..
            }
        ));
        drop(db);
    }

    #[test]
    fn bit_flips_anywhere_surface_as_typed_errors_never_panics() {
        let db = seeded_db();
        let image = db.save_to_bytes();
        // Flip one bit in every byte position; opening must either
        // fail typed or (reserved header padding) still answer right.
        for at in 0..image.len() {
            let mut bad = image.clone();
            bad[at] ^= 0x10;
            match Database::open_from_bytes(bad, "flip") {
                Ok(back) => assert_eq!(answers(&back), answers(&db), "flip at {at}"),
                Err(MmdbError::Storage { .. }) => {}
                Err(other) => panic!("flip at {at}: non-storage error {other:?}"),
            }
        }
    }

    #[test]
    fn truncations_surface_as_typed_errors_never_panics() {
        let image = seeded_db().save_to_bytes();
        for keep in [0, 1, 7, 8, 20, image.len() / 2, image.len() - 1] {
            let err = Database::open_from_bytes(image[..keep].to_vec(), "trunc")
                .expect_err("truncated image");
            assert!(
                matches!(err, MmdbError::Storage { .. }),
                "keep {keep}: {err:?}"
            );
        }
    }

    #[test]
    fn kind_codes_are_stable_and_total() {
        for kind in IndexKind::ALL {
            assert_eq!(kind_from_code(kind_code(kind)), Some(kind));
        }
        assert_eq!(kind_from_code(200), None);
        // On-disk stability: codes are declaration order today; a
        // renumbering must bump MANIFEST_VERSION instead.
        assert_eq!(kind_code(IndexKind::FullCss), 5);
        assert_eq!(kind_code(IndexKind::Hash), 7);
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let db = Database::new();
        let back = Database::open_from_bytes(db.save_to_bytes(), "mem").expect("reopen");
        assert_eq!(back.tables().count(), 0);
    }
}
