//! Composable queries over the [`Database`] engine: a declarative
//! [`Query`] builder, the small physical [`Plan`] it compiles into, and
//! the executor that drives the batched physical operators.
//!
//! The shape mirrors the paper's three index consumers (§2.2):
//! selections ([`eq`] / [`between`] filters, conjunctions combined by
//! sorted RID-set intersection), indexed nested-loop joins
//! ([`Query::join`]), and domain encoding (every probe starts with a
//! batched `encode_batch`). Grouped aggregation ([`Query::group_by`])
//! rides on top, as OLAP queries do.
//!
//! ```
//! use mmdb::{between, eq, on, sum, Database, IndexKind, TableBuilder};
//!
//! # fn main() -> mmdb::Result<()> {
//! let mut db = Database::new();
//! db.register(
//!     TableBuilder::new("sales")
//!         .int_column("cust", [1, 2, 1, 3])
//!         .int_column("amount", [10, 40, 25, 99])
//!         .build()?,
//! )?;
//! db.register(
//!     TableBuilder::new("customers")
//!         .int_column("id", [1, 2, 3])
//!         .str_column("region", ["east", "west", "east"])
//!         .build()?,
//! )?;
//! db.create_index("sales", "amount", IndexKind::FullCss)?;
//! db.create_index("customers", "id", IndexKind::Hash)?;
//!
//! // Select, join, aggregate — one composable pipeline.
//! let revenue = db
//!     .query("sales")
//!     .filter(between("amount", 20, 100))
//!     .join("customers", on("cust", "id"))
//!     .group_by("region", sum("amount"))
//!     .run()?;
//! assert_eq!(revenue.groups().len(), 2); // east: 25 + 99, west: 40
//! # Ok(())
//! # }
//! ```

use crate::aggregate::{
    group_aggregate_chunked_par, group_aggregate_pairs, group_aggregate_rows_par, AggFn, GroupRow,
};
use crate::column::Column;
use crate::domain::Value;
use crate::engine::Database;
use crate::error::{MmdbError, Result};
use crate::index_choice::{IndexHandle, IndexKind};
use crate::query::{
    indexed_nested_loop_join_rids_par, point_select_many_ordered_par, point_select_many_par,
    range_select_many_par, JoinRow,
};
use crate::snapshot::CatalogState;
use ccindex_common::DEFAULT_BATCH_LANES;

// ---------------------------------------------------------------------
// Execution options
// ---------------------------------------------------------------------

/// Execution knobs for the physical operators, set catalog-wide with
/// [`Database::set_exec_options`] (or per query with [`Query::exec`]) and
/// recorded on every compiled [`Plan`] so plans stay inspectable.
///
/// `threads == 1` (the default) is the sequential executor; `threads >
/// 1` routes the equality/range/join/group stages through the
/// partitioned operators on a scoped worker pool of exactly that many
/// workers; `threads == 0` means **adaptive**: each plan node picks its
/// own worker count at execution time from the number of probes/RIDs it
/// actually processes ([`ccindex_parallel::adaptive_threads`]), so tiny
/// inputs run inline and never pay the spawn overhead while large stages
/// still spread across every core. `lanes` is the interleave lane count
/// handed to batch-aware indexes
/// (`lower_bound_batch_lanes`/`search_batch_lanes`); structures that are
/// not batch-aware ignore it, and degenerate values (0, or more lanes
/// than probes) fall back to sequential descent. `shards` is read by the
/// sharded catalog layer (`ccindex-shard`): how many shards a
/// `ShardedDatabase` built "from the environment" partitions each table
/// across (plain [`Database`]s ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for the partitioned operators (`1` sequential,
    /// `0` adaptive per node).
    pub threads: usize,
    /// Interleave lanes per batched index descent.
    pub lanes: usize,
    /// Shard count for environment-constructed sharded catalogs
    /// (minimum 1; plain catalogs ignore it).
    pub shards: usize,
}

impl Default for ExecOptions {
    /// Sequential, unsharded execution at the default lane count.
    fn default() -> Self {
        Self {
            threads: 1,
            lanes: DEFAULT_BATCH_LANES,
            shards: 1,
        }
    }
}

impl ExecOptions {
    /// Partitioned execution across `threads` workers (`0` = adaptive
    /// per node) at the default lane count.
    pub fn threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Read the knobs from the environment, failing loudly: an **unset**
    /// variable falls back to the [`ExecOptions::default`] value, but a
    /// set-yet-unparsable one (`CCINDEX_THREADS=abc`) is a typed
    /// [`MmdbError::InvalidExecOption`] naming the variable and its
    /// value — a misconfigured CI run should fail, not silently execute
    /// with defaults. Parsed values are normalised by
    /// [`ExecOptions::normalized`].
    pub fn try_from_env() -> Result<Self> {
        Ok(Self {
            threads: env_knob("CCINDEX_THREADS")?.unwrap_or(Self::default().threads),
            lanes: env_knob("CCINDEX_LANES")?.unwrap_or(Self::default().lanes),
            shards: env_knob("CCINDEX_SHARDS")?.unwrap_or(Self::default().shards),
        }
        .normalized())
    }

    /// The infallible twin of [`ExecOptions::try_from_env`]: what
    /// [`Database::new`] uses, so a whole test suite or service can be
    /// switched to partitioned execution without a code change (CI runs
    /// the tests with `CCINDEX_THREADS=8`, `CCINDEX_SHARDS=4` and
    /// `CCINDEX_BATCH_MAX=16`). An unparsable variable no longer falls
    /// back *silently*: the typed error is logged to stderr, and only
    /// the offending knob takes its default — the other, correctly-set
    /// knobs keep their configured values.
    pub fn from_env() -> Self {
        let default = Self::default();
        Self {
            threads: env_knob_lenient("CCINDEX_THREADS").unwrap_or(default.threads),
            lanes: env_knob_lenient("CCINDEX_LANES").unwrap_or(default.lanes),
            shards: env_knob_lenient("CCINDEX_SHARDS").unwrap_or(default.shards),
        }
        .normalized()
    }

    /// Apply the knobs' floors consistently: `lanes` and `shards` are
    /// raised to at least 1 (`lanes == 0` and `lanes == 1` both mean a
    /// sequential descent, and a catalog needs at least one shard, so
    /// the floor is a pure normalisation). `threads` is deliberately
    /// exempt — `0` is the documented *adaptive* sentinel, not a
    /// degenerate value.
    pub fn normalized(self) -> Self {
        Self {
            threads: self.threads,
            lanes: self.lanes.max(1),
            shards: self.shards.max(1),
        }
    }

    /// Whether this configuration partitions work across workers.
    pub fn is_parallel(&self) -> bool {
        self.threads != 1
    }
}

/// One environment knob: `Ok(None)` when unset, `Ok(Some(v))` when it
/// parses, and a typed [`MmdbError::InvalidExecOption`] otherwise. The
/// env read and the parse are split so the parse rule is unit-testable
/// without mutating process-wide environment state.
fn env_knob(name: &'static str) -> Result<Option<usize>> {
    parse_knob(name, std::env::var(name).ok())
}

/// [`env_knob`] for the infallible `from_env` paths: an unparsable knob
/// logs its typed error to stderr and reads as unset, so only the
/// offending variable falls back to its default.
pub(crate) fn env_knob_lenient(name: &'static str) -> Option<usize> {
    env_knob(name).unwrap_or_else(|e| {
        eprintln!("ccindex: {e}; using the default for {name}");
        None
    })
}

/// Parse rule shared by every `CCINDEX_*` integer knob (including the
/// serving layer's `CCINDEX_BATCH_*` pair): absent stays absent,
/// surrounding whitespace is tolerated, anything else must be a base-10
/// unsigned integer.
pub fn parse_knob(name: &str, raw: Option<String>) -> Result<Option<usize>> {
    match raw {
        None => Ok(None),
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map(Some)
            .map_err(|_| MmdbError::InvalidExecOption {
                name: name.to_owned(),
                value: v,
            }),
    }
}

/// Resolve a plan node's recorded thread count against the work it is
/// about to do: `0` ("auto") adapts to the item count so small inputs
/// run inline, anything else is used as given.
fn resolve_threads(threads: usize, items: usize) -> usize {
    if threads == 0 {
        ccindex_parallel::adaptive_threads(items)
    } else {
        threads
    }
}

// ---------------------------------------------------------------------
// Builder vocabulary
// ---------------------------------------------------------------------

/// Equality predicate: `column = value`.
pub fn eq(column: &str, value: impl Into<Value>) -> Predicate {
    Predicate {
        column: column.to_owned(),
        op: PredOp::Eq(value.into()),
    }
}

/// Inclusive range predicate: `lo <= column <= hi`.
pub fn between(column: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
    Predicate {
        column: column.to_owned(),
        op: PredOp::Between(lo.into(), hi.into()),
    }
}

/// Join condition: `outer_column = inner_column`.
pub fn on(outer_column: &str, inner_column: &str) -> JoinOn {
    JoinOn {
        outer: outer_column.to_owned(),
        inner: inner_column.to_owned(),
    }
}

/// `COUNT(*)` per group.
pub fn count() -> Agg {
    Agg::Count
}

/// `SUM(column)` per group.
pub fn sum(column: &str) -> Agg {
    Agg::Sum(column.to_owned())
}

/// `MIN(column)` per group.
pub fn min(column: &str) -> Agg {
    Agg::Min(column.to_owned())
}

/// `MAX(column)` per group.
pub fn max(column: &str) -> Agg {
    Agg::Max(column.to_owned())
}

/// One conjunct of a query's WHERE clause (built by [`eq`]/[`between`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    column: String,
    op: PredOp,
}

#[derive(Debug, Clone, PartialEq)]
enum PredOp {
    Eq(Value),
    Between(Value, Value),
}

/// A borrowed view of a predicate's shape, for layers that need to
/// inspect or re-encode one (shard routing, the wire format) without
/// reaching into the private representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredicateOp<'a> {
    /// `column = value`.
    Eq(&'a Value),
    /// `lo <= column <= hi`, inclusive.
    Between(&'a Value, &'a Value),
}

impl Predicate {
    /// The column this conjunct constrains.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The comparison this conjunct applies, as a borrowed view.
    pub fn op(&self) -> PredicateOp<'_> {
        match &self.op {
            PredOp::Eq(v) => PredicateOp::Eq(v),
            PredOp::Between(lo, hi) => PredicateOp::Between(lo, hi),
        }
    }
}

/// An equi-join condition (built by [`on`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOn {
    outer: String,
    inner: String,
}

impl JoinOn {
    /// The join column on the outer (driving) table.
    pub fn outer(&self) -> &str {
        &self.outer
    }

    /// The join column on the inner (indexed) table — what a sharding
    /// layer compares against the inner table's shard key to decide
    /// bucketed vs fanned join routing.
    pub fn inner(&self) -> &str {
        &self.inner
    }
}

/// An aggregate over the grouped rows (built by [`count`]/[`sum`]/
/// [`min`]/[`max`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Row count per group.
    Count,
    /// Sum of the named integer measure column.
    Sum(String),
    /// Minimum of the named integer measure column.
    Min(String),
    /// Maximum of the named integer measure column.
    Max(String),
}

impl Agg {
    fn fn_and_measure(&self) -> (AggFn, Option<&str>) {
        match self {
            Agg::Count => (AggFn::Count, None),
            Agg::Sum(m) => (AggFn::Sum, Some(m)),
            Agg::Min(m) => (AggFn::Min, Some(m)),
            Agg::Max(m) => (AggFn::Max, Some(m)),
        }
    }
}

// ---------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------

/// A composable query over one table (and optionally one joined inner
/// table), started by [`Database::query`]. Nothing resolves until
/// [`Query::plan`] or [`Query::run`], so builders can be assembled
/// freely and fail with a typed error naming the offender.
#[derive(Debug, Clone)]
pub struct Query<'db> {
    cat: &'db CatalogState,
    table: String,
    filters: Vec<Predicate>,
    join: Option<(String, JoinOn)>,
    group: Option<(String, Agg)>,
    forced_kind: Option<IndexKind>,
    exec: Option<ExecOptions>,
}

impl<'db> Query<'db> {
    pub(crate) fn new(cat: &'db CatalogState, table: String) -> Self {
        Self {
            cat,
            table,
            filters: Vec::new(),
            join: None,
            group: None,
            forced_kind: None,
            exec: None,
        }
    }

    /// Add a conjunct; multiple filters AND together and are combined by
    /// sorted RID-set intersection.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filters.push(predicate);
        self
    }

    /// Indexed nested-loop join against `inner_table` (the filtered rows
    /// of this query's table stream through the inner column's index).
    pub fn join(mut self, inner_table: &str, condition: JoinOn) -> Self {
        self.join = Some((inner_table.to_owned(), condition));
        self
    }

    /// Group the result (join output if a join is present, else the
    /// selected rows) by `column` and aggregate each group. The column
    /// and any measure may come from either side of a join.
    pub fn group_by(mut self, column: &str, agg: Agg) -> Self {
        self.group = Some((column.to_owned(), agg));
        self
    }

    /// Force every probe in this query through one [`IndexKind`] instead
    /// of the catalog's preference order. The kind must be built on each
    /// probed column, and range filters reject the (unordered) hash kind.
    pub fn using(mut self, kind: IndexKind) -> Self {
        self.forced_kind = Some(kind);
        self
    }

    /// Override the catalog's [`ExecOptions`] for this query alone —
    /// e.g. `.exec(ExecOptions::threads(8))` to partition its stages
    /// across 8 workers regardless of [`Database::set_exec_options`].
    pub fn exec(mut self, options: ExecOptions) -> Self {
        self.exec = Some(options);
        self
    }

    /// Compile into a physical [`Plan`]: resolve every name, choose an
    /// access path per probe, and validate aggregate typing.
    pub fn plan(&self) -> Result<Plan> {
        let cat = self.cat;
        let outer = &self.table;
        cat.entry(outer)?;
        let exec = self.exec.unwrap_or_else(|| cat.exec_options());
        // The planner's upper bound on the items a chunkable node can
        // process (the driving table's row count): what an adaptive
        // (`threads == 0`) node's worker count resolves against when the
        // plan is *explained* rather than executed.
        let outer_rows = cat.table(outer)?.rows();

        let mut probes = Vec::with_capacity(self.filters.len());
        for p in &self.filters {
            let ordered_required = matches!(p.op, PredOp::Between(..));
            let kind = resolve_kind(cat, outer, &p.column, ordered_required, self.forced_kind)?;
            probes.push(ProbeStep {
                column: p.column.clone(),
                kind,
                probe: match &p.op {
                    PredOp::Eq(v) => Probe::Point(v.clone()),
                    PredOp::Between(lo, hi) => Probe::Range(lo.clone(), hi.clone()),
                },
                // A filter stage probes one constant, which cannot be
                // chunked — recording `exec.threads` here would claim a
                // partitioning that can never happen.
                threads: 1,
            });
        }

        let join = match &self.join {
            None => None,
            Some((inner_table, cond)) => {
                cat.column(outer, &cond.outer)?;
                cat.column(inner_table, &cond.inner)?;
                let kind = resolve_kind(cat, inner_table, &cond.inner, false, self.forced_kind)?;
                Some(JoinStep {
                    inner_table: inner_table.clone(),
                    outer_column: cond.outer.clone(),
                    inner_column: cond.inner.clone(),
                    kind,
                    threads: exec.threads,
                    rows_hint: outer_rows,
                })
            }
        };

        let group = match &self.group {
            None => None,
            Some((column, agg)) => {
                let inner = join.as_ref().map(|j| j.inner_table.as_str());
                let (side, _) = resolve_side(cat, outer, inner, column)?;
                let (agg_fn, measure) = agg.fn_and_measure();
                let measure = match measure {
                    None => None,
                    Some(m) => {
                        let (m_side, m_col) = resolve_side(cat, outer, inner, m)?;
                        let all_int = m_col
                            .domain()
                            .values()
                            .iter()
                            .all(|v| matches!(v, Value::Int(_)));
                        if !all_int {
                            let table = match m_side {
                                Side::Outer => outer.clone(),
                                Side::Inner => join
                                    .as_ref()
                                    .expect("inner side implies join")
                                    .inner_table
                                    .clone(),
                            };
                            return Err(MmdbError::NonIntegerMeasure {
                                table,
                                column: m.to_owned(),
                            });
                        }
                        Some((m.to_owned(), m_side))
                    }
                };
                Some(GroupStep {
                    column: column.clone(),
                    side,
                    agg: agg_fn,
                    measure,
                    threads: exec.threads,
                    rows_hint: outer_rows,
                })
            }
        };

        Ok(Plan {
            table: outer.clone(),
            probes,
            join,
            group,
            exec,
        })
    }

    /// Compile and execute.
    pub fn run(&self) -> Result<ResultSet<'db>> {
        self.plan()?.execute_on(self.cat)
    }
}

/// Pick an access path for a probe on `table.column`: the forced kind if
/// any (validated), else the first registered kind in the applicable
/// preference order.
fn resolve_kind(
    cat: &CatalogState,
    table: &str,
    column: &str,
    ordered_required: bool,
    forced: Option<IndexKind>,
) -> Result<IndexKind> {
    let entry = cat.column_entry(table, column)?;
    if let Some(kind) = forced {
        if ordered_required && !kind.is_ordered() {
            return Err(MmdbError::NoOrderedIndex {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        if !entry.indexes.contains_key(&kind) {
            return Err(MmdbError::IndexNotBuilt {
                table: table.to_owned(),
                column: column.to_owned(),
                kind,
            });
        }
        return Ok(kind);
    }
    let preference: &[IndexKind] = if ordered_required {
        &IndexKind::ORDERED_PREFERENCE
    } else {
        &IndexKind::POINT_PREFERENCE
    };
    preference
        .iter()
        .copied()
        .find(|k| entry.indexes.contains_key(k))
        .ok_or_else(|| {
            // Something is registered (column_entry succeeded), so the
            // only way to miss is needing order with only hash built.
            MmdbError::NoOrderedIndex {
                table: table.to_owned(),
                column: column.to_owned(),
            }
        })
}

/// Which relation of a (possibly joined) query a column belongs to:
/// searched outer-first, so a name present on both sides binds to the
/// query's own table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The query's own table.
    Outer,
    /// The joined inner table.
    Inner,
}

fn resolve_side<'db>(
    cat: &'db CatalogState,
    outer: &str,
    inner: Option<&str>,
    column: &str,
) -> Result<(Side, &'db Column)> {
    if let Ok(col) = cat.column(outer, column) {
        return Ok((Side::Outer, col));
    }
    if let Some(inner) = inner {
        if let Ok(col) = cat.column(inner, column) {
            return Ok((Side::Inner, col));
        }
    }
    Err(MmdbError::UnknownColumn {
        table: outer.to_owned(),
        column: column.to_owned(),
    })
}

// ---------------------------------------------------------------------
// The physical plan
// ---------------------------------------------------------------------

/// A compiled physical plan: fully resolved probes, join, and grouping.
/// Inspect with [`Plan::explain`], execute with [`Plan::execute`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// The outer (driving) table.
    pub table: String,
    /// One index probe per filter; empty means every row qualifies.
    pub probes: Vec<ProbeStep>,
    /// The join, if any.
    pub join: Option<JoinStep>,
    /// The grouping, if any.
    pub group: Option<GroupStep>,
    /// The execution options the plan was compiled under; every node
    /// below records the thread count it was assigned from these.
    pub exec: ExecOptions,
}

/// One resolved filter probe.
#[derive(Debug, Clone)]
pub struct ProbeStep {
    /// Probed column of the outer table.
    pub column: String,
    /// Chosen access path.
    pub kind: IndexKind,
    /// The probe itself.
    pub probe: Probe,
    /// Worker threads this probe's select operator partitions across.
    /// Always 1 today: the executor evaluates each filter with a single
    /// probe constant, which cannot chunk (a future multi-value probe
    /// step would inherit the plan's `exec.threads`).
    pub threads: usize,
}

/// What a [`ProbeStep`] asks its index.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// Equality probe.
    Point(Value),
    /// Inclusive range probe (requires an ordered kind).
    Range(Value, Value),
}

/// A resolved indexed nested-loop join.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The inner (indexed) relation.
    pub inner_table: String,
    /// Join column on the outer table.
    pub outer_column: String,
    /// Join column on the inner table (must be indexed).
    pub inner_column: String,
    /// Access path on the inner column.
    pub kind: IndexKind,
    /// Worker threads the outer RID stream partitions across
    /// (1 = sequential, 0 = adaptive: resolved from the outer RID count
    /// at execution time).
    pub threads: usize,
    /// The planner's upper bound on the outer stream length (the driving
    /// table's row count). Execution resolves an adaptive node against
    /// the *actual* RID count; [`Plan::explain`] resolves against this
    /// hint so the rendered text reports a concrete worker count instead
    /// of the raw `0` knob.
    pub rows_hint: usize,
}

/// A resolved grouped aggregation.
#[derive(Debug, Clone)]
pub struct GroupStep {
    /// Group-by column.
    pub column: String,
    /// Which relation the group-by column lives on.
    pub side: Side,
    /// The aggregate function.
    pub agg: AggFn,
    /// Measure column and its side (`None` for `Count`).
    pub measure: Option<(String, Side)>,
    /// Worker threads accumulating partial aggregates (1 = sequential,
    /// 0 = adaptive: resolved from the grouped row count at execution
    /// time; partials merge at the join barrier).
    pub threads: usize,
    /// The planner's upper bound on the grouped row count (the driving
    /// table's row count; a join can multiply it, but the hint only
    /// feeds [`Plan::explain`]'s adaptive rendering — execution resolves
    /// against the actual row count).
    pub rows_hint: usize,
}

/// Wall-clock nanoseconds per executed plan node, stamped by
/// [`Plan::execute`] / [`Plan::execute_on`] and carried on the
/// [`ResultSet`] ([`ResultSet::timings`]). Render next to the plan text
/// with [`Plan::explain_timed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanTimings {
    /// One entry per [`ProbeStep`], in plan order. Each includes the
    /// intersection of that probe's RID set with the running selection.
    pub probe_ns: Vec<u64>,
    /// The join node, when the plan has one.
    pub join_ns: Option<u64>,
    /// The grouped-aggregation node, when the plan has one.
    pub group_ns: Option<u64>,
    /// End-to-end execution, including result assembly.
    pub total_ns: u64,
}

/// Nanoseconds since `since`, saturating at `u64::MAX`.
fn node_ns(since: &std::time::Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl Plan {
    /// A human-readable rendering of the plan, one step per line
    /// (parallel stages carry a `[xN threads]` suffix so the chosen
    /// parallelism is inspectable). An adaptive node (`threads == 0`)
    /// reports the worker count it *resolves* to for the node's
    /// planner-estimated item count — `[x4 threads (adaptive)]`, never a
    /// raw `x0` — via [`ccindex_parallel::adaptive_threads`], the same
    /// function the executor applies to the actual counts.
    pub fn explain(&self) -> String {
        self.render(None)
    }

    /// [`Plan::explain`] with each executed node's wall-clock time
    /// appended (`.. 12.3µs`), from the [`PlanTimings`] a
    /// [`ResultSet`] carries, plus a trailing `total:` line. Nodes the
    /// timings don't cover (e.g. a stale `PlanTimings::default()`)
    /// render untimed, exactly as in `explain()`.
    pub fn explain_timed(&self, timings: &PlanTimings) -> String {
        self.render(Some(timings))
    }

    fn render(&self, timings: Option<&PlanTimings>) -> String {
        let stamp = |ns: Option<u64>| match ns {
            Some(n) => format!(" .. {}", ccindex_obs::format_ns(n)),
            None => String::new(),
        };
        let par = |threads: usize, rows_hint: usize| match threads {
            1 => String::new(),
            0 => format!(
                " [x{} threads (adaptive)]",
                ccindex_parallel::adaptive_threads(rows_hint)
            ),
            n => format!(" [x{n} threads]"),
        };
        let mut out = format!("scan {}", self.table);
        if self.probes.is_empty() {
            out.push_str(" (all rows)");
        }
        for (i, p) in self.probes.iter().enumerate() {
            let timed = stamp(timings.and_then(|t| t.probe_ns.get(i).copied()));
            match &p.probe {
                Probe::Point(v) => {
                    out.push_str(&format!(
                        "\n  probe {} = {} via {:?}{}{timed}",
                        p.column,
                        v,
                        p.kind,
                        par(p.threads, 1)
                    ));
                }
                Probe::Range(lo, hi) => {
                    out.push_str(&format!(
                        "\n  probe {} in [{}, {}] via {:?}{}{timed}",
                        p.column,
                        lo,
                        hi,
                        p.kind,
                        par(p.threads, 1)
                    ));
                }
            }
        }
        if self.probes.len() > 1 {
            out.push_str(&format!(
                "\n  intersect {} sorted RID sets",
                self.probes.len()
            ));
        }
        if let Some(j) = &self.join {
            out.push_str(&format!(
                "\n  join {} on {} = {} via {:?}{}{}",
                j.inner_table,
                j.outer_column,
                j.inner_column,
                j.kind,
                par(j.threads, j.rows_hint),
                stamp(timings.and_then(|t| t.join_ns))
            ));
        }
        if let Some(g) = &self.group {
            let measure = g
                .measure
                .as_ref()
                .map_or_else(|| "*".to_owned(), |(m, _)| m.clone());
            out.push_str(&format!(
                "\n  group by {} ({:?} over {}){}{}",
                g.column,
                g.agg,
                measure,
                par(g.threads, g.rows_hint),
                stamp(timings.and_then(|t| t.group_ns))
            ));
        }
        if self.exec.is_parallel() {
            let workers = if self.exec.threads == 0 {
                "adaptive worker(s), resolved per node".to_owned()
            } else {
                format!("{} worker(s)", self.exec.threads)
            };
            out.push_str(&format!(
                "\n  exec: {workers}, {} interleave lane(s)",
                self.exec.lanes
            ));
        }
        if let Some(t) = timings {
            out.push_str(&format!(
                "\n  total: {}",
                ccindex_obs::format_ns(t.total_ns)
            ));
        }
        out
    }

    /// Execute against `db` (normally the database the plan was compiled
    /// from; names re-resolve, so a stale plan fails with a typed error
    /// rather than undefined behaviour). Answers from the writer's
    /// current tip — equivalent to `execute_on(db.catalog())`.
    pub fn execute<'db>(&self, db: &'db Database) -> Result<ResultSet<'db>> {
        self.execute_on(db.catalog())
    }

    /// Execute against one immutable catalog generation — the form a
    /// pinned [`Snapshot`](crate::snapshot::Snapshot) (or any
    /// [`CatalogState`]) serves without locks. Same re-resolution
    /// semantics as [`Plan::execute`].
    pub fn execute_on<'c>(&self, cat: &'c CatalogState) -> Result<ResultSet<'c>> {
        let started = std::time::Instant::now();
        let mut timings = PlanTimings::default();

        // 1. Selection: evaluate each probe to a sorted RID set and
        //    intersect. `None` means "all rows" (no filters), kept
        //    symbolic so group-only queries iterate 0..n without an
        //    allocation; a join or a bare selection materialises it once.
        let mut selected: Option<Vec<u32>> = None;
        for step in &self.probes {
            let probing = std::time::Instant::now();
            let rids = self.eval_probe(cat, step)?;
            selected = Some(match selected {
                None => rids,
                Some(prev) => intersect_sorted(&prev, &rids),
            });
            timings.probe_ns.push(node_ns(&probing));
        }

        // 2. Join: stream the selected outer rows through the inner
        //    column's index in probe blocks.
        let joining = std::time::Instant::now();
        let joined: Option<Vec<JoinRow>> = match &self.join {
            None => None,
            Some(j) => {
                let outer_col = cat.column(&self.table, &j.outer_column)?;
                let inner_col = cat.column(&j.inner_table, &j.inner_column)?;
                let entry = cat.column_entry(&j.inner_table, &j.inner_column)?;
                let handle =
                    entry
                        .indexes
                        .get(&j.kind)
                        .ok_or_else(|| MmdbError::IndexNotBuilt {
                            table: j.inner_table.clone(),
                            column: j.inner_column.clone(),
                            kind: j.kind,
                        })?;
                let all_rids: Vec<u32>;
                let outer_rids: &[u32] = match &selected {
                    Some(rids) => rids,
                    None => {
                        all_rids = (0..cat.table(&self.table)?.rows() as u32).collect();
                        &all_rids
                    }
                };
                Some(indexed_nested_loop_join_rids_par(
                    outer_col,
                    outer_rids,
                    inner_col,
                    &entry.rids,
                    handle.as_search(),
                    self.exec.lanes,
                    resolve_threads(j.threads, outer_rids.len()),
                ))
            }
        };
        if joined.is_some() {
            timings.join_ns = Some(node_ns(&joining));
        }

        // 3. Grouped aggregation over whichever rows survived.
        let grouping = std::time::Instant::now();
        if let Some(g) = &self.group {
            let inner = self.join.as_ref().map(|j| j.inner_table.as_str());
            let group_col = side_column(cat, &self.table, inner, &g.column, g.side)?;
            let measure_col = match &g.measure {
                None => None,
                Some((m, side)) => Some(side_column(cat, &self.table, inner, m, *side)?),
            };
            let pick = |row: &JoinRow, side: Side| match side {
                Side::Outer => row.outer_rid,
                Side::Inner => row.inner_rid,
            };
            // One arm per row source; within each, the thread count is
            // resolved against the source's actual row count (`0` =
            // adaptive), the partitioned path chunks the source in place
            // (no intermediate pair vector) and the sequential path
            // streams it lazily.
            let groups = match &joined {
                Some(rows) => {
                    let threads = resolve_threads(g.threads, rows.len());
                    let measure_side = g.measure.as_ref().map_or(g.side, |(_, s)| *s);
                    let to_pair = |r: &JoinRow| (pick(r, g.side), pick(r, measure_side));
                    if threads != 1 {
                        group_aggregate_chunked_par(
                            group_col,
                            measure_col,
                            rows,
                            to_pair,
                            g.agg,
                            threads,
                        )
                    } else {
                        group_aggregate_pairs(
                            group_col,
                            measure_col,
                            rows.iter().map(to_pair),
                            g.agg,
                        )
                    }
                }
                None => match &selected {
                    Some(rids) => {
                        let threads = resolve_threads(g.threads, rids.len());
                        if threads != 1 {
                            group_aggregate_chunked_par(
                                group_col,
                                measure_col,
                                rids,
                                |&r| (r, r),
                                g.agg,
                                threads,
                            )
                        } else {
                            group_aggregate_pairs(
                                group_col,
                                measure_col,
                                rids.iter().map(|&r| (r, r)),
                                g.agg,
                            )
                        }
                    }
                    None => {
                        let rows = cat.table(&self.table)?.rows() as u32;
                        let threads = resolve_threads(g.threads, rows as usize);
                        if threads != 1 {
                            group_aggregate_rows_par(group_col, measure_col, rows, g.agg, threads)
                        } else {
                            group_aggregate_pairs(
                                group_col,
                                measure_col,
                                (0..rows).map(|r| (r, r)),
                                g.agg,
                            )
                        }
                    }
                },
            };
            timings.group_ns = Some(node_ns(&grouping));
            timings.total_ns = node_ns(&started);
            return Ok(ResultSet {
                cat,
                outer_table: self.table.clone(),
                inner_table: self.join.as_ref().map(|j| j.inner_table.clone()),
                rows: ResultRows::Groups(groups),
                timings,
            });
        }

        let rows = match joined {
            Some(rows) => ResultRows::Joined(rows),
            None => ResultRows::Rids(match selected {
                Some(rids) => rids,
                None => (0..cat.table(&self.table)?.rows() as u32).collect(),
            }),
        };
        timings.total_ns = node_ns(&started);
        Ok(ResultSet {
            cat,
            outer_table: self.table.clone(),
            inner_table: self.join.as_ref().map(|j| j.inner_table.clone()),
            rows,
            timings,
        })
    }

    /// One probe -> sorted RID set, always through the partitioned
    /// batched operators (`encode_batch` +
    /// `search_batch_lanes`/`lower_bound_batch_lanes`). The step's
    /// recorded `threads` is always 1 — one probe constant cannot chunk —
    /// so the `_par` entry points run their inline sequential path while
    /// still honouring the plan's `lanes`.
    fn eval_probe(&self, cat: &CatalogState, step: &ProbeStep) -> Result<Vec<u32>> {
        let col = cat.column(&self.table, &step.column)?;
        let entry = cat.column_entry(&self.table, &step.column)?;
        let handle = entry
            .indexes
            .get(&step.kind)
            .ok_or_else(|| MmdbError::IndexNotBuilt {
                table: self.table.clone(),
                column: step.column.clone(),
                kind: step.kind,
            })?;
        let lanes = self.exec.lanes;
        let mut rids = match (&step.probe, &**handle) {
            (Probe::Point(v), IndexHandle::Ordered(idx)) => point_select_many_ordered_par(
                col,
                &entry.rids,
                idx.as_ref(),
                std::slice::from_ref(v),
                lanes,
                step.threads,
            )
            .pop()
            .expect("one probe in, one out"),
            (Probe::Point(v), IndexHandle::Point(idx)) => point_select_many_par(
                col,
                &entry.rids,
                idx.as_ref(),
                std::slice::from_ref(v),
                lanes,
                step.threads,
            )
            .pop()
            .expect("one probe in, one out"),
            (Probe::Range(lo, hi), handle) => {
                let idx = handle
                    .as_ordered()
                    .ok_or_else(|| MmdbError::NoOrderedIndex {
                        table: self.table.clone(),
                        column: step.column.clone(),
                    })?;
                range_select_many_par(
                    col,
                    &entry.rids,
                    idx,
                    &[(lo.clone(), hi.clone())],
                    lanes,
                    step.threads,
                )
                .pop()
                .expect("one range in, one out")
            }
        };
        rids.sort_unstable();
        Ok(rids)
    }
}

// ---------------------------------------------------------------------
// Probes-only sub-plans: the serving front-end's batch entry points
// ---------------------------------------------------------------------

impl Database {
    /// Answer many equality probes on one `table.column` with a single
    /// probes-only sub-plan — [`CatalogState::point_probe_batch`]
    /// against the writer's current tip.
    pub fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        self.catalog().point_probe_batch(table, column, values)
    }

    /// Answer many inclusive range probes on one `table.column` —
    /// [`CatalogState::range_probe_batch`] against the writer's current
    /// tip.
    pub fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        self.catalog().range_probe_batch(table, column, ranges)
    }
}

impl CatalogState {
    /// Answer many equality probes on one `table.column` with a single
    /// probes-only sub-plan: one access-path resolution (the same
    /// preference order a [`Query::filter`]`(`[`eq`]`)` compiles to),
    /// one batched domain encoding, and one
    /// `search_batch`/`lower_bound_batch` index descent over all the
    /// values, partitioned across workers when the catalog's
    /// [`ExecOptions`] allow (`threads == 0` adapts to the probe
    /// count). Returns one ascending RID set per value, in submission
    /// order — element `i` is byte-identical to
    /// `query(table).filter(eq(column, values[i])).run()?.rids()`.
    ///
    /// This is the engine hook a batch-forming serving front-end
    /// (`ccindex-serve`) coalesces concurrent point requests into —
    /// usually through a pinned [`Snapshot`](crate::snapshot::Snapshot),
    /// so a whole batch-formation window answers from one generation
    /// with zero locks on the probe path.
    pub fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        let kind = resolve_kind(self, table, column, false, None)?;
        let col = self.column(table, column)?;
        let entry = self.column_entry(table, column)?;
        let handle = entry.indexes.get(&kind).expect("kind was just resolved");
        let exec = self.exec_options();
        let threads = resolve_threads(exec.threads, values.len());
        let mut out = match &**handle {
            IndexHandle::Ordered(idx) => point_select_many_ordered_par(
                col,
                &entry.rids,
                idx.as_ref(),
                values,
                exec.lanes,
                threads,
            ),
            IndexHandle::Point(idx) => {
                point_select_many_par(col, &entry.rids, idx.as_ref(), values, exec.lanes, threads)
            }
        };
        for rids in &mut out {
            rids.sort_unstable();
        }
        Ok(out)
    }

    /// Answer many inclusive range probes on one `table.column` with a
    /// single probes-only sub-plan over an ordered index (typed
    /// [`MmdbError::NoOrderedIndex`] when only hash is built): every
    /// range contributes its two positional bounds to one
    /// `lower_bound_batch` descent. Returns one ascending RID set per
    /// range, in submission order — element `i` is byte-identical to
    /// `query(table).filter(between(column, lo, hi)).run()?.rids()`
    /// (an inverted range matches nothing, exactly like [`between`]).
    pub fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        let kind = resolve_kind(self, table, column, true, None)?;
        let col = self.column(table, column)?;
        let entry = self.column_entry(table, column)?;
        let handle = entry.indexes.get(&kind).expect("kind was just resolved");
        let idx = (**handle)
            .as_ordered()
            .ok_or_else(|| MmdbError::NoOrderedIndex {
                table: table.to_owned(),
                column: column.to_owned(),
            })?;
        let exec = self.exec_options();
        let threads = resolve_threads(exec.threads, ranges.len());
        let mut out = range_select_many_par(col, &entry.rids, idx, ranges, exec.lanes, threads);
        for rids in &mut out {
            rids.sort_unstable();
        }
        Ok(out)
    }
}

fn side_column<'db>(
    cat: &'db CatalogState,
    outer: &str,
    inner: Option<&str>,
    column: &str,
    side: Side,
) -> Result<&'db Column> {
    match side {
        Side::Outer => cat.column(outer, column),
        Side::Inner => {
            let inner = inner.ok_or_else(|| MmdbError::UnknownColumn {
                table: outer.to_owned(),
                column: column.to_owned(),
            })?;
            cat.column(inner, column)
        }
    }
}

/// Intersection of two ascending RID sets — how the executor ANDs
/// predicate conjuncts.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// What a query produced. Shape follows the builder statically: plain
/// selections yield RIDs, joins yield RID pairs, grouped queries yield
/// group rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultRows {
    /// RIDs of the selected rows, ascending.
    Rids(Vec<u32>),
    /// Join output pairs, in outer-stream order.
    Joined(Vec<JoinRow>),
    /// Aggregated groups, in group-value order.
    Groups(Vec<GroupRow>),
}

/// A query result bound to the catalog generation it ran against, so
/// row values can be decoded on demand (one batched
/// [`decode_batch`](crate::domain::Domain::decode_batch) per column) —
/// even if the live catalog has committed newer generations since.
#[derive(Debug, Clone)]
pub struct ResultSet<'db> {
    cat: &'db CatalogState,
    outer_table: String,
    inner_table: Option<String>,
    rows: ResultRows,
    timings: PlanTimings,
}

impl ResultSet<'_> {
    /// The rows, whatever their shape.
    pub fn rows(&self) -> &ResultRows {
        &self.rows
    }

    /// Wall-clock time per executed plan node — feed back into
    /// [`Plan::explain_timed`] to see where the query spent its time.
    pub fn timings(&self) -> &PlanTimings {
        &self.timings
    }

    /// Number of result rows (of whichever shape).
    pub fn len(&self) -> usize {
        match &self.rows {
            ResultRows::Rids(r) => r.len(),
            ResultRows::Joined(r) => r.len(),
            ResultRows::Groups(r) => r.len(),
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selected RIDs, ascending. Panics if this result is join- or
    /// group-shaped (shape is statically determined by the builder).
    pub fn rids(&self) -> &[u32] {
        match &self.rows {
            ResultRows::Rids(r) => r,
            other => panic!("rids() on a {} result", shape_name(other)),
        }
    }

    /// Join output pairs. Panics unless this result came from a join
    /// without grouping.
    pub fn join_rows(&self) -> &[JoinRow] {
        match &self.rows {
            ResultRows::Joined(r) => r,
            other => panic!("join_rows() on a {} result", shape_name(other)),
        }
    }

    /// Aggregated groups. Panics unless the query had a `group_by`.
    pub fn groups(&self) -> &[GroupRow] {
        match &self.rows {
            ResultRows::Groups(r) => r,
            other => panic!("groups() on a {} result", shape_name(other)),
        }
    }

    /// Decoded values of `column` for every result row, via one batched
    /// domain decode. For join results the column may come from either
    /// side (outer binds first). Group results carry their decoded keys
    /// already — asking for per-row values there is an error.
    pub fn values(&self, column: &str) -> Result<Vec<Value>> {
        match &self.rows {
            ResultRows::Rids(rids) => {
                let col = self.cat.column(&self.outer_table, column)?;
                let ids: Vec<u32> = rids.iter().map(|&r| col.id(r)).collect();
                Ok(col.domain().decode_batch(&ids))
            }
            ResultRows::Joined(rows) => {
                let (side, col) = resolve_side(
                    self.cat,
                    &self.outer_table,
                    self.inner_table.as_deref(),
                    column,
                )?;
                let ids: Vec<u32> = rows
                    .iter()
                    .map(|r| {
                        col.id(match side {
                            Side::Outer => r.outer_rid,
                            Side::Inner => r.inner_rid,
                        })
                    })
                    .collect();
                Ok(col.domain().decode_batch(&ids))
            }
            ResultRows::Groups(_) => Err(MmdbError::Unsupported {
                what: "values() on a grouped result; group keys are already \
                       decoded in groups()"
                    .into(),
            }),
        }
    }
}

fn shape_name(rows: &ResultRows) -> &'static str {
    match rows {
        ResultRows::Rids(_) => "selection",
        ResultRows::Joined(_) => "join",
        ResultRows::Groups(_) => "grouped",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("sales")
                .int_column("cust", [1, 2, 1, 3, 2, 1])
                .int_column("amount", [10, 40, 25, 99, 15, 25])
                .str_column("day", ["mon", "mon", "tue", "wed", "tue", "mon"])
                .build()
                .expect("equal columns"),
        )
        .unwrap();
        db.register(
            TableBuilder::new("customers")
                .int_column("id", [1, 2, 3])
                .str_column("region", ["east", "west", "east"])
                .build()
                .expect("equal columns"),
        )
        .unwrap();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("sales", "day", IndexKind::Hash).unwrap();
        db.create_index("sales", "day", IndexKind::BPlusTree)
            .unwrap();
        db.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
        db
    }

    #[test]
    fn point_and_range_selections() {
        let db = db();
        let r = db.query("sales").filter(eq("day", "mon")).run().unwrap();
        assert_eq!(r.rids(), &[0, 1, 5]);
        let r = db
            .query("sales")
            .filter(between("amount", 20, 50))
            .run()
            .unwrap();
        assert_eq!(r.rids(), &[1, 2, 5]);
        // Unfiltered query: every row.
        assert_eq!(db.query("sales").run().unwrap().rids().len(), 6);
        // Value outside the domain: empty, not an error.
        assert!(db
            .query("sales")
            .filter(eq("day", "sun"))
            .run()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn conjunctions_intersect_sorted_rid_sets() {
        let db = db();
        let r = db
            .query("sales")
            .filter(eq("day", "mon"))
            .filter(between("amount", 20, 100))
            .run()
            .unwrap();
        // mon rows {0,1,5} ∩ amount 20..=100 rows {1,2,3,5} = {1,5}.
        assert_eq!(r.rids(), &[1, 5]);
        let decoded = r.values("amount").unwrap();
        assert_eq!(decoded, vec![Value::Int(40), Value::Int(25)]);
    }

    #[test]
    fn join_streams_filtered_rows() {
        let db = db();
        let r = db
            .query("sales")
            .filter(eq("day", "mon"))
            .join("customers", on("cust", "id"))
            .run()
            .unwrap();
        // mon rows: 0 (cust 1), 1 (cust 2), 5 (cust 1).
        let pairs: Vec<(u32, u32)> = r
            .join_rows()
            .iter()
            .map(|j| (j.outer_rid, j.inner_rid))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (5, 0)]);
        // Cross-side decode: region comes from the inner table.
        let regions = r.values("region").unwrap();
        assert_eq!(
            regions,
            vec!["east".into(), "west".into(), "east".into()] as Vec<Value>
        );
    }

    #[test]
    fn group_by_over_selection_join_and_whole_table() {
        let db = db();
        // Whole table, count per day.
        let r = db.query("sales").group_by("day", count()).run().unwrap();
        let counts: Vec<(String, i64)> = r
            .groups()
            .iter()
            .map(|g| (g.group.to_string(), g.value))
            .collect();
        assert_eq!(
            counts,
            vec![("mon".into(), 3), ("tue".into(), 2), ("wed".into(), 1)]
        );
        // Filtered sum.
        let r = db
            .query("sales")
            .filter(between("amount", 20, 100))
            .group_by("day", sum("amount"))
            .run()
            .unwrap();
        let sums: Vec<(String, i64)> = r
            .groups()
            .iter()
            .map(|g| (g.group.to_string(), g.value))
            .collect();
        assert_eq!(
            sums,
            vec![
                ("mon".into(), 65), // rids 1 (40) + 5 (25)
                ("tue".into(), 25), // rid 2
                ("wed".into(), 99), // rid 3
            ]
        );
        // Join then group by the inner table's region, summing the outer
        // measure — the ISSUE's flagship pipeline.
        let r = db
            .query("sales")
            .join("customers", on("cust", "id"))
            .group_by("region", sum("amount"))
            .run()
            .unwrap();
        let sums: Vec<(String, i64)> = r
            .groups()
            .iter()
            .map(|g| (g.group.to_string(), g.value))
            .collect();
        // east = cust 1 (10+25+25) + cust 3 (99); west = cust 2 (40+15).
        assert_eq!(sums, vec![("east".into(), 159), ("west".into(), 55)]);
        // min/max too.
        let r = db
            .query("sales")
            .group_by("cust", super::max("amount"))
            .run()
            .unwrap();
        assert_eq!(r.groups()[0].value, 25); // cust 1: max(10, 25, 25)
        let r = db
            .query("sales")
            .group_by("cust", super::min("amount"))
            .run()
            .unwrap();
        assert_eq!(r.groups()[2].value, 99); // cust 3: only 99
    }

    #[test]
    fn using_forces_the_access_path_and_plans_explain() {
        let db = db();
        let plan = db
            .query("sales")
            .filter(eq("day", "mon"))
            .filter(between("amount", 20, 50))
            .join("customers", on("cust", "id"))
            .group_by("region", count())
            .plan()
            .unwrap();
        // Hash preferred for the point probe, CSS for the range, the
        // inner column's only kind for the join.
        assert_eq!(plan.probes[0].kind, IndexKind::Hash);
        assert_eq!(plan.probes[1].kind, IndexKind::FullCss);
        assert_eq!(plan.join.as_ref().unwrap().kind, IndexKind::LevelCss);
        let text = plan.explain();
        assert!(text.contains("intersect 2"), "{text}");
        assert!(text.contains("join customers"), "{text}");
        assert!(text.contains("group by region"), "{text}");

        // Forcing picks the named kind...
        let plan = db
            .query("sales")
            .filter(eq("day", "mon"))
            .using(IndexKind::BPlusTree)
            .plan()
            .unwrap();
        assert_eq!(plan.probes[0].kind, IndexKind::BPlusTree);
        // ... and rejects unbuilt or unordered choices with typed errors.
        assert_eq!(
            db.query("sales")
                .filter(eq("day", "mon"))
                .using(IndexKind::TTree)
                .plan()
                .unwrap_err(),
            MmdbError::IndexNotBuilt {
                table: "sales".into(),
                column: "day".into(),
                kind: IndexKind::TTree
            }
        );
        assert_eq!(
            db.query("sales")
                .filter(between("amount", 1, 2))
                .using(IndexKind::Hash)
                .plan()
                .unwrap_err(),
            MmdbError::NoOrderedIndex {
                table: "sales".into(),
                column: "amount".into()
            }
        );
    }

    #[test]
    fn executed_plans_stamp_per_node_timings() {
        let db = db();
        let plan = db
            .query("sales")
            .filter(eq("day", "mon"))
            .filter(between("amount", 20, 50))
            .join("customers", on("cust", "id"))
            .group_by("region", count())
            .plan()
            .unwrap();
        let result = plan.execute(&db).unwrap();
        let timings = result.timings();
        assert_eq!(timings.probe_ns.len(), plan.probes.len());
        assert!(timings.join_ns.is_some());
        assert!(timings.group_ns.is_some());
        assert!(timings.total_ns > 0);

        // The timed rendering carries one ` .. <duration>` suffix per
        // executed node plus a trailing total; the untimed rendering is
        // unchanged.
        let timed = plan.explain_timed(timings);
        assert_eq!(timed.matches(" .. ").count(), 4, "{timed}");
        assert!(timed.contains("\n  total: "), "{timed}");
        assert!(!plan.explain().contains(" .. "));

        // A selection-only query times its probes but no join/group.
        let plan = db.query("sales").filter(eq("day", "mon")).plan().unwrap();
        let timings = plan.execute(&db).unwrap().timings().clone();
        assert_eq!(timings.probe_ns.len(), 1);
        assert_eq!(timings.join_ns, None);
        assert_eq!(timings.group_ns, None);
    }

    #[test]
    fn exec_options_partition_without_changing_results() {
        let mut db = db();
        let queries = |db: &Database| -> Vec<ResultRows> {
            [
                db.query("sales").filter(eq("day", "mon")).run().unwrap(),
                db.query("sales")
                    .filter(between("amount", 20, 50))
                    .run()
                    .unwrap(),
                db.query("sales")
                    .filter(eq("day", "mon"))
                    .join("customers", on("cust", "id"))
                    .run()
                    .unwrap(),
                db.query("sales")
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .unwrap(),
                db.query("sales").group_by("day", count()).run().unwrap(),
            ]
            .into_iter()
            .map(|r| r.rows().clone())
            .collect()
        };
        let sequential = queries(&db);
        for threads in [0usize, 2, 8] {
            db.set_exec_options(ExecOptions::threads(threads));
            assert_eq!(queries(&db), sequential, "threads={threads}");
        }
        // Per-query override beats the catalog default, and the plan
        // records the chosen parallelism for inspection.
        db.set_exec_options(ExecOptions::default());
        let plan = db
            .query("sales")
            .filter(between("amount", 20, 50))
            .group_by("day", count())
            .exec(ExecOptions {
                threads: 8,
                lanes: 4,
                ..ExecOptions::default()
            })
            .plan()
            .unwrap();
        assert_eq!(plan.exec.threads, 8);
        // Filter stages probe one constant and cannot chunk, so they
        // honestly record 1; the chunkable group stage records 8.
        assert_eq!(plan.probes[0].threads, 1);
        assert_eq!(plan.group.as_ref().unwrap().threads, 8);
        let text = plan.explain();
        assert!(text.contains("[x8 threads]"), "{text}");
        assert!(
            text.contains("exec: 8 worker(s), 4 interleave lane(s)"),
            "{text}"
        );
        // Sequential plans stay visually unchanged.
        let text = db
            .query("sales")
            .filter(eq("day", "mon"))
            .plan()
            .unwrap()
            .explain();
        assert!(!text.contains("threads"), "{text}");
    }

    #[test]
    fn typed_errors_name_the_offender() {
        let db = db();
        assert_eq!(
            db.query("sale").run().unwrap_err(),
            MmdbError::UnknownTable {
                table: "sale".into()
            }
        );
        assert_eq!(
            db.query("sales")
                .filter(eq("dya", "mon"))
                .run()
                .unwrap_err(),
            MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "dya".into()
            }
        );
        // cust exists but is unindexed.
        assert_eq!(
            db.query("sales").filter(eq("cust", 1)).run().unwrap_err(),
            MmdbError::NoIndex {
                table: "sales".into(),
                column: "cust".into()
            }
        );
        // Range over a hash-only column.
        let mut db2 = Database::new();
        db2.register(
            TableBuilder::new("t")
                .int_column("v", [1, 2, 3])
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.create_index("t", "v", IndexKind::Hash).unwrap();
        assert_eq!(
            db2.query("t").filter(between("v", 1, 2)).run().unwrap_err(),
            MmdbError::NoOrderedIndex {
                table: "t".into(),
                column: "v".into()
            }
        );
        // Non-integer measure.
        assert_eq!(
            db.query("sales")
                .group_by("cust", sum("day"))
                .run()
                .unwrap_err(),
            MmdbError::NonIntegerMeasure {
                table: "sales".into(),
                column: "day".into()
            }
        );
        // values() on groups is unsupported, with a message.
        let r = db.query("sales").group_by("day", count()).run().unwrap();
        assert!(matches!(
            r.values("day").unwrap_err(),
            MmdbError::Unsupported { .. }
        ));
    }

    #[test]
    fn join_condition_accessors() {
        let j = on("cust", "id");
        assert_eq!((j.outer(), j.inner()), ("cust", "id"));
    }

    #[test]
    fn exec_options_default_is_unsharded_sequential() {
        let opts = ExecOptions::default();
        assert_eq!((opts.threads, opts.shards), (1, 1));
        assert!(!opts.is_parallel());
        // from_env clamps lanes and shards to at least 1 even when the
        // variables are unset (falling back to the defaults), and the
        // fallible twin agrees under the same environment.
        let env = ExecOptions::from_env();
        assert!(env.shards >= 1 && env.lanes >= 1);
        assert_eq!(ExecOptions::try_from_env().expect("parsable env"), env);
        // Adaptive resolution: explicit counts pass through, 0 adapts.
        assert_eq!(resolve_threads(4, 10), 4);
        assert_eq!(resolve_threads(0, 10), 1, "tiny inputs run inline");
        assert!(resolve_threads(0, 10_000_000) >= 1);
    }

    #[test]
    fn knob_parsing_is_strict_and_floors_are_consistent() {
        // The parse rule behind try_from_env, tested without touching
        // process environment state: unset falls back, whitespace is
        // tolerated, garbage is a typed error naming the offender.
        assert_eq!(parse_knob("CCINDEX_THREADS", None).unwrap(), None);
        assert_eq!(
            parse_knob("CCINDEX_THREADS", Some(" 8 ".into())).unwrap(),
            Some(8)
        );
        assert_eq!(
            parse_knob("CCINDEX_THREADS", Some("abc".into())).unwrap_err(),
            MmdbError::InvalidExecOption {
                name: "CCINDEX_THREADS".into(),
                value: "abc".into()
            }
        );
        assert!(parse_knob("CCINDEX_LANES", Some("-3".into())).is_err());
        assert!(parse_knob("CCINDEX_SHARDS", Some("1.5".into())).is_err());
        assert!(parse_knob("CCINDEX_SHARDS", Some(String::new())).is_err());
        // The floor treatment is uniform: lanes and shards raise 0 to 1
        // (both 0-forms are degenerate aliases of 1), while threads
        // keeps 0 — the adaptive sentinel is meaningful, not degenerate.
        let n = ExecOptions {
            threads: 0,
            lanes: 0,
            shards: 0,
        }
        .normalized();
        assert_eq!((n.threads, n.lanes, n.shards), (0, 1, 1));
        let kept = ExecOptions {
            threads: 4,
            lanes: 16,
            shards: 2,
        };
        assert_eq!(kept.normalized(), kept, "non-degenerate knobs pass through");
    }

    #[test]
    fn probe_batches_match_per_request_queries() {
        let db = db();
        // Point probes (hash-resolved) incl. duplicates and misses.
        let values: Vec<Value> = ["mon", "tue", "sun", "mon"]
            .iter()
            .map(|&d| Value::from(d))
            .collect();
        let batch = db.point_probe_batch("sales", "day", &values).unwrap();
        for (v, rids) in values.iter().zip(&batch) {
            let one = db
                .query("sales")
                .filter(eq("day", v.clone()))
                .run()
                .unwrap();
            assert_eq!(rids, one.rids(), "value {v}");
        }
        // Range probes (ordered index) incl. empty and inverted ranges.
        let ranges: Vec<(Value, Value)> = [(20i64, 50i64), (1, 5), (50, 20)]
            .iter()
            .map(|&(lo, hi)| (Value::Int(lo), Value::Int(hi)))
            .collect();
        let batch = db.range_probe_batch("sales", "amount", &ranges).unwrap();
        for ((lo, hi), rids) in ranges.iter().zip(&batch) {
            let one = db
                .query("sales")
                .filter(between("amount", lo.clone(), hi.clone()))
                .run()
                .unwrap();
            assert_eq!(rids, one.rids(), "range [{lo}, {hi}]");
        }
        // Empty batches are empty answers, not errors.
        assert!(db
            .point_probe_batch("sales", "day", &[])
            .unwrap()
            .is_empty());
        // Typed failures match the query path's.
        assert_eq!(
            db.point_probe_batch("sales", "cust", &[Value::Int(1)])
                .unwrap_err(),
            MmdbError::NoIndex {
                table: "sales".into(),
                column: "cust".into()
            }
        );
        // Ranges over a hash-only column fail typed, like `between`.
        let mut db2 = Database::new();
        db2.register(
            TableBuilder::new("t")
                .int_column("v", [1, 2, 3])
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.create_index("t", "v", IndexKind::Hash).unwrap();
        assert_eq!(
            db2.range_probe_batch("t", "v", &[(Value::Int(1), Value::Int(2))])
                .unwrap_err(),
            MmdbError::NoOrderedIndex {
                table: "t".into(),
                column: "v".into()
            }
        );
    }

    #[test]
    fn adaptive_plans_execute_and_explain() {
        let db = db();
        let plan = db
            .query("sales")
            .filter(between("amount", 20, 50))
            .group_by("day", count())
            .exec(ExecOptions::threads(0))
            .plan()
            .unwrap();
        assert_eq!(plan.group.as_ref().unwrap().threads, 0);
        // The rendered text reports the worker count the adaptive node
        // resolves to for the planner's row estimate — never a raw `x0`.
        let g = plan.group.as_ref().unwrap();
        assert_eq!(g.rows_hint, 6, "driving table rows");
        let resolved = ccindex_parallel::adaptive_threads(g.rows_hint);
        let text = plan.explain();
        assert!(
            text.contains(&format!("[x{resolved} threads (adaptive)]")),
            "{text}"
        );
        assert!(!text.contains("x0"), "{text}");
        assert!(
            text.contains("adaptive worker(s), resolved per node"),
            "{text}"
        );
        // Same rows as the sequential plan.
        let adaptive = plan.execute(&db).unwrap();
        let sequential = db
            .query("sales")
            .filter(between("amount", 20, 50))
            .group_by("day", count())
            .run()
            .unwrap();
        assert_eq!(adaptive.rows(), sequential.rows());
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
        assert_eq!(intersect_sorted(&[4], &[4]), vec![4]);
    }
}
