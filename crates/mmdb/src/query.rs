//! Query operators: the paper's three index consumers (§2.2).
//!
//! 1. "searching an index is still useful for answering single value
//!    selection queries and range queries" — [`point_select`] and
//!    [`range_select`];
//! 2. "cheaper random access makes indexed nested loop joins more
//!    affordable ... This approach requires a lot of searching through
//!    indexes on the inner relations" — [`indexed_nested_loop_join`];
//! 3. "transforming domain values to domain IDs requires searching on the
//!    domain" — every operator below starts with a domain `encode`.

use crate::column::Column;
use crate::rid::RidList;
use crate::domain::Value;
use ccindex_common::{OrderedIndex, SearchIndex};

/// One output row of an indexed nested-loop join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinRow {
    /// RID in the outer relation.
    pub outer_rid: u32,
    /// RID in the inner relation.
    pub inner_rid: u32,
}

/// All RIDs whose column value equals `value`, via one index search plus a
/// rightward duplicate scan (§3.6).
pub fn point_select(
    column: &Column,
    rid_list: &RidList,
    index: &dyn SearchIndex<u32>,
    value: &Value,
) -> Vec<u32> {
    let Some(id) = column.domain().encode(value) else {
        return Vec::new(); // value not in the domain: no rows
    };
    let Some(first) = index.search(id) else {
        return Vec::new();
    };
    let keys = rid_list.keys().as_slice();
    let mut end = first;
    while end < keys.len() && keys[end] == id {
        end += 1;
    }
    rid_list.rids_in(first, end).to_vec()
}

/// All RIDs whose column value lies in the inclusive range `[lo, hi]`.
/// Requires an ordered index (hash indexes cannot serve range queries).
pub fn range_select(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    lo: &Value,
    hi: &Value,
) -> Vec<u32> {
    let Some((lo_id, hi_id)) = column.domain().id_range(lo, hi) else {
        return Vec::new();
    };
    let (start, end) = index.key_range(lo_id, hi_id);
    rid_list.rids_in(start, end).to_vec()
}

/// Indexed nested-loop join: for each outer row, decode its value, map it
/// into the inner domain, and search the inner index — "pipelinable,
/// requiring minimal storage for intermediate results" (§2.2). Equal inner
/// duplicates all match.
pub fn indexed_nested_loop_join(
    outer: &Column,
    inner: &Column,
    inner_rids: &RidList,
    inner_index: &dyn SearchIndex<u32>,
) -> Vec<JoinRow> {
    let mut out = Vec::new();
    let inner_keys = inner_rids.keys().as_slice();
    for outer_rid in 0..outer.len() as u32 {
        let value = outer.value(outer_rid);
        // Domain-to-domain mapping (consumer #3): skip outer values the
        // inner domain does not contain.
        let Some(inner_id) = inner.domain().encode(value) else {
            continue;
        };
        let Some(first) = inner_index.search(inner_id) else {
            continue;
        };
        let mut pos = first;
        while pos < inner_keys.len() && inner_keys[pos] == inner_id {
            out.push(JoinRow {
                outer_rid,
                inner_rid: inner_rids.rid(pos),
            });
            pos += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_choice::{build_index, build_ordered_index, IndexKind};
    use crate::table::TableBuilder;

    fn setup() -> (crate::table::Table, RidList) {
        let t = TableBuilder::new("sales")
            .int_column("amount", [30, 10, 20, 10, 30, 10, 40])
            .build();
        let rl = RidList::for_column(t.column("amount").unwrap());
        (t, rl)
    }

    #[test]
    fn point_select_returns_all_duplicates() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rl.keys());
            let mut rids = point_select(col, &rl, idx.as_ref(), &Value::Int(10));
            rids.sort_unstable();
            assert_eq!(rids, vec![1, 3, 5], "{kind:?}");
            assert!(point_select(col, &rl, idx.as_ref(), &Value::Int(99)).is_empty());
        }
    }

    #[test]
    fn range_select_inclusive_bounds() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rl.keys());
            let mut rids = range_select(col, &rl, idx.as_ref(), &Value::Int(15), &Value::Int(30));
            rids.sort_unstable();
            assert_eq!(rids, vec![0, 2, 4], "{kind:?}");
            // Band with no domain values.
            assert!(range_select(col, &rl, idx.as_ref(), &Value::Int(31), &Value::Int(39)).is_empty());
            // Full range.
            assert_eq!(
                range_select(col, &rl, idx.as_ref(), &Value::Int(0), &Value::Int(100)).len(),
                7
            );
        }
    }

    #[test]
    fn join_matches_brute_force() {
        let orders = TableBuilder::new("orders")
            .int_column("cust", [5, 1, 2, 5, 9])
            .build();
        let customers = TableBuilder::new("customers")
            .int_column("id", [1, 2, 3, 5, 5])
            .build();
        let ccol = customers.column("id").unwrap();
        let crids = RidList::for_column(ccol);
        let ocol = orders.column("cust").unwrap();

        for kind in IndexKind::ALL {
            let idx = build_index(kind, crids.keys());
            let mut joined = indexed_nested_loop_join(ocol, ccol, &crids, idx.as_ref());
            joined.sort_by_key(|j| (j.outer_rid, j.inner_rid));

            // Brute force reference.
            let mut expected = Vec::new();
            for o in 0..ocol.len() as u32 {
                for i in 0..ccol.len() as u32 {
                    if ocol.value(o) == ccol.value(i) {
                        expected.push(JoinRow {
                            outer_rid: o,
                            inner_rid: i,
                        });
                    }
                }
            }
            expected.sort_by_key(|j| (j.outer_rid, j.inner_rid));
            assert_eq!(joined, expected, "{kind:?}");
        }
    }

    #[test]
    fn join_with_string_keys_via_domains() {
        let left = TableBuilder::new("l")
            .str_column("k", ["b", "a", "z"])
            .build();
        let right = TableBuilder::new("r")
            .str_column("k", ["a", "b", "b"])
            .build();
        let rcol = right.column("k").unwrap();
        let rrids = RidList::for_column(rcol);
        let idx = build_index(IndexKind::FullCss, rrids.keys());
        let joined = indexed_nested_loop_join(
            left.column("k").unwrap(),
            rcol,
            &rrids,
            idx.as_ref(),
        );
        // "b" matches rids 1,2; "a" matches rid 0; "z" matches nothing.
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&JoinRow { outer_rid: 1, inner_rid: 0 }));
        assert!(joined.contains(&JoinRow { outer_rid: 0, inner_rid: 1 }));
        assert!(joined.contains(&JoinRow { outer_rid: 0, inner_rid: 2 }));
    }
}
