//! Query operators: the paper's three index consumers (§2.2), batched.
//!
//! 1. "searching an index is still useful for answering single value
//!    selection queries and range queries" — [`point_select_many`] and
//!    [`range_select_many`] (with [`point_select`] / [`range_select`] as
//!    the batch-of-one conveniences, and
//!    [`point_select_ordered`] / [`point_select_many_ordered`] asking an
//!    ordered index for whole duplicate runs via `equal_range` instead of
//!    the §3.6 rightward scan, which only the hash path needs);
//! 2. "cheaper random access makes indexed nested loop joins more
//!    affordable ... This approach requires a lot of searching through
//!    indexes on the inner relations" — [`indexed_nested_loop_join`];
//! 3. "transforming domain values to domain IDs requires searching on the
//!    domain" — every operator below starts with a batched domain
//!    [`encode_batch`](crate::domain::Domain::encode_batch).
//!
//! In the decision-support setting probes arrive by the hundred-thousand,
//! so every operator hands the index whole probe batches
//! (`search_batch` / `lower_bound_batch`); batch-aware structures such as
//! the CSS-trees answer them with interleaved multi-lane descents instead
//! of one serialised lookup per probe.

use crate::column::Column;
use crate::domain::Value;
use crate::rid::RidList;
use ccindex_common::{OrderedIndex, SearchIndex, DEFAULT_BATCH_LANES};

/// One output row of an indexed nested-loop join.
///
/// Orders lexicographically by `(outer_rid, inner_rid)` — exactly the
/// order a join over an ascending outer RID stream emits, which is what
/// lets a scatter-gather layer sort per-shard partial outputs back into
/// the sequential join's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinRow {
    /// RID in the outer relation.
    pub outer_rid: u32,
    /// RID in the inner relation.
    pub inner_rid: u32,
}

/// How many outer rows an [`indexed_nested_loop_join`] hands to the inner
/// index per `search_batch` call. Large enough to fill every interleave
/// lane many times over, small enough that the probe scratch stays
/// cache-resident.
pub const JOIN_PROBE_BLOCK: usize = 1024;

/// The §3.6 duplicate primitive for indexes that only answer point
/// lookups (the hash index): given the leftmost match `first`, scan
/// rightward through the sorted key array for the end of the run of
/// `id`. Ordered indexes do **not** come through here — they answer the
/// same question with [`OrderedIndex::equal_range`] (or its batched
/// `lower_bound_batch` form), so this is the single place the hand-rolled
/// scan lives.
fn duplicate_run_end(keys: &[u32], first: usize, id: u32) -> usize {
    let mut end = first;
    while end < keys.len() && keys[end] == id {
        end += 1;
    }
    end
}

/// All RIDs whose column value equals `value`, via one index search plus
/// the §3.6 rightward duplicate scan. Single-probe fast path — batches of
/// constants should go through [`point_select_many`] instead (it is
/// equivalence-tested against this function for every index kind). With
/// an ordered index in hand, prefer [`point_select_ordered`], which asks
/// the index for the whole duplicate run directly.
pub fn point_select(
    column: &Column,
    rid_list: &RidList,
    index: &dyn SearchIndex<u32>,
    value: &Value,
) -> Vec<u32> {
    let Some(id) = column.domain().encode(value) else {
        return Vec::new(); // value not in the domain: no rows
    };
    let Some(first) = index.search(id) else {
        return Vec::new();
    };
    let end = duplicate_run_end(rid_list.keys().as_slice(), first, id);
    rid_list.rids_in(first, end).to_vec()
}

/// All RIDs whose column value equals `value`, asking an ordered index
/// for the duplicate run via [`OrderedIndex::equal_range`] — no manual
/// scan over the key array (§3.6 "find the leftmost element ... and
/// sequentially scan towards right" is the *hash-index* fallback; ordered
/// directories locate both ends of the run by descent).
pub fn point_select_ordered(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    value: &Value,
) -> Vec<u32> {
    let Some(id) = column.domain().encode(value) else {
        return Vec::new();
    };
    let (start, end) = index.equal_range(id);
    rid_list.rids_in(start, end).to_vec()
}

/// One RID set per probe value through an ordered index: a single batched
/// domain encoding, then one `lower_bound_batch` holding **both** ends of
/// every probe's duplicate run (the batched form of
/// [`OrderedIndex::equal_range`]) — no per-hit rightward scan.
pub fn point_select_many_ordered(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    values: &[Value],
) -> Vec<Vec<u32>> {
    point_select_many_ordered_lanes(column, rid_list, index, values, DEFAULT_BATCH_LANES)
}

/// [`point_select_many_ordered`] with an explicit interleave lane count,
/// forwarded to the index through
/// [`OrderedIndex::lower_bound_batch_lanes`] (ignored by structures that
/// are not batch-aware).
pub fn point_select_many_ordered_lanes(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    values: &[Value],
    lanes: usize,
) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); values.len()];
    let ids = column.domain().encode_batch(values);
    // (slot, end-probe present?) per in-domain value; probes laid out
    // flat as [id0, id0+1, id1, id1+1, ...] minus unrepresentable ends.
    let mut pending: Vec<(usize, bool)> = Vec::new();
    let mut probes: Vec<u32> = Vec::new();
    for (slot, id) in ids.into_iter().enumerate() {
        let Some(id) = id else { continue };
        probes.push(id);
        match id.checked_add(1) {
            Some(next) => {
                probes.push(next);
                pending.push((slot, true));
            }
            None => pending.push((slot, false)),
        }
    }
    let bounds = index.lower_bound_batch_lanes(&probes, lanes);
    let mut at = 0usize;
    for (slot, has_end) in pending {
        let start = bounds[at];
        at += 1;
        let end = if has_end {
            at += 1;
            bounds[at - 1]
        } else {
            index.len()
        };
        out[slot] = rid_list.rids_in(start, end.max(start)).to_vec();
    }
    out
}

/// Partitioned [`point_select_many_ordered`]: the probe values are
/// chunked across `threads` workers (`0` = one per core), each chunk
/// running the batched ordered select at `lanes`; per-value RID sets come
/// back in value order, byte-identical to the sequential operator.
pub fn point_select_many_ordered_par(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    values: &[Value],
    lanes: usize,
    threads: usize,
) -> Vec<Vec<u32>> {
    ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(values, |chunk| {
        point_select_many_ordered_lanes(column, rid_list, index, chunk, lanes)
    })
}

/// One RID set per probe value: a single batched domain encoding followed
/// by a single batched index probe, plus the §3.6 rightward duplicate
/// scan per hit.
pub fn point_select_many(
    column: &Column,
    rid_list: &RidList,
    index: &dyn SearchIndex<u32>,
    values: &[Value],
) -> Vec<Vec<u32>> {
    point_select_many_lanes(column, rid_list, index, values, DEFAULT_BATCH_LANES)
}

/// [`point_select_many`] with an explicit interleave lane count (see
/// [`SearchIndex::search_batch_lanes`]).
pub fn point_select_many_lanes(
    column: &Column,
    rid_list: &RidList,
    index: &dyn SearchIndex<u32>,
    values: &[Value],
    lanes: usize,
) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); values.len()];
    // Consumer #3, batched: constants -> domain IDs. Values outside the
    // domain match no rows and are not probed at all.
    let ids = column.domain().encode_batch(values);
    let mut probe_ids = Vec::with_capacity(values.len());
    let mut probe_slots = Vec::with_capacity(values.len());
    for (slot, id) in ids.into_iter().enumerate() {
        if let Some(id) = id {
            probe_ids.push(id);
            probe_slots.push(slot);
        }
    }
    let keys = rid_list.keys().as_slice();
    for ((&slot, &id), hit) in probe_slots
        .iter()
        .zip(&probe_ids)
        .zip(index.search_batch_lanes(&probe_ids, lanes))
    {
        if let Some(first) = hit {
            let end = duplicate_run_end(keys, first, id);
            out[slot] = rid_list.rids_in(first, end).to_vec();
        }
    }
    out
}

/// Partitioned [`point_select_many`]; see
/// [`point_select_many_ordered_par`] for the chunking contract.
pub fn point_select_many_par(
    column: &Column,
    rid_list: &RidList,
    index: &dyn SearchIndex<u32>,
    values: &[Value],
    lanes: usize,
    threads: usize,
) -> Vec<Vec<u32>> {
    ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(values, |chunk| {
        point_select_many_lanes(column, rid_list, index, chunk, lanes)
    })
}

/// All RIDs whose column value lies in the inclusive range `[lo, hi]`.
/// Requires an ordered index (hash indexes cannot serve range queries).
///
/// Single-range fast path using the trait's [`OrderedIndex::key_range`]
/// (the source of truth for inclusive-range semantics); batches of
/// ranges should go through [`range_select_many`], which is
/// equivalence-tested against this function for every ordered kind.
pub fn range_select(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    lo: &Value,
    hi: &Value,
) -> Vec<u32> {
    let Some((lo_id, hi_id)) = column.domain().id_range(lo, hi) else {
        return Vec::new();
    };
    let (start, end) = index.key_range(lo_id, hi_id);
    rid_list.rids_in(start, end).to_vec()
}

/// One RID set per inclusive value range. Each range contributes its two
/// positional bounds to a single `lower_bound_batch` over the index, so a
/// batch-aware structure descends for all ranges' endpoints concurrently.
pub fn range_select_many(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    ranges: &[(Value, Value)],
) -> Vec<Vec<u32>> {
    range_select_many_lanes(column, rid_list, index, ranges, DEFAULT_BATCH_LANES)
}

/// [`range_select_many`] with an explicit interleave lane count (see
/// [`OrderedIndex::lower_bound_batch_lanes`]).
pub fn range_select_many_lanes(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    ranges: &[(Value, Value)],
    lanes: usize,
) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); ranges.len()];
    // (slot, end-probe present?) per non-empty ID range; probes laid out
    // flat as [lo0, end0, lo1, end1, ...] minus any absent end probes.
    let mut pending: Vec<(usize, bool)> = Vec::new();
    let mut probes: Vec<u32> = Vec::new();
    for (slot, (lo, hi)) in ranges.iter().enumerate() {
        let Some((lo_id, hi_id)) = column.domain().id_range(lo, hi) else {
            continue;
        };
        probes.push(lo_id);
        // `hi_id + 1` is the exclusive ID bound; if it is unrepresentable
        // every key from `lo_id` on matches and the end is `len`.
        match hi_id.checked_add(1) {
            Some(next) => {
                probes.push(next);
                pending.push((slot, true));
            }
            None => pending.push((slot, false)),
        }
    }
    let bounds = index.lower_bound_batch_lanes(&probes, lanes);
    let mut at = 0usize;
    for (slot, has_end) in pending {
        let start = bounds[at];
        at += 1;
        let end = if has_end {
            at += 1;
            bounds[at - 1]
        } else {
            index.len()
        };
        out[slot] = rid_list.rids_in(start, end.max(start)).to_vec();
    }
    out
}

/// Partitioned [`range_select_many`]; see
/// [`point_select_many_ordered_par`] for the chunking contract.
pub fn range_select_many_par(
    column: &Column,
    rid_list: &RidList,
    index: &dyn OrderedIndex<u32>,
    ranges: &[(Value, Value)],
    lanes: usize,
    threads: usize,
) -> Vec<Vec<u32>> {
    ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(ranges, |chunk| {
        range_select_many_lanes(column, rid_list, index, chunk, lanes)
    })
}

/// Indexed nested-loop join — "pipelinable, requiring minimal storage for
/// intermediate results" (§2.2). Equal inner duplicates all match.
///
/// Batch-shaped on both of the paper's search axes: the outer *domain*
/// (its distinct values, not its rows) is translated into inner-domain
/// IDs with one batched dictionary search up front, and outer rows then
/// stream through the inner index [`JOIN_PROBE_BLOCK`] probes at a time
/// via `search_batch`, which batch-aware indexes answer with interleaved
/// descents.
pub fn indexed_nested_loop_join(
    outer: &Column,
    inner: &Column,
    inner_rids: &RidList,
    inner_index: &dyn SearchIndex<u32>,
) -> Vec<JoinRow> {
    let all: Vec<u32> = (0..outer.len() as u32).collect();
    indexed_nested_loop_join_rids(outer, &all, inner, inner_rids, inner_index)
}

/// [`indexed_nested_loop_join`] restricted to a subset of outer rows —
/// the shape a query plan produces when selections precede the join
/// ("pipelinable": the RID set from a filter streams straight into the
/// probe blocks). `outer_rids` need not be sorted; output order follows
/// it. Joining every outer row is exactly
/// `indexed_nested_loop_join(..)`, which delegates here.
pub fn indexed_nested_loop_join_rids(
    outer: &Column,
    outer_rids: &[u32],
    inner: &Column,
    inner_rids: &RidList,
    inner_index: &dyn SearchIndex<u32>,
) -> Vec<JoinRow> {
    // Consumer #3, batched and hoisted: one inner-domain lookup per
    // *distinct* outer value instead of one per outer row.
    let translation = inner.domain().encode_batch(outer.domain().values());
    join_rids_translated(
        outer,
        outer_rids,
        inner_rids,
        inner_index,
        &translation,
        DEFAULT_BATCH_LANES,
    )
}

/// Partitioned [`indexed_nested_loop_join_rids`]: the outer RID stream is
/// chunked across `threads` workers (`0` = one per core) over one shared
/// outer→inner domain translation, each chunk streaming through the
/// inner index in [`JOIN_PROBE_BLOCK`]-probe blocks at `lanes` interleave
/// lanes. Chunk outputs concatenate in outer-stream order, so the result
/// is byte-identical to the sequential join.
pub fn indexed_nested_loop_join_rids_par(
    outer: &Column,
    outer_rids: &[u32],
    inner: &Column,
    inner_rids: &RidList,
    inner_index: &dyn SearchIndex<u32>,
    lanes: usize,
    threads: usize,
) -> Vec<JoinRow> {
    let translation = inner.domain().encode_batch(outer.domain().values());
    ccindex_parallel::WorkerPool::new(threads).flat_map_chunks(outer_rids, |chunk| {
        join_rids_translated(outer, chunk, inner_rids, inner_index, &translation, lanes)
    })
}

/// The blocked probe loop shared by the sequential and partitioned joins:
/// stream `outer_rids` through `inner_index` with the outer→inner domain
/// `translation` already in hand.
fn join_rids_translated(
    outer: &Column,
    outer_rids: &[u32],
    inner_rids: &RidList,
    inner_index: &dyn SearchIndex<u32>,
    translation: &[Option<u32>],
    lanes: usize,
) -> Vec<JoinRow> {
    let mut out = Vec::new();
    let inner_keys = inner_rids.keys().as_slice();
    let mut probe_ids: Vec<u32> = Vec::with_capacity(JOIN_PROBE_BLOCK);
    let mut probe_rids: Vec<u32> = Vec::with_capacity(JOIN_PROBE_BLOCK);
    for block in outer_rids.chunks(JOIN_PROBE_BLOCK) {
        probe_ids.clear();
        probe_rids.clear();
        for &outer_rid in block {
            // Outer values the inner domain does not contain join nothing.
            if let Some(inner_id) = translation[outer.id(outer_rid) as usize] {
                probe_ids.push(inner_id);
                probe_rids.push(outer_rid);
            }
        }
        for ((&outer_rid, &inner_id), hit) in probe_rids
            .iter()
            .zip(&probe_ids)
            .zip(inner_index.search_batch_lanes(&probe_ids, lanes))
        {
            if let Some(first) = hit {
                let end = duplicate_run_end(inner_keys, first, inner_id);
                for pos in first..end {
                    out.push(JoinRow {
                        outer_rid,
                        inner_rid: inner_rids.rid(pos),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_choice::{build_index, build_ordered_index, IndexKind};
    use crate::table::TableBuilder;

    fn setup() -> (crate::table::Table, RidList) {
        let t = TableBuilder::new("sales")
            .int_column("amount", [30, 10, 20, 10, 30, 10, 40])
            .build()
            .expect("one column");
        let rl = RidList::for_column(t.column("amount").unwrap());
        (t, rl)
    }

    #[test]
    fn point_select_returns_all_duplicates() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rl.keys());
            let mut rids = point_select(col, &rl, idx.as_ref(), &Value::Int(10));
            rids.sort_unstable();
            assert_eq!(rids, vec![1, 3, 5], "{kind:?}");
            assert!(point_select(col, &rl, idx.as_ref(), &Value::Int(99)).is_empty());
        }
    }

    #[test]
    fn range_select_inclusive_bounds() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rl.keys());
            let mut rids = range_select(col, &rl, idx.as_ref(), &Value::Int(15), &Value::Int(30));
            rids.sort_unstable();
            assert_eq!(rids, vec![0, 2, 4], "{kind:?}");
            // Band with no domain values.
            assert!(
                range_select(col, &rl, idx.as_ref(), &Value::Int(31), &Value::Int(39)).is_empty()
            );
            // Full range.
            assert_eq!(
                range_select(col, &rl, idx.as_ref(), &Value::Int(0), &Value::Int(100)).len(),
                7
            );
        }
    }

    #[test]
    fn point_select_many_matches_single_selects() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        let probes: Vec<Value> = [10i64, 99, 30, 40, 10, -5]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rl.keys());
            let many = point_select_many(col, &rl, idx.as_ref(), &probes);
            assert_eq!(many.len(), probes.len());
            for (value, got) in probes.iter().zip(&many) {
                assert_eq!(
                    got,
                    &point_select(col, &rl, idx.as_ref(), value),
                    "{kind:?}"
                );
            }
            assert!(point_select_many(col, &rl, idx.as_ref(), &[]).is_empty());
        }
    }

    #[test]
    fn ordered_point_selects_match_the_scan_path() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        let probes: Vec<Value> = [10i64, 99, 30, 40, 10, -5]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        for kind in IndexKind::ORDERED {
            let ordered = build_ordered_index(kind, rl.keys());
            let scan = build_index(kind, rl.keys());
            for value in &probes {
                assert_eq!(
                    point_select_ordered(col, &rl, ordered.as_ref(), value),
                    point_select(col, &rl, scan.as_ref(), value),
                    "{kind:?} {value}"
                );
            }
            let many = point_select_many_ordered(col, &rl, ordered.as_ref(), &probes);
            assert_eq!(
                many,
                point_select_many(col, &rl, scan.as_ref(), &probes),
                "{kind:?}"
            );
            assert!(point_select_many_ordered(col, &rl, ordered.as_ref(), &[]).is_empty());
        }
    }

    #[test]
    fn filtered_join_restricts_to_the_outer_subset() {
        let orders = TableBuilder::new("orders")
            .int_column("cust", [5, 1, 2, 5, 9])
            .build()
            .expect("one column");
        let customers = TableBuilder::new("customers")
            .int_column("id", [1, 2, 3, 5, 5])
            .build()
            .expect("one column");
        let ccol = customers.column("id").unwrap();
        let crids = RidList::for_column(ccol);
        let ocol = orders.column("cust").unwrap();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, crids.keys());
            let full = indexed_nested_loop_join(ocol, ccol, &crids, idx.as_ref());
            // The subset path with rids {0, 3} must equal the full join
            // filtered to those outer rows.
            let subset = indexed_nested_loop_join_rids(ocol, &[0, 3], ccol, &crids, idx.as_ref());
            let expected: Vec<JoinRow> = full
                .iter()
                .filter(|j| j.outer_rid == 0 || j.outer_rid == 3)
                .copied()
                .collect();
            assert_eq!(subset, expected, "{kind:?}");
            assert!(
                indexed_nested_loop_join_rids(ocol, &[], ccol, &crids, idx.as_ref()).is_empty()
            );
        }
    }

    #[test]
    fn range_select_many_matches_single_selects() {
        let (t, rl) = setup();
        let col = t.column("amount").unwrap();
        let ranges: Vec<(Value, Value)> = [(15i64, 30i64), (0, 100), (31, 39), (40, 40)]
            .iter()
            .map(|&(a, b)| (Value::Int(a), Value::Int(b)))
            .collect();
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rl.keys());
            let many = range_select_many(col, &rl, idx.as_ref(), &ranges);
            for ((lo, hi), got) in ranges.iter().zip(&many) {
                assert_eq!(
                    got,
                    &range_select(col, &rl, idx.as_ref(), lo, hi),
                    "{kind:?} [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn partitioned_operators_match_sequential_for_every_kind() {
        let n = 4_000i64;
        let t = TableBuilder::new("sales")
            .int_column("amount", (0..n).map(|i| (i * 7) % 500))
            .build()
            .expect("one column");
        let col = t.column("amount").unwrap();
        let rl = RidList::for_column(col);
        let values: Vec<Value> = (0..600i64).map(|v| Value::Int(v - 50)).collect();
        let ranges: Vec<(Value, Value)> = (0..300i64)
            .map(|v| (Value::Int(v - 20), Value::Int(v + 35)))
            .collect();
        let inner = TableBuilder::new("codes")
            .int_column("amount", (0..200i64).flat_map(|v| [v, v]))
            .build()
            .expect("one column");
        let icol = inner.column("amount").unwrap();
        let irl = RidList::for_column(icol);
        let all_outer: Vec<u32> = (0..col.len() as u32).collect();
        for kind in IndexKind::ALL {
            let idx = build_index(kind, rl.keys());
            let seq_points = point_select_many(col, &rl, idx.as_ref(), &values);
            let inner_idx = build_index(kind, irl.keys());
            let seq_join =
                indexed_nested_loop_join_rids(col, &all_outer, icol, &irl, inner_idx.as_ref());
            for threads in [0usize, 1, 2, 8] {
                assert_eq!(
                    point_select_many_par(col, &rl, idx.as_ref(), &values, 8, threads),
                    seq_points,
                    "{kind:?} threads={threads}"
                );
                assert_eq!(
                    indexed_nested_loop_join_rids_par(
                        col,
                        &all_outer,
                        icol,
                        &irl,
                        inner_idx.as_ref(),
                        8,
                        threads
                    ),
                    seq_join,
                    "{kind:?} threads={threads}"
                );
            }
        }
        for kind in IndexKind::ORDERED {
            let idx = build_ordered_index(kind, rl.keys());
            let seq_points = point_select_many_ordered(col, &rl, idx.as_ref(), &values);
            let seq_ranges = range_select_many(col, &rl, idx.as_ref(), &ranges);
            for threads in [0usize, 1, 2, 8] {
                assert_eq!(
                    point_select_many_ordered_par(col, &rl, idx.as_ref(), &values, 8, threads),
                    seq_points,
                    "{kind:?} threads={threads}"
                );
                assert_eq!(
                    range_select_many_par(col, &rl, idx.as_ref(), &ranges, 8, threads),
                    seq_ranges,
                    "{kind:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn join_blocks_larger_than_probe_block() {
        // More outer rows than JOIN_PROBE_BLOCK so the blocked streaming
        // path takes more than one batch.
        let n = JOIN_PROBE_BLOCK * 2 + 37;
        let outer_vals: Vec<i64> = (0..n as i64).map(|i| i % 50).collect();
        let inner_vals: Vec<i64> = (0..40i64).collect(); // values 0..40
        let ot = TableBuilder::new("o")
            .int_column("k", outer_vals.clone())
            .build()
            .expect("one column");
        let it = TableBuilder::new("i")
            .int_column("k", inner_vals.clone())
            .build()
            .expect("one column");
        let icol = it.column("k").unwrap();
        let irids = RidList::for_column(icol);
        let idx = build_index(IndexKind::FullCss, irids.keys());
        let joined = indexed_nested_loop_join(ot.column("k").unwrap(), icol, &irids, idx.as_ref());
        // Outer values 0..40 match exactly one inner row each; 40..50 none.
        let expected = outer_vals.iter().filter(|&&v| v < 40).count();
        assert_eq!(joined.len(), expected);
        for j in &joined {
            assert_eq!(
                outer_vals[j.outer_rid as usize],
                inner_vals[j.inner_rid as usize]
            );
        }
    }

    #[test]
    fn join_matches_brute_force() {
        let orders = TableBuilder::new("orders")
            .int_column("cust", [5, 1, 2, 5, 9])
            .build()
            .expect("one column");
        let customers = TableBuilder::new("customers")
            .int_column("id", [1, 2, 3, 5, 5])
            .build()
            .expect("one column");
        let ccol = customers.column("id").unwrap();
        let crids = RidList::for_column(ccol);
        let ocol = orders.column("cust").unwrap();

        for kind in IndexKind::ALL {
            let idx = build_index(kind, crids.keys());
            let mut joined = indexed_nested_loop_join(ocol, ccol, &crids, idx.as_ref());
            joined.sort_by_key(|j| (j.outer_rid, j.inner_rid));

            // Brute force reference.
            let mut expected = Vec::new();
            for o in 0..ocol.len() as u32 {
                for i in 0..ccol.len() as u32 {
                    if ocol.value(o) == ccol.value(i) {
                        expected.push(JoinRow {
                            outer_rid: o,
                            inner_rid: i,
                        });
                    }
                }
            }
            expected.sort_by_key(|j| (j.outer_rid, j.inner_rid));
            assert_eq!(joined, expected, "{kind:?}");
        }
    }

    #[test]
    fn join_with_string_keys_via_domains() {
        let left = TableBuilder::new("l")
            .str_column("k", ["b", "a", "z"])
            .build()
            .expect("one column");
        let right = TableBuilder::new("r")
            .str_column("k", ["a", "b", "b"])
            .build()
            .expect("one column");
        let rcol = right.column("k").unwrap();
        let rrids = RidList::for_column(rcol);
        let idx = build_index(IndexKind::FullCss, rrids.keys());
        let joined =
            indexed_nested_loop_join(left.column("k").unwrap(), rcol, &rrids, idx.as_ref());
        // "b" matches rids 1,2; "a" matches rid 0; "z" matches nothing.
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&JoinRow {
            outer_rid: 1,
            inner_rid: 0
        }));
        assert!(joined.contains(&JoinRow {
            outer_rid: 0,
            inner_rid: 1
        }));
        assert!(joined.contains(&JoinRow {
            outer_rid: 0,
            inner_rid: 2
        }));
    }
}
