//! Sorted RID lists (§2.2).
//!
//! "A list of record identifiers sorted by some columns provides ordered
//! access to the base relation. Ordered access is useful for range queries
//! and for satisfying interesting orders. A sorted array is an index
//! structure itself since binary search can be used."
//!
//! A [`RidList`] is that structure: the RIDs of a column's rows ordered by
//! the column's value (i.e. by domain ID, ties broken by RID so results
//! are deterministic), together with the parallel array of domain IDs in
//! sorted order — the **sorted array `a`** every directory structure in
//! this workspace sits on.

use crate::column::Column;
use ccindex_common::SortedArray;

/// RIDs sorted by attribute value, with the sorted key (domain-ID) array.
#[derive(Debug, Clone)]
pub struct RidList {
    keys: SortedArray<u32>,
    rids: Vec<u32>,
}

impl RidList {
    /// Sort the column's rows by value (stable: equal keys keep RID
    /// order, which is what makes "leftmost match + scan right" return
    /// RIDs in deterministic order).
    pub fn for_column(column: &Column) -> Self {
        let mut order: Vec<u32> = (0..column.len() as u32).collect();
        order.sort_by_key(|&rid| (column.id(rid), rid));
        let keys: Vec<u32> = order.iter().map(|&rid| column.id(rid)).collect();
        Self {
            keys: SortedArray::from_slice(&keys),
            rids: order,
        }
    }

    /// Reassemble from parts (used by the batch-update path).
    pub fn from_parts(keys: SortedArray<u32>, rids: Vec<u32>) -> Self {
        assert_eq!(keys.len(), rids.len(), "keys and rids must be parallel");
        Self { keys, rids }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// The sorted domain-ID array (shared, cache-line aligned) — the
    /// array indexes are built over.
    pub fn keys(&self) -> &SortedArray<u32> {
        &self.keys
    }

    /// RID at sorted position `pos`.
    pub fn rid(&self, pos: usize) -> u32 {
        self.rids[pos]
    }

    /// RIDs for the half-open sorted-position range `[start, end)`.
    pub fn rids_in(&self, start: usize, end: usize) -> &[u32] {
        &self.rids[start..end]
    }

    /// All RIDs in key order (ordered access to the base relation).
    pub fn rids(&self) -> &[u32] {
        &self.rids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Value;

    fn column() -> Column {
        let vals: Vec<Value> = [30i64, 10, 20, 10, 30, 10]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        Column::from_values(&vals)
    }

    #[test]
    fn rids_are_value_ordered_with_stable_ties() {
        let rl = RidList::for_column(&column());
        // Value order: 10 (rids 1,3,5), 20 (rid 2), 30 (rids 0,4).
        assert_eq!(rl.rids(), &[1, 3, 5, 2, 0, 4]);
        assert_eq!(rl.keys().as_slice(), &[0, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn ordered_access_reconstructs_sorted_values(/* §2.2 */) {
        let col = column();
        let rl = RidList::for_column(&col);
        let sorted: Vec<&Value> = rl.rids().iter().map(|&r| col.value(r)).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_slicing() {
        let rl = RidList::for_column(&column());
        assert_eq!(rl.rids_in(0, 3), &[1, 3, 5]);
        assert_eq!(rl.rids_in(3, 4), &[2]);
        assert_eq!(rl.rid(5), 4);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn from_parts_validates_lengths() {
        let keys = SortedArray::from_slice(&[1u32, 2]);
        let _ = RidList::from_parts(keys, vec![0]);
    }
}
