//! Epoch/snapshot concurrency for the catalog: immutable generations
//! behind [`Arc`], swapped atomically on commit, reclaimed when the last
//! pinned reader drops.
//!
//! The paper's update story (§2.3) is a *batch rebuild cycle*: CSS-trees
//! trade incremental update for bulk reconstruction, so a catalog
//! mutation naturally produces a whole next **generation** of the index
//! structures rather than editing the current one in place. This module
//! turns that shape into a concurrency discipline:
//!
//! * writers mutate their private tip and, on commit, [`install`] the
//!   completed generation into a [`SwapSlot`];
//! * readers [`pin`] whatever generation is current and keep probing it,
//!   lock-free, for as long as they hold the [`Pinned`] guard — a
//!   concurrent commit never moves data out from under them;
//! * a generation's memory is reclaimed by the last `Arc` dropping —
//!   either the slot replacing it or the final pinned reader going away.
//!
//! The only lock in the module is the one inside [`SwapSlot`], held for
//! the duration of a single `Arc` clone or store (stable Rust has no
//! atomic "swap + clone" on `Arc` without `unsafe`). Crucially it is
//! **not** part of the read path: a [`Pinned`] guard holds a plain
//! `Arc<T>` plus an atomic pin counter, so every probe against a pinned
//! [`CatalogState`] runs with zero locks — the acceptance bar the
//! serving layer is held to.
//!
//! The slot's mutex and atomics come from the `ccindex_parallel::sync`
//! facade, so the pin/install/reclaim protocol is explored under
//! exhaustive scheduling by `crates/check/tests/model_snapshot.rs`
//! (production builds compile to the plain std types). Two ordering
//! regimes coexist on the pin counter, each carrying its own
//! justification below: the counter as *observability* (any ordering
//! will do) and the counter as *quiescence signal* — a writer taking
//! `pinned() == 0` as license to tear down shared state — which needs
//! the unpin-Release / read-Acquire pair to order the last reader's
//! probes before the teardown.
//!
//! [`install`]: SwapSlot::install
//! [`pin`]: SwapSlot::pin

use crate::column::Column;
use crate::engine::TableEntry;
use crate::error::{MmdbError, Result};
use crate::index_choice::{IndexHandle, IndexKind};
use crate::plan::{ExecOptions, Query};
use crate::rid::RidList;
use crate::table::Table;
use ccindex_parallel::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ccindex_parallel::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

// ---------------------------------------------------------------------
// The generic slot + pin machinery
// ---------------------------------------------------------------------

/// The commit point between one writer and any number of readers: holds
/// the current immutable generation of `T`, hands out [`Pinned`] guards
/// to readers, and atomically replaces the generation when the writer
/// [`install`](SwapSlot::install)s the next one.
///
/// The slot also carries the observability counters the serving layer
/// surfaces: the installed generation number, how many swaps have
/// happened, and how many pins are live right now.
#[derive(Debug)]
pub struct SwapSlot<T> {
    /// The current generation. The mutex guards only the `Arc`
    /// clone/store itself (nanoseconds); it is never held while a reader
    /// probes, so the read path stays lock-free.
    current: Mutex<Arc<T>>,
    generation: AtomicU64,
    swaps: AtomicU64,
    /// Live [`Pinned`] guards across *all* generations of this slot.
    /// Shared with every guard so drops decrement without a back
    /// reference to the slot.
    pins: Arc<AtomicUsize>,
}

impl<T> SwapSlot<T> {
    /// A slot holding `state` as generation `generation`, with zero
    /// swaps recorded (the initial install is creation, not a commit).
    pub fn new(state: T, generation: u64) -> Arc<Self> {
        Arc::new(Self {
            current: Mutex::new(Arc::new(state)),
            generation: AtomicU64::new(generation),
            swaps: AtomicU64::new(0),
            pins: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Commit `state` as the new current generation. Readers pinned to
    /// older generations are unaffected; new [`pin`](SwapSlot::pin)s see
    /// `state`. The previous generation is dropped here if no reader
    /// holds it.
    pub fn install(&self, state: T, generation: u64) {
        let state = Arc::new(state);
        *self.current.lock().expect("slot lock poisoned") = state;
        // ORDERING: Release — pairs with the Acquire in `generation()`,
        // so a reader that observes the new number also observes the
        // fully-built generation it names. (Pinning itself is ordered
        // by the slot mutex, not by this store.)
        self.generation.store(generation, Ordering::Release);
        // ORDERING: Relaxed — `swaps` is an observability counter
        // (stats, tests); nothing reads it to justify touching shared
        // memory, so the RMW's atomicity alone suffices.
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Pin the current generation: the returned guard keeps it alive
    /// (and readable without locks) until dropped, however many commits
    /// happen in the meantime.
    pub fn pin(&self) -> Pinned<T> {
        let guard = self.current.lock().expect("slot lock poisoned");
        let state = guard.clone();
        // ORDERING: Relaxed — registration is ordered by the slot
        // mutex, not by this RMW: it must stay inside the critical
        // section (the guard is still live) so that a pin is either
        // visible to a writer's post-`install` quiescence check or the
        // pin observed that writer's generation — never neither. (An
        // earlier version incremented after the guard dropped, leaving
        // a window where a freshly-cloned old generation was invisible
        // to the count; the model suite in
        // crates/check/tests/model_snapshot.rs explores that exact
        // interleaving.) A writer that reads a non-zero count merely
        // refrains from teardown, so no edge is needed on the way up.
        self.pins.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        Pinned {
            state,
            pins: Arc::clone(&self.pins),
        }
    }

    /// The generation number of the currently installed state.
    pub fn generation(&self) -> u64 {
        // ORDERING: Acquire — pairs with the Release in `install`; see
        // there.
        self.generation.load(Ordering::Acquire)
    }

    /// How many generations have been committed through
    /// [`install`](SwapSlot::install) since the slot was created.
    pub fn swaps(&self) -> u64 {
        // ORDERING: Relaxed — observability counter; see `install`.
        self.swaps.load(Ordering::Relaxed)
    }

    /// Live pinned guards, across all generations. A `0` is a
    /// *quiescence certificate*: every probe through any guard that was
    /// ever pinned happens-before this call returns, so a writer may
    /// tear down or repurpose state the guards were reading. (A
    /// non-zero value is only a statistic — more pins may appear the
    /// instant it returns.)
    pub fn pinned(&self) -> usize {
        // ORDERING: Acquire — pairs with the Release decrement in
        // `Pinned::drop`. This load was once Relaxed, which the model
        // checker's race detector flags the moment a writer acts on the
        // zero (crates/check/tests/model_snapshot.rs has the mutant):
        // without the edge, the last reader's probes could still be in
        // flight while the writer reclaims.
        self.pins.load(Ordering::Acquire)
    }
}

/// A pinned, immutable generation: [`Deref`]s to `T`, keeps the
/// generation alive, contains **no lock** — probing through a guard is
/// exactly probing the underlying `T`.
///
/// Cloning a guard pins the same generation again (both clones count);
/// dropping the last guard of an already-replaced generation reclaims
/// its memory.
pub struct Pinned<T> {
    state: Arc<T>,
    pins: Arc<AtomicUsize>,
}

impl<T> Deref for Pinned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.state
    }
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        // ORDERING: Relaxed — while this guard exists the count is
        // already non-zero, so a cloned pin can never be the one that
        // takes the count from 0; no writer decision changes on the
        // 1→2 edge, only on 0 vs non-zero.
        self.pins.fetch_add(1, Ordering::Relaxed);
        Self {
            state: Arc::clone(&self.state),
            pins: Arc::clone(&self.pins),
        }
    }
}

impl<T> Drop for Pinned<T> {
    fn drop(&mut self) {
        // ORDERING: Release — pairs with the Acquire in
        // `SwapSlot::pinned`: every probe through this guard
        // happens-before the decrement, so a writer that observes the
        // count hit 0 also observes all of the reader's accesses as
        // completed. This was Ordering::Relaxed until the model checker
        // flagged the reclaim-while-pinned race that allows (the
        // PR's ordering audit; mutant preserved in
        // crates/check/tests/model_snapshot.rs).
        self.pins.fetch_sub(1, Ordering::Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for Pinned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Pinned").field(&self.state).finish()
    }
}

// ---------------------------------------------------------------------
// The catalog's immutable generation
// ---------------------------------------------------------------------

/// One immutable generation of the catalog: tables, RID lists and
/// indexes, plus the [`ExecOptions`] that were in force when it was
/// committed. Everything a query needs, nothing a writer can touch —
/// the whole read surface of [`Database`](crate::engine::Database)
/// ([`query`](CatalogState::query), the probe batches, name resolution)
/// is defined here and merely delegated to by the mutable engine.
///
/// Cloning is cheap: table entries sit behind [`Arc`], so a generation
/// clone is one `BTreeMap` of pointer bumps and untouched tables stay
/// shared across generations (the writer copy-on-writes only the entry
/// it mutates).
#[derive(Debug, Clone)]
pub struct CatalogState {
    pub(crate) tables: BTreeMap<String, Arc<TableEntry>>,
    /// The catalog-wide execution knobs at commit time.
    pub(crate) exec: ExecOptions,
    /// Monotonic commit counter; generation 0 is the empty catalog.
    pub(crate) generation: u64,
}

/// The catalog's pinned-generation guard:
/// [`Database::snapshot`](crate::engine::Database::snapshot) hands these
/// out, and every read API of [`CatalogState`] is available through
/// [`Deref`].
pub type Snapshot = Pinned<CatalogState>;

impl CatalogState {
    /// The commit counter of this generation (0 = the empty catalog a
    /// [`Database::new`](crate::engine::Database::new) starts from).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The [`ExecOptions`] in force when this generation committed;
    /// plans compiled against the generation inherit them.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Registered table names, in name order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The table registered as `name`.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|e| &e.table)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: name.to_owned(),
            })
    }

    /// The sorted RID list owned for `table.column` (present once any
    /// index exists on the column).
    pub fn rid_list(&self, table: &str, column: &str) -> Result<&RidList> {
        Ok(&self.column_entry(table, column)?.rids)
    }

    /// The `kind` index on `table.column`.
    pub fn index(&self, table: &str, column: &str, kind: IndexKind) -> Result<&IndexHandle> {
        self.column_entry(table, column)?
            .indexes
            .get(&kind)
            .map(|h| &**h)
            .ok_or_else(|| MmdbError::IndexNotBuilt {
                table: table.to_owned(),
                column: column.to_owned(),
                kind,
            })
    }

    /// Which kinds are built on `table.column`, in [`IndexKind`] order.
    pub fn indexed_kinds(&self, table: &str, column: &str) -> Result<Vec<IndexKind>> {
        Ok(self
            .column_entry(table, column)?
            .indexes
            .keys()
            .copied()
            .collect())
    }

    /// Start a composable query over `table` against this generation —
    /// the same builder [`Database::query`](crate::engine::Database::query)
    /// returns, so a pinned [`Snapshot`] serves the full query surface.
    pub fn query(&self, table: impl Into<String>) -> Query<'_> {
        Query::new(self, table.into())
    }

    // ---- crate-internal resolution used by the planner/executor ----

    pub(crate) fn entry(&self, table: &str) -> Result<&TableEntry> {
        self.tables
            .get(table)
            .map(|e| &**e)
            .ok_or_else(|| MmdbError::UnknownTable {
                table: table.to_owned(),
            })
    }

    /// The column itself (no index required).
    pub(crate) fn column(&self, table: &str, column: &str) -> Result<&Column> {
        self.entry(table)?
            .table
            .column(column)
            .ok_or_else(|| MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            })
    }

    /// The column's access paths; [`MmdbError::NoIndex`] when the column
    /// exists but has never been indexed.
    pub(crate) fn column_entry(
        &self,
        table: &str,
        column: &str,
    ) -> Result<&crate::engine::ColumnEntry> {
        let entry = self.entry(table)?;
        if entry.table.column(column).is_none() {
            return Err(MmdbError::UnknownColumn {
                table: table.to_owned(),
                column: column.to_owned(),
            });
        }
        entry.columns.get(column).ok_or_else(|| MmdbError::NoIndex {
            table: table.to_owned(),
            column: column.to_owned(),
        })
    }
}

// ---------------------------------------------------------------------
// The reader-side handle
// ---------------------------------------------------------------------

/// A cloneable, `Send + Sync` reader handle onto a live
/// [`Database`](crate::engine::Database): readers on other threads call
/// [`snapshot`](DatabaseHandle::snapshot) to pin the current generation
/// while the owning thread keeps `&mut` access for commits. Obtained
/// from [`Database::handle`](crate::engine::Database::handle).
#[derive(Debug, Clone)]
pub struct DatabaseHandle {
    pub(crate) slot: Arc<SwapSlot<CatalogState>>,
}

impl DatabaseHandle {
    /// Pin the current generation (identical to
    /// [`Database::snapshot`](crate::engine::Database::snapshot)).
    pub fn snapshot(&self) -> Snapshot {
        self.slot.pin()
    }

    /// The generation number of the current committed state.
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// How many generations have been committed so far.
    pub fn swaps(&self) -> u64 {
        self.slot.swaps()
    }

    /// Live pinned snapshots, across all generations.
    pub fn pinned(&self) -> usize {
        self.slot.pinned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A state whose drop is observable, so reclamation is testable
    /// without reaching into the slot's internals.
    #[derive(Debug)]
    struct Tracked {
        value: u64,
        dropped: Arc<AtomicBool>,
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.dropped.store(true, Ordering::Release);
        }
    }

    #[test]
    fn pin_sees_the_latest_install() {
        let slot = SwapSlot::new(10u64, 0);
        assert_eq!(*slot.pin(), 10);
        assert_eq!((slot.generation(), slot.swaps()), (0, 0));
        slot.install(20, 1);
        slot.install(30, 2);
        assert_eq!(*slot.pin(), 30);
        assert_eq!((slot.generation(), slot.swaps()), (2, 2));
    }

    #[test]
    fn a_pinned_generation_survives_commits_and_is_reclaimed_on_last_drop() {
        let dropped = Arc::new(AtomicBool::new(false));
        let slot = SwapSlot::new(
            Tracked {
                value: 1,
                dropped: Arc::clone(&dropped),
            },
            0,
        );
        let pin = slot.pin();
        let pin2 = pin.clone();
        assert_eq!(slot.pinned(), 2, "a cloned guard counts as its own pin");
        // Replace the generation: the pinned readers keep the old one.
        let dropped2 = Arc::new(AtomicBool::new(false));
        slot.install(
            Tracked {
                value: 2,
                dropped: Arc::clone(&dropped2),
            },
            1,
        );
        assert_eq!(pin.value, 1);
        assert_eq!(pin2.value, 1);
        assert!(!dropped.load(Ordering::Acquire), "still pinned");
        drop(pin);
        assert!(!dropped.load(Ordering::Acquire), "one pin remains");
        assert_eq!(slot.pinned(), 1);
        drop(pin2);
        assert!(
            dropped.load(Ordering::Acquire),
            "last pin dropped: generation reclaimed"
        );
        assert_eq!(slot.pinned(), 0);
        assert!(!dropped2.load(Ordering::Acquire), "current stays installed");
        assert_eq!(slot.pin().value, 2);
    }

    #[test]
    fn concurrent_pins_and_installs_always_see_a_whole_generation() {
        // The writer installs pairs whose halves must agree; racing
        // readers must never observe a torn pair. (This is the unit the
        // CI Miri job runs to catch ordering bugs.)
        let slot = SwapSlot::new((0u64, 0u64), 0);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for g in 1..=50u64 {
                    slot.install((g, g * 3), g);
                }
            });
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut last = 0u64;
                        for _ in 0..50 {
                            let pin = slot.pin();
                            let (a, b) = *pin;
                            assert_eq!(b, a * 3, "torn generation observed");
                            assert!(a >= last, "generations move forward");
                            last = a;
                        }
                    })
                })
                .collect();
            writer.join().expect("writer");
            for r in readers {
                r.join().expect("reader");
            }
        });
        assert_eq!(slot.generation(), 50);
        assert_eq!(slot.swaps(), 50);
        assert_eq!(slot.pinned(), 0, "every guard dropped");
    }

    #[test]
    fn pinned_guards_deref_clone_and_debug() {
        let slot = SwapSlot::new(vec![1u32, 2, 3], 7);
        let pin = slot.pin();
        assert_eq!(pin.len(), 3);
        assert_eq!(pin.clone()[1], 2);
        assert!(format!("{pin:?}").contains("Pinned"));
    }
}
