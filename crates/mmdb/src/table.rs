//! Columnar tables.

use crate::column::Column;
use crate::domain::Value;
use crate::error::{MmdbError, Result};

/// A named, columnar, domain-encoded table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<(String, Column)>,
    rows: usize,
}

/// Builder collecting raw columns before encoding.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, Vec<Value>)>,
}

impl TableBuilder {
    /// Start a table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Add a raw column (all columns must have equal length at `build`).
    pub fn column(mut self, name: impl Into<String>, values: Vec<Value>) -> Self {
        self.columns.push((name.into(), values));
        self
    }

    /// Convenience: an integer column.
    pub fn int_column(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = i64>,
    ) -> Self {
        self.column(name, values.into_iter().map(Value::Int).collect())
    }

    /// Convenience: a string column.
    pub fn str_column<S: Into<String>>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.column(
            name,
            values.into_iter().map(|s| Value::Str(s.into())).collect(),
        )
    }

    /// Encode every column and produce the table. Fails with
    /// [`MmdbError::RaggedColumn`] — naming the table and the first
    /// offending column — when column lengths disagree.
    pub fn build(self) -> Result<Table> {
        let rows = self.columns.first().map_or(0, |(_, v)| v.len());
        for (name, v) in &self.columns {
            if v.len() != rows {
                return Err(MmdbError::RaggedColumn {
                    table: self.name,
                    column: name.clone(),
                    expected: rows,
                    got: v.len(),
                });
            }
        }
        Ok(Table {
            name: self.name,
            columns: self
                .columns
                .into_iter()
                .map(|(name, vals)| (name, Column::from_values(&vals)))
                .collect(),
            rows,
        })
    }
}

impl Table {
    /// Reassemble a table from already-encoded columns (the storage
    /// open path). The caller — [`persist`](crate::persist) — has
    /// already validated that every column holds exactly `rows` rows;
    /// this constructor only restates that invariant.
    pub(crate) fn from_parts(name: String, columns: Vec<(String, Column)>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|(_, c)| c.len() == rows));
        Self {
            name,
            columns,
            rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// All `(name, column)` pairs.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Decoded value at `(column, rid)`.
    pub fn value(&self, column: &str, rid: u32) -> Option<&Value> {
        self.column(column).map(|c| c.value(rid))
    }

    /// Replace a column wholesale (batch-update path); the new column must
    /// have the same row count.
    pub fn replace_column(&mut self, name: &str, column: Column) {
        assert_eq!(column.len(), self.rows, "row count mismatch");
        let slot = self
            .columns
            .iter_mut()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no column named {name}"));
        slot.1 = column;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        TableBuilder::new("sales")
            .int_column("amount", [30, 10, 20, 10])
            .str_column("region", ["east", "west", "east", "north"])
            .build()
            .expect("equal-length columns")
    }

    #[test]
    fn builder_roundtrip() {
        let t = sales();
        assert_eq!(t.name(), "sales");
        assert_eq!(t.rows(), 4);
        assert_eq!(t.value("amount", 0), Some(&Value::Int(30)));
        assert_eq!(t.value("region", 3), Some(&Value::Str("north".into())));
        assert!(t.column("missing").is_none());
        assert_eq!(t.columns().count(), 2);
    }

    #[test]
    fn domains_are_per_column() {
        let t = sales();
        assert_eq!(t.column("amount").unwrap().domain().len(), 3);
        assert_eq!(t.column("region").unwrap().domain().len(), 3);
    }

    #[test]
    fn rejects_ragged_columns_with_named_error() {
        let err = TableBuilder::new("bad")
            .int_column("a", [1, 2])
            .int_column("b", [1])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            MmdbError::RaggedColumn {
                table: "bad".into(),
                column: "b".into(),
                expected: 2,
                got: 1,
            }
        );
        assert!(err.to_string().contains("bad"));
        assert!(err.to_string().contains('b'));
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("empty").build().expect("no columns");
        assert_eq!(t.rows(), 0);
        assert_eq!(t.columns().count(), 0);
    }
}
