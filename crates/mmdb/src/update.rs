//! The OLAP batch-update cycle (§2.3, §4.1.1).
//!
//! "We assume an OLAP environment, so we don't care too much about
//! updates. ... when batch updates arrive, we can afford to rebuild the
//! CSS-tree." [`apply_batch`] is that cycle: merge the sorted key array
//! with a batch of inserts/deletes, then rebuild the index of the chosen
//! kind from scratch, reporting how long each phase took (the quantity
//! Fig. 9 plots for CSS-trees).

use crate::index_choice::{build_index, IndexHandle, IndexKind};
use ccindex_common::{SearchIndex, SortedArray};
use std::time::{Duration, Instant};

/// Outcome of one batch-update + rebuild cycle.
pub struct BatchResult {
    /// The merged sorted key array.
    pub keys: SortedArray<u32>,
    /// The freshly rebuilt index.
    pub index: Box<dyn SearchIndex<u32>>,
    /// Time spent merging the batch into the sorted array.
    pub merge_time: Duration,
    /// Time spent rebuilding the index (Fig. 9's measurement).
    pub rebuild_time: Duration,
}

/// Outcome of one batch-update + rebuild cycle at the catalog level,
/// where the rebuilt index keeps its ordered view (see [`IndexHandle`]).
pub struct HandleBatchResult {
    /// The merged sorted key array.
    pub keys: SortedArray<u32>,
    /// The freshly rebuilt index handle.
    pub handle: IndexHandle,
    /// Time spent merging the batch into the sorted array.
    pub merge_time: Duration,
    /// Time spent rebuilding the index.
    pub rebuild_time: Duration,
}

/// The merge phase alone: `inserts`/`deletes` folded into `keys` (all
/// sorted; duplicates in `keys` allowed — one delete removes one
/// occurrence), with the time it took. Both rebuild cycles below share
/// this.
///
/// Delete semantics: deletes target occurrences of the **pre-batch**
/// array only. A delete key absent from the base array is a no-op (it is
/// skipped, never stalling the cursor on later base keys), and a delete
/// key equal to a same-batch insert does not cancel that insert — whether
/// the insert lands between base keys or in the appended tail beyond the
/// last base key. Callers wanting insert/delete cancellation should
/// pre-net their batches before calling.
pub fn merge_batch(
    keys: &SortedArray<u32>,
    inserts: &[u32],
    deletes: &[u32],
) -> (SortedArray<u32>, Duration) {
    debug_assert!(inserts.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(deletes.windows(2).all(|w| w[0] <= w[1]));
    let t0 = Instant::now();
    let base = keys.as_slice();
    let mut merged = Vec::with_capacity(base.len() + inserts.len());
    let mut ins = inserts.iter().peekable();
    let mut del = deletes.iter().peekable();
    for &k in base {
        while let Some(&&i) = ins.peek() {
            if i < k {
                merged.push(i);
                ins.next();
            } else {
                break;
            }
        }
        // Discard delete keys smaller than the current base key: they
        // matched no base occurrence (absent, or already consumed by an
        // earlier equal base key) and must not block later deletes.
        while let Some(&&d) = del.peek() {
            if d < k {
                del.next();
            } else {
                break;
            }
        }
        if del.peek() == Some(&&k) {
            del.next();
            continue;
        }
        merged.push(k);
    }
    merged.extend(ins.copied());
    (SortedArray::from_vec(merged), t0.elapsed())
}

/// Merge `inserts`/`deletes` into `keys` and rebuild a `kind` index over
/// the result.
pub fn apply_batch(
    keys: &SortedArray<u32>,
    inserts: &[u32],
    deletes: &[u32],
    kind: IndexKind,
) -> BatchResult {
    let (new_keys, merge_time) = merge_batch(keys, inserts, deletes);
    let t1 = Instant::now();
    let index = build_index(kind, &new_keys);
    let rebuild_time = t1.elapsed();

    BatchResult {
        keys: new_keys,
        index,
        merge_time,
        rebuild_time,
    }
}

/// Outcome of one batch-update cycle rebuilding **several** index kinds
/// over the same merged key array (the shape of
/// [`Database::rebuild_column`](crate::engine::Database::rebuild_column),
/// where every kind registered on a column rebuilds at once).
pub struct MultiBatchResult {
    /// The merged sorted key array all kinds were rebuilt over.
    pub keys: SortedArray<u32>,
    /// Time spent merging the batch into the sorted array (once, shared
    /// by every kind).
    pub merge_time: Duration,
    /// Per-kind rebuilt handles with their from-scratch rebuild times,
    /// in input-kind order.
    pub rebuilds: Vec<(IndexKind, IndexHandle, Duration)>,
}

/// As [`apply_batch_handle`] for several kinds at once: merge the batch
/// once, then rebuild each kind's index over the merged array — the
/// rebuilds are independent, so they fan out across a
/// [`ccindex_parallel::WorkerPool`] of `threads` workers (`1` =
/// sequential, `0` = one per core). Results come back in input-kind
/// order regardless of the thread count, and each per-kind rebuild time
/// is measured inside its own job.
pub fn apply_batch_kinds_par(
    keys: &SortedArray<u32>,
    inserts: &[u32],
    deletes: &[u32],
    kinds: &[IndexKind],
    threads: usize,
) -> MultiBatchResult {
    let (new_keys, merge_time) = merge_batch(keys, inserts, deletes);
    let rebuilds = ccindex_parallel::WorkerPool::new(threads).run(kinds.len(), |i| {
        let kind = kinds[i];
        let t0 = Instant::now();
        let handle = IndexHandle::build(kind, &new_keys);
        (kind, handle, t0.elapsed())
    });
    MultiBatchResult {
        keys: new_keys,
        merge_time,
        rebuilds,
    }
}

/// As [`apply_batch`], producing an [`IndexHandle`] so ordered kinds keep
/// their ordered view — the cycle the catalog runs when a column's
/// indexes are rebuilt (§2.3: "it may be relatively cheap to rebuild an
/// index from scratch after a batch of updates").
pub fn apply_batch_handle(
    keys: &SortedArray<u32>,
    inserts: &[u32],
    deletes: &[u32],
    kind: IndexKind,
) -> HandleBatchResult {
    let (new_keys, merge_time) = merge_batch(keys, inserts, deletes);
    let t1 = Instant::now();
    let handle = IndexHandle::build(kind, &new_keys);
    let rebuild_time = t1.elapsed();

    HandleBatchResult {
        keys: new_keys,
        handle,
        merge_time,
        rebuild_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_rebuild_are_consistent() {
        let keys = SortedArray::from_slice(&(0..1000u32).map(|i| i * 2).collect::<Vec<_>>());
        let inserts: Vec<u32> = vec![1, 3, 2001];
        let deletes: Vec<u32> = vec![0, 998];
        let r = apply_batch(&keys, &inserts, &deletes, IndexKind::FullCss);
        assert_eq!(r.keys.len(), 1000 + 3 - 2);
        assert_eq!(r.index.search(1), Some(0));
        assert_eq!(r.index.search(0), None, "deleted");
        assert_eq!(r.index.search(998), None, "deleted");
        assert_eq!(r.index.search(2001), Some(r.keys.len() - 1));
    }

    #[test]
    fn one_delete_removes_one_duplicate() {
        let keys = SortedArray::from_slice(&[5u32, 5, 5, 9]);
        let r = apply_batch(&keys, &[], &[5], IndexKind::BinarySearch);
        assert_eq!(r.keys.as_slice(), &[5, 5, 9]);
    }

    #[test]
    fn absent_delete_keys_do_not_stall_the_cursor() {
        // The ISSUE's repro: a delete key (3) absent from the base array
        // must not shadow a later delete key (10) that is present.
        let keys = SortedArray::from_slice(&[5u32, 10]);
        let (merged, _) = merge_batch(&keys, &[], &[3, 10]);
        assert_eq!(merged.as_slice(), &[5]);
        // Several stale keys in a row, before and between live ones.
        let keys = SortedArray::from_slice(&[2u32, 4, 4, 9]);
        let (merged, _) = merge_batch(&keys, &[], &[0, 1, 3, 4, 6, 7, 9, 11]);
        assert_eq!(merged.as_slice(), &[2, 4]);
    }

    #[test]
    fn deletes_never_cancel_same_batch_inserts() {
        // Tail insert beyond every base key: the delete for it is stale.
        let keys = SortedArray::from_slice(&[5u32, 10]);
        let (merged, _) = merge_batch(&keys, &[20], &[20]);
        assert_eq!(merged.as_slice(), &[5, 10, 20]);
        // Insert landing between base keys: same rule.
        let (merged, _) = merge_batch(&keys, &[7], &[7]);
        assert_eq!(merged.as_slice(), &[5, 7, 10]);
        // But a delete equal to a *base* key still fires even when an
        // equal insert arrives in the same batch (one out, one in).
        let (merged, _) = merge_batch(&keys, &[10], &[10]);
        assert_eq!(merged.as_slice(), &[5, 10]);
    }

    #[test]
    fn rebuild_works_for_every_kind() {
        let keys = SortedArray::from_slice(&(0..5000u32).collect::<Vec<_>>());
        for kind in IndexKind::ALL {
            let r = apply_batch(&keys, &[10_000], &[2_500], kind);
            assert_eq!(r.index.search(10_000), Some(r.keys.len() - 1), "{kind:?}");
            assert_eq!(r.index.search(2_500), None, "{kind:?}");
            assert_eq!(r.index.len(), 5000, "{kind:?}");
        }
    }

    #[test]
    fn handle_cycle_matches_plain_cycle() {
        let keys = SortedArray::from_slice(&(0..2000u32).map(|i| i * 3).collect::<Vec<_>>());
        for kind in IndexKind::ALL {
            let plain = apply_batch(&keys, &[1, 4], &[3], kind);
            let handled = apply_batch_handle(&keys, &[1, 4], &[3], kind);
            assert_eq!(plain.keys.as_slice(), handled.keys.as_slice(), "{kind:?}");
            for probe in [0u32, 1, 4, 3, 5999] {
                assert_eq!(
                    plain.index.search(probe),
                    handled.handle.as_search().search(probe),
                    "{kind:?} probe {probe}"
                );
            }
            assert_eq!(
                handled.handle.as_ordered().is_some(),
                kind.is_ordered(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn multi_kind_parallel_cycle_matches_per_kind_cycles() {
        let keys = SortedArray::from_slice(&(0..3000u32).map(|i| i * 2).collect::<Vec<_>>());
        let inserts = [1u32, 7, 9_999];
        let deletes = [0u32, 10];
        for threads in [0usize, 1, 2, 8] {
            let multi = apply_batch_kinds_par(&keys, &inserts, &deletes, &IndexKind::ALL, threads);
            assert_eq!(multi.rebuilds.len(), IndexKind::ALL.len(), "t={threads}");
            for (i, (kind, handle, _)) in multi.rebuilds.iter().enumerate() {
                assert_eq!(*kind, IndexKind::ALL[i], "order is input order");
                let single = apply_batch_handle(&keys, &inserts, &deletes, *kind);
                assert_eq!(multi.keys.as_slice(), single.keys.as_slice());
                for probe in [0u32, 1, 7, 10, 9_999, 123_456] {
                    assert_eq!(
                        handle.as_search().search(probe),
                        single.handle.as_search().search(probe),
                        "{kind:?} t={threads} probe {probe}"
                    );
                }
            }
        }
        // No kinds at all: still merges, reports nothing to rebuild.
        let none = apply_batch_kinds_par(&keys, &inserts, &deletes, &[], 4);
        assert!(none.rebuilds.is_empty());
        assert_eq!(none.keys.len(), keys.len() + 1);
    }

    #[test]
    fn empty_batch_is_a_pure_rebuild() {
        let keys = SortedArray::from_slice(&(0..100u32).collect::<Vec<_>>());
        let r = apply_batch(&keys, &[], &[], IndexKind::LevelCss);
        assert_eq!(r.keys.as_slice(), keys.as_slice());
        assert_eq!(r.index.search(50), Some(50));
    }
}
