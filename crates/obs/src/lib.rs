//! Observability substrate: a metric [`Registry`] of named counters,
//! gauges, and log-bucketed latency [`Histogram`]s, plus lightweight
//! [`Span`] tracing with parent/child timing trees.
//!
//! Like the rest of the workspace this crate is dependency-free: every
//! instrument is hand-rolled on the `ccindex_parallel::sync` facade, so
//! recording is lock-free (plain atomic adds), production builds use
//! `std` atomics, and `--cfg ccindex_check` builds run the same code
//! under the model checker's instrumented shims.
//!
//! # Shape
//!
//! * [`Counter`] — a monotonic tally (`transport.retries`).
//! * [`Gauge`] — a point-in-time level with a high-water mark
//!   (`serve.queue.depth`).
//! * [`Histogram`] — a log-bucketed latency distribution: values land
//!   in power-of-two buckets subdivided 8 ways (≤ 12.5% relative
//!   error), so `record` is two shifts and three atomic adds, and
//!   [`HistogramSnapshot::percentile`] answers p50/p90/p99 without
//!   storing samples. Snapshots merge associatively, so per-shard or
//!   per-thread histograms combine into one distribution.
//! * [`Span`] — a named timer that nests: children are timed closures
//!   or grafted subtrees (e.g. a remote server's breakdown), and
//!   [`Span::finish`] yields a [`SpanNode`] tree that renders as an
//!   indented latency report.
//!
//! Metric names are `dot.separated` lowercase (lint rule M1 enforces
//! the format and single registration); registration is get-or-create,
//! and a [`Registry`] built with [`Registry::disabled`] hands out
//! instruments whose recording paths are a single branch — the
//! metrics-off control the `figures slo` overhead assertion compares
//! against.
//!
//! # Export
//!
//! [`Registry::to_json`] emits a hand-rolled JSON snapshot (the
//! `BENCH_*.json` conventions); [`Registry::to_prometheus`] emits a
//! Prometheus-style text dump with dots mapped to underscores.

#![deny(unsafe_op_in_unsafe_fn)]

mod span;

pub use span::{format_ns, next_span_id, Span, SpanNode};

use std::collections::BTreeMap;

use ccindex_parallel::sync::atomic::{AtomicU64, Ordering};
use ccindex_parallel::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotonic event tally. Recording is one relaxed atomic add (or a
/// single branch when the owning registry is disabled).
#[derive(Debug)]
pub struct Counter {
    enabled: bool,
    value: AtomicU64,
}

impl Counter {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        if !self.enabled {
            return;
        }
        // ORDERING: Relaxed — a counter is an after-the-fact tally; no
        // other memory is published through it.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current tally.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — see `add`.
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A point-in-time level (queue depth, catalog generation) that also
/// tracks the highest level ever set.
#[derive(Debug)]
pub struct Gauge {
    enabled: bool,
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            value: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Set the current level, raising the high-water mark if `v`
    /// exceeds it.
    pub fn set(&self, v: u64) {
        if !self.enabled {
            return;
        }
        // ORDERING: Relaxed — gauges are sampled levels; readers
        // tolerate seeing the store slightly early or late.
        self.value.store(v, Ordering::Relaxed);
        // CAS-raise the high-water mark (the model-checker shims have
        // no fetch_max, and a relaxed max needs no ordering anyway).
        let hw = &self.high_water;
        // ORDERING: Relaxed — monotonic maximum, same tally argument.
        let mut seen = hw.load(Ordering::Relaxed);
        while v > seen {
            // ORDERING: Relaxed — as above; a lost race just rereads.
            match hw.compare_exchange_weak(seen, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — see `set`.
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> u64 {
        // ORDERING: Relaxed — see `set`.
        self.high_water.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Bucket subdivision: each power-of-two decade splits into `1 << 3`
/// sub-buckets, bounding the relative error of a bucket ceiling at
/// 1/8 = 12.5%.
const SUB_BITS: u32 = 3;

/// Total bucket count: values 0–7 get exact buckets, then 8 sub-buckets
/// per exponent 3..=63.
pub const BUCKETS: usize = 496;

/// The bucket index `value` lands in. Monotonic in `value`.
pub fn bucket_of(value: u64) -> usize {
    if value < 8 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (exp - SUB_BITS as usize)) & 7) as usize;
        ((exp - 2) << SUB_BITS) | sub
    }
}

/// The largest value that lands in `bucket` — what percentiles report,
/// so a reported quantile never understates the true sample.
pub fn bucket_ceiling(bucket: usize) -> u64 {
    if bucket < 8 {
        bucket as u64
    } else {
        let exp = (bucket >> SUB_BITS) + 2;
        let sub = (bucket & 7) as u128;
        // In u128: the top bucket's ceiling is 2^64 - 1.
        let ceiling = ((8 + sub + 1) << (exp - SUB_BITS as usize)) - 1;
        u64::try_from(ceiling).unwrap_or(u64::MAX)
    }
}

/// A log-bucketed latency distribution. `record` is lock-free (three
/// relaxed atomic adds); percentiles come from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    enabled: bool,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (a nanosecond latency, a window size, ...).
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        // ORDERING: Relaxed — every bucket is an independent tally;
        // readers take an instantaneous snapshot and tolerate records
        // still in flight.
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — as above.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copy the current bucket tallies out for percentile math.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ORDERING: Relaxed — see `record`; the snapshot is a
        // statistical read, not a synchronisation point.
        let read = |b: &AtomicU64| b.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self.buckets.iter().map(read).collect(),
            sum: read(&self.sum),
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Convenience for `snapshot().percentile(p)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// An owned copy of a histogram's bucket tallies: answers percentiles
/// and merges associatively across shards or threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty distribution (the merge identity).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `p`-th percentile (0 < p ≤ 100) as a bucket ceiling: the
    /// reported value is ≥ the exact order statistic and lands in the
    /// same bucket, so the relative overstatement is bounded by the
    /// bucket width (12.5%). Returns 0 on an empty distribution.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut cum = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_ceiling(bucket);
            }
        }
        bucket_ceiling(BUCKETS - 1)
    }

    /// Fold `other`'s tallies into this distribution (commutative and
    /// associative — bucket-wise addition; the sample sum wraps, same
    /// as the underlying atomic adds).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments. Registration takes the registry
/// lock once and hands back an `Arc` handle; recording through the
/// handle never locks.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Whether `name` follows the metric naming convention: lowercase
/// `dot.separated` segments of `[a-z0-9]` (lint rule M1 enforces the
/// same shape on source literals).
pub fn valid_metric_name(name: &str) -> bool {
    name.contains('.')
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
        })
}

impl Registry {
    /// A live registry: instruments record.
    pub fn new() -> Self {
        Self {
            enabled: true,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: instruments are handed out as usual but
    /// every recording path returns after one branch — the metrics-off
    /// control for overhead measurements.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instruments from this registry record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn map(&self) -> ccindex_parallel::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(&self, name: &str, make: impl FnOnce(bool) -> Metric) -> Metric {
        assert!(
            valid_metric_name(name),
            "metric name `{name}` is not dot.separated lowercase"
        );
        let mut map = self.map();
        let entry = map
            .entry(name.to_owned())
            .or_insert_with(|| make(self.enabled));
        match entry {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        }
    }

    /// Get or register the counter `name`. Panics if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, |on| Metric::Counter(Arc::new(Counter::new(on)))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`. Panics if `name` is already
    /// registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, |on| Metric::Gauge(Arc::new(Gauge::new(on)))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`. Panics if `name` is
    /// already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, |on| Metric::Histogram(Arc::new(Histogram::new(on)))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is already registered with a different kind"),
        }
    }

    /// Look up an already-registered counter without registering.
    pub fn find_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match self.map().get(name) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// Look up an already-registered gauge without registering.
    pub fn find_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        match self.map().get(name) {
            Some(Metric::Gauge(g)) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    /// Look up an already-registered histogram without registering.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.map().get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Registered metric names, in name order.
    pub fn names(&self) -> Vec<String> {
        self.map().keys().cloned().collect()
    }

    /// One JSON snapshot of every metric, in name order — same
    /// hand-rolled conventions as the `BENCH_*.json` reports:
    ///
    /// ```json
    /// {"metrics": [
    ///   {"kind": "counter", "name": "transport.retries", "value": 2},
    ///   {"kind": "gauge", "name": "serve.queue.depth", "value": 0, "high_water": 7},
    ///   {"kind": "histogram", "name": "serve.latency.ns",
    ///    "count": 100, "sum": 12345, "p50": 95, "p90": 191, "p99": 223}
    /// ]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\": [");
        for (i, (name, metric)) in self.map().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!(
                    "{{\"kind\": \"counter\", \"name\": {}, \"value\": {}}}",
                    json_string(name),
                    c.get()
                )),
                Metric::Gauge(g) => out.push_str(&format!(
                    "{{\"kind\": \"gauge\", \"name\": {}, \"value\": {}, \"high_water\": {}}}",
                    json_string(name),
                    g.get(),
                    g.high_water()
                )),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!(
                        "{{\"kind\": \"histogram\", \"name\": {}, \"count\": {}, \"sum\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        json_string(name),
                        snap.count(),
                        snap.sum(),
                        snap.percentile(50.0),
                        snap.percentile(90.0),
                        snap.percentile(99.0)
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// A Prometheus-style text dump: metric names with dots mapped to
    /// underscores, histograms rendered as summaries with p50/p90/p99
    /// quantile lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.map().iter() {
            let flat = name.replace('.', "_");
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {flat} counter\n{flat} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {flat} gauge\n{flat} {}\n", g.get()));
                    out.push_str(&format!(
                        "# TYPE {flat}_high_water gauge\n{flat}_high_water {}\n",
                        g.high_water()
                    ));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("# TYPE {flat} summary\n"));
                    for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
                        out.push_str(&format!(
                            "{flat}{{quantile=\"{q}\"}} {}\n",
                            snap.percentile(p)
                        ));
                    }
                    out.push_str(&format!("{flat}_sum {}\n", snap.sum()));
                    out.push_str(&format!("{flat}_count {}\n", snap.count()));
                }
            }
        }
        out
    }
}

/// Quote and escape `s` as a JSON string literal (same escaping the
/// bench reports use).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_tally() {
        let reg = Registry::new();
        let c = reg.counter("test.hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("test.depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("test.hits");
        let g = reg.gauge("test.depth");
        let h = reg.histogram("test.lat.ns");
        c.add(10);
        g.set(10);
        h.record(10);
        assert_eq!(c.get(), 0);
        assert_eq!(g.high_water(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registration_is_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("test.hits");
        reg.find_counter("test.hits").expect("registered").inc();
        assert_eq!(a.get(), 1);
        assert!(reg.find_counter("test.other").is_none());
        assert!(reg.find_gauge("test.hits").is_none());
        assert_eq!(reg.names(), vec!["test.hits".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn cross_kind_registration_panics() {
        let reg = Registry::new();
        let _ = reg.counter("test.hits");
        let _ = reg.gauge("test.hits");
    }

    #[test]
    #[should_panic(expected = "not dot.separated lowercase")]
    fn malformed_names_panic() {
        let _ = Registry::new().counter("NotValid");
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("serve.latency.ns"));
        assert!(valid_metric_name("a.b2"));
        assert!(!valid_metric_name("nodot"));
        assert!(!valid_metric_name("Upper.case"));
        assert!(!valid_metric_name("trailing.dot."));
        assert!(!valid_metric_name(".leading"));
        assert!(!valid_metric_name("dou..ble"));
        assert!(!valid_metric_name("da-sh.es"));
    }

    #[test]
    fn buckets_are_monotonic_and_ceilings_contain() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of must be monotonic");
            prev = b;
            assert!(bucket_ceiling(b) >= v, "ceiling contains the value");
            assert_eq!(bucket_of(bucket_ceiling(b)), b, "ceiling stays in bucket");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_ceiling(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_report_bucket_ceilings() {
        let reg = Registry::new();
        let h = reg.histogram("test.lat.ns");
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.sum(), 5050);
        // Exact order statistics: p50 = 50, p99 = 99; reported values
        // are the containing bucket's ceiling.
        assert_eq!(snap.percentile(50.0), bucket_ceiling(bucket_of(50)));
        assert_eq!(snap.percentile(99.0), bucket_ceiling(bucket_of(99)));
        assert!(snap.percentile(50.0) >= 50);
        assert!(snap.percentile(99.0) >= 99);
        assert_eq!(HistogramSnapshot::empty().percentile(50.0), 0);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let reg = Registry::new();
        let a = reg.histogram("test.a.ns");
        let b = reg.histogram("test.b.ns");
        for v in 0..50u64 {
            a.record(v);
        }
        for v in 50..100u64 {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.sum(), (0..100).sum::<u64>());
        assert_eq!(merged.percentile(99.0), bucket_ceiling(bucket_of(99)));
    }

    #[test]
    fn json_and_prometheus_dumps_cover_every_kind() {
        let reg = Registry::new();
        reg.counter("test.hits").add(3);
        reg.gauge("test.depth").set(2);
        reg.histogram("test.lat.ns").record(100);
        let json = reg.to_json();
        assert!(json.starts_with("{\"metrics\": ["), "{json}");
        assert!(json.contains("\"kind\": \"counter\", \"name\": \"test.hits\", \"value\": 3"));
        assert!(json.contains(
            "\"kind\": \"gauge\", \"name\": \"test.depth\", \"value\": 2, \"high_water\": 2"
        ));
        assert!(json.contains("\"kind\": \"histogram\", \"name\": \"test.lat.ns\", \"count\": 1"));
        let prom = reg.to_prometheus();
        assert!(
            prom.contains("# TYPE test_hits counter\ntest_hits 3\n"),
            "{prom}"
        );
        assert!(prom.contains("test_depth_high_water 2\n"));
        assert!(prom.contains("test_lat_ns{quantile=\"0.99\"}"));
        assert!(prom.contains("test_lat_ns_count 1\n"));
    }
}
