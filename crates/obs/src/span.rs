//! Span tracing: named timers that nest into a parent/child tree.
//!
//! A [`Span`] is live — it holds a start [`Instant`] and accumulates
//! children; [`Span::finish`] freezes it into a [`SpanNode`], the
//! plain-data tree that crosses the wire (the codec lives in
//! `ccindex-wire`) and renders as an indented latency report:
//!
//! ```text
//! query 1.23ms
//!   shard0:9001 1.10ms
//!     decode 10.4µs
//!     execute 1.02ms
//! ```
//!
//! Span ids are process-global `u64`s: a client stamps its root span's
//! id into the request frame, the server echoes a server-side subtree
//! for that id, and the client grafts it under its own node — one
//! cross-process tree without any clock synchronisation (each side
//! reports only durations it measured itself).

use ccindex_parallel::sync::atomic::{AtomicU64, Ordering};
use ccindex_parallel::sync::Instant;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique span id (never 0 — 0 on the wire means "no
/// trace requested").
pub fn next_span_id() -> u64 {
    // ORDERING: Relaxed — ids only need uniqueness, not ordering.
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// One finished, named timing with nested children — the plain-data
/// form a [`Span`] freezes into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// What was timed.
    pub name: String,
    /// Wall-clock duration, in nanoseconds.
    pub elapsed_ns: u64,
    /// Nested timings, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf node.
    pub fn leaf(name: impl Into<String>, elapsed_ns: u64) -> Self {
        Self {
            name: name.into(),
            elapsed_ns,
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first node named `name` (self
    /// included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Render the tree as an indented latency report, one node per
    /// line, durations humanised.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push(' ');
        out.push_str(&format_ns(self.elapsed_ns));
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// A live named timer. Create a root with [`Span::root`], time nested
/// work with [`Span::time`] or [`Span::adopt`], then [`Span::finish`]
/// into a [`SpanNode`].
#[derive(Debug)]
pub struct Span {
    name: String,
    id: u64,
    start: Instant,
    children: Vec<SpanNode>,
}

impl Span {
    /// Start a root span with a fresh process-unique id.
    pub fn root(name: impl Into<String>) -> Self {
        Self::with_id(name, next_span_id())
    }

    /// Start a span under an existing trace id (the server side of a
    /// propagated trace).
    pub fn with_id(name: impl Into<String>, id: u64) -> Self {
        Self {
            name: name.into(),
            id,
            start: Instant::now(),
            children: Vec::new(),
        }
    }

    /// The trace id this span belongs to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start a child span sharing this span's trace id. Finish it and
    /// [`Span::adopt`] the node to attach it.
    pub fn child(&self, name: impl Into<String>) -> Span {
        Span::with_id(name, self.id)
    }

    /// Time `f` as a leaf child.
    pub fn time<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.children
            .push(SpanNode::leaf(name, duration_ns(&start)));
        out
    }

    /// Attach a finished subtree (a child span's node, or a remote
    /// server's breakdown grafted under this client-side span).
    pub fn adopt(&mut self, node: SpanNode) {
        self.children.push(node);
    }

    /// Freeze into a [`SpanNode`], stamping the elapsed time.
    pub fn finish(self) -> SpanNode {
        SpanNode {
            name: self.name,
            elapsed_ns: duration_ns(&self.start),
            children: self.children,
        }
    }
}

fn duration_ns(start: &Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Humanise a nanosecond duration (`850ns`, `10.4µs`, `1.23ms`,
/// `2.500s`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let root = Span::root("q");
        assert_eq!(root.child("c").id(), root.id());
    }

    #[test]
    fn finish_builds_a_tree() {
        let mut span = Span::root("query");
        let answer = span.time("probe", || 42);
        assert_eq!(answer, 42);
        let mut remote = span.child("shard0");
        remote.time("execute", || ());
        span.adopt(remote.finish());
        let node = span.finish();
        assert_eq!(node.name, "query");
        assert_eq!(node.children.len(), 2);
        assert!(node.find("execute").is_some());
        assert!(node.find("missing").is_none());
        // Children completed within the root's lifetime.
        assert!(node
            .children
            .iter()
            .all(|c| c.elapsed_ns <= node.elapsed_ns));
    }

    #[test]
    fn render_indents_children() {
        let node = SpanNode {
            name: "root".into(),
            elapsed_ns: 2_000_000,
            children: vec![SpanNode::leaf("leaf", 1_500)],
        };
        assert_eq!(node.render(), "root 2.00ms\n  leaf 1.5µs\n");
    }

    #[test]
    fn durations_humanise() {
        assert_eq!(format_ns(850), "850ns");
        assert_eq!(format_ns(10_400), "10.4µs");
        assert_eq!(format_ns(1_230_000), "1.23ms");
        assert_eq!(format_ns(2_500_000_000), "2.500s");
    }
}
