//! Property coverage for the log-bucketed histogram: percentiles
//! against an exact sorted-sample oracle, and bucket-wise merge
//! algebra (associativity/commutativity across shards).

use ccindex_obs::{bucket_of, HistogramSnapshot, Registry};
use proptest::collection::vec;
use proptest::prelude::*;

/// The exact order statistic the histogram approximates: the
/// `ceil(p/100 * n)`-th smallest sample (1-based), clamped to [1, n].
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p / 100.0) * n as f64).ceil() as u64;
    sorted[(rank.clamp(1, n) - 1) as usize]
}

fn record_all(reg: &Registry, name: &str, samples: &[u64]) -> HistogramSnapshot {
    let h = reg.histogram(name);
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    /// For every percentile, the histogram reports the ceiling of the
    /// bucket holding the exact order statistic: never below the true
    /// sample, and never from a different bucket (so the relative
    /// overstatement is bounded by the 12.5% bucket width).
    #[test]
    fn percentiles_bound_the_exact_oracle(
        shifted in vec((0u32..64, 0u64..u64::MAX), 1..100),
        p_raw in 1u64..=100,
    ) {
        // Spread sample magnitudes across the full u64 range.
        let samples: Vec<u64> = shifted.iter().map(|&(s, v)| v >> s).collect();
        let reg = Registry::new();
        let snap = record_all(&reg, "test.lat.ns", &samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [50.0, 90.0, 99.0, p_raw as f64] {
            let exact = exact_percentile(&sorted, p);
            let reported = snap.percentile(p);
            prop_assert!(reported >= exact, "p{p}: reported {reported} < exact {exact}");
            prop_assert_eq!(
                bucket_of(reported), bucket_of(exact),
                "p{}: reported {} left the exact sample's bucket", p, exact
            );
        }
    }

    /// Merging is bucket-wise addition: associative, commutative, and
    /// equal to recording every sample into one histogram.
    #[test]
    fn merge_is_associative_and_order_free(
        a in vec((0u32..64, 0u64..u64::MAX), 0..50),
        b in vec((0u32..64, 0u64..u64::MAX), 0..50),
        c in vec((0u32..64, 0u64..u64::MAX), 0..50),
    ) {
        let lower = |v: &[(u32, u64)]| v.iter().map(|&(s, x)| x >> s).collect::<Vec<u64>>();
        let (a, b, c) = (lower(&a), lower(&b), lower(&c));
        let reg = Registry::new();
        let (sa, sb, sc) = (
            record_all(&reg, "test.a.ns", &a),
            record_all(&reg, "test.b.ns", &b),
            record_all(&reg, "test.c.ns", &c),
        );

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        // c ⊕ b ⊕ a (commuted) and one flat histogram of everything.
        let mut commuted = sc.clone();
        commuted.merge(&sb);
        commuted.merge(&sa);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let flat = record_all(&reg, "test.all.ns", &all);
        prop_assert_eq!(&left, &commuted);
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);

        // The identity element leaves the distribution untouched.
        let mut with_empty = left.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &left);
    }
}
