//! A small hand-rolled scoped worker pool for partitioned execution.
//!
//! The decision-support workloads this workspace targets are
//! embarrassingly parallel across probe/RID partitions: a batched index
//! descent, an indexed nested-loop join, or a grouped aggregation can be
//! split into contiguous chunks, each answered independently, and stitched
//! back together in partition order. [`WorkerPool`] is exactly that
//! capability and nothing more — `std::thread::scope` workers pulling job
//! indexes from a shared atomic counter, so uneven partitions
//! self-balance, with results returned **in job order** so every parallel
//! operator built on top is deterministic and byte-identical to its
//! sequential counterpart.
//!
//! No dependencies (the workspace builds offline), no unsafe, no
//! channels: the scope guarantees worker lifetimes, the counter hands out
//! work, and each worker returns its `(job index, result)` pairs through
//! the join handle.
//!
//! Every primitive here is named through the [`sync`] facade rather than
//! `std::sync` directly, so the model-check suites in `crates/check`
//! explore this exact code under exhaustive scheduling (see the facade
//! docs); production builds still compile to the plain std types.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod sync;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{thread, Condvar, Instant, Mutex};
use std::collections::VecDeque;
use std::ops::Range;

/// Number of worker threads the host can usefully run — the meaning of
/// "use every core" (`threads == 0`) in [`WorkerPool::new`].
pub fn available_threads() -> usize {
    thread::available_parallelism()
}

/// Fewest items a worker must receive for the pool's per-call spawn
/// overhead (~10 µs) to be amortised away. The engine's adaptive thread
/// picker ([`adaptive_threads`]) hands out one worker per this many
/// items, so tiny probe sets run inline and never pay the spawns.
pub const ADAPTIVE_ITEMS_PER_WORKER: usize = 4096;

/// Pick a worker count for `items` work items: one worker per
/// [`ADAPTIVE_ITEMS_PER_WORKER`] items, clamped to `[1, available
/// cores]`. This is what `threads == 0` ("auto") means at the engine
/// layer — a 50-probe batch resolves to 1 (inline, no spawn overhead), a
/// million-RID join stage resolves to every core. Note [`WorkerPool::new`]
/// itself keeps the raw meaning of `0` = one worker per core; adaptivity
/// is a policy applied by callers that know their item counts.
pub fn adaptive_threads(items: usize) -> usize {
    (items / ADAPTIVE_ITEMS_PER_WORKER).clamp(1, available_threads())
}

/// Split `len` items into at most `parts` contiguous, near-equal,
/// non-empty ranges (fewer when `len < parts`). The concatenation of the
/// ranges is exactly `0..len`, so a partitioned operator that maps each
/// range and concatenates the results preserves item order.
pub fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts; // the first `extra` parts get one more item
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// A scoped worker pool of a fixed thread count.
///
/// The pool owns no threads between calls — each [`WorkerPool::run`]
/// opens a `std::thread::scope`, spawns up to `threads - 1` workers (the
/// calling thread is worker zero), drains the job queue, and joins. That
/// keeps the pool trivially correct (no shutdown protocol, no poisoned
/// state) at the cost of ~10 µs of spawn overhead per call, which the
/// hundred-thousand-probe batches it exists for amortise away.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers; `0` means one per available core and
    /// any other value is used as given (`1` = run inline, no spawns).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// The worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` independent jobs, `f(i)` computing job `i`, and return
    /// the results **in job order**. Workers pull job indexes from a
    /// shared counter, so long jobs don't serialise short ones behind
    /// them. With one worker (or zero/one jobs) everything runs inline on
    /// the calling thread — the sequential fallback every degenerate
    /// configuration takes.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let worker = || {
            let mut done: Vec<(usize, R)> = Vec::new();
            loop {
                // ORDERING: Relaxed — the counter only hands out unique
                // job indexes (the RMW's atomicity does that alone); the
                // results travel through the scope join, which is the
                // synchronising edge. Verified by the model-check suite
                // (crates/check/tests/model_pool.rs).
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                done.push((i, f(i)));
            }
            done
        };
        let mut tagged: Vec<(usize, R)> = thread::scope(|scope| {
            let handles: Vec<_> = (1..workers).map(|_| scope.spawn(worker)).collect();
            let mut all = worker();
            for h in handles {
                all.extend(h.join().expect("worker panicked"));
            }
            all
        });
        debug_assert_eq!(tagged.len(), jobs);
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Partition `items` into one contiguous chunk per worker, map each
    /// chunk with `f`, and return the per-chunk results in slice order.
    pub fn map_chunks<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        let ranges = partition(items.len(), self.threads);
        self.run(ranges.len(), |i| f(&items[ranges[i].clone()]))
    }

    /// As [`WorkerPool::map_chunks`] with `Vec` results, concatenated in
    /// slice order — so for any `f` that maps each item independently the
    /// output is identical to `f(items)` run sequentially.
    pub fn flat_map_chunks<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a [T]) -> Vec<R> + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return f(items);
        }
        let mut out = Vec::with_capacity(items.len());
        for chunk in self.map_chunks(items, f) {
            out.extend(chunk);
        }
        out
    }
}

impl Default for WorkerPool {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(0)
    }
}

// ---------------------------------------------------------------------
// Blocking hand-off
// ---------------------------------------------------------------------

/// A blocking FIFO hand-off between producers and a consumer — the
/// accumulator side of a batch-formation window: producers [`push`]
/// items from any thread, the consumer [`pop`]s the first item of a
/// window (blocking until one arrives) and then drains follow-ups with
/// [`pop_deadline`] until the window's size or time bound is hit.
///
/// Built on one `Mutex<VecDeque>` plus a `Condvar` — the same
/// no-dependencies, no-unsafe diet as [`WorkerPool`]. Closing the queue
/// ([`close`]) wakes every blocked consumer; pops then drain whatever
/// remains and return `None`, so a consumer loop terminates cleanly
/// without a separate shutdown protocol.
///
/// [`push`]: BlockingQueue::push
/// [`pop`]: BlockingQueue::pop
/// [`pop_deadline`]: BlockingQueue::pop_deadline
/// [`close`]: BlockingQueue::close
#[derive(Debug)]
pub struct BlockingQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for BlockingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BlockingQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Append `item` and wake one blocked consumer. A closed queue
    /// accepts nothing: the item comes straight back as `Err` so the
    /// producer can fail its caller instead of losing work silently.
    pub fn push(&self, item: T) -> std::result::Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Block until an item arrives and take it; `None` once the queue is
    /// closed **and** drained (items pushed before the close still come
    /// out, in order).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock poisoned");
        }
    }

    /// As [`BlockingQueue::pop`], but give up at `deadline`: `None`
    /// means the deadline passed (or the queue closed) with nothing
    /// available — how a batch window's *time* bound is enforced while
    /// its *size* bound still has room.
    ///
    /// Spurious-wakeup hardened: every wake — notified, timed out, or
    /// spurious — re-runs the full predicate (item? closed? time
    /// remaining?) and re-waits with the *remaining* window, never the
    /// original one. The `timed_out()` flag is deliberately ignored: a
    /// wait can time out just as an item lands (the item must still be
    /// taken), and a spurious wake near the deadline must not be
    /// mistaken for expiry. Explored under injected spurious wakeups by
    /// crates/check/tests/model_queue.rs.
    pub fn pop_deadline(&self, deadline: Instant) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) = self
                .available
                .wait_timeout(state, deadline - now)
                .expect("queue lock poisoned");
            state = s;
        }
    }

    /// Close the queue: reject further pushes and wake every blocked
    /// consumer. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether [`BlockingQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Items currently queued (racy by nature; for tests and stats).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn partition_covers_exactly_once() {
        for len in [0usize, 1, 2, 7, 8, 9, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let ranges = partition(len, parts);
                let mut covered = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, covered, "len={len} parts={parts}");
                    assert!(!r.is_empty(), "len={len} parts={parts}");
                    covered = r.end;
                }
                assert_eq!(covered, len, "len={len} parts={parts}");
                assert!(ranges.len() <= parts.max(1));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "len={len} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn run_returns_results_in_job_order() {
        for threads in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let got = pool.run(100, |i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_executes_every_job_exactly_once() {
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.run(hits.len(), |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn flat_map_chunks_equals_sequential() {
        let items: Vec<u32> = (0..1234).collect();
        let seq: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for threads in [0usize, 1, 2, 5, 16] {
            let pool = WorkerPool::new(threads);
            let par = pool.flat_map_chunks(&items, |chunk| {
                chunk.iter().map(|&x| u64::from(x) * 3).collect()
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_all_cores_and_empty_input_is_fine() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.threads(), available_threads());
        assert!(pool.run(0, |i| i).is_empty());
        let empty: &[u32] = &[];
        assert!(pool.flat_map_chunks(empty, |c| c.to_vec()).is_empty());
        assert!(partition(0, 8).is_empty());
    }

    #[test]
    fn adaptive_threads_scales_with_items() {
        // Tiny inputs run inline; growth is linear in items and capped by
        // the core count.
        assert_eq!(adaptive_threads(0), 1);
        assert_eq!(adaptive_threads(ADAPTIVE_ITEMS_PER_WORKER - 1), 1);
        let cores = available_threads();
        assert_eq!(
            adaptive_threads(ADAPTIVE_ITEMS_PER_WORKER * 2),
            2.clamp(1, cores)
        );
        assert_eq!(adaptive_threads(usize::MAX / 2), cores);
        for items in [0usize, 1, 5000, 100_000, 10_000_000] {
            let t = adaptive_threads(items);
            assert!((1..=cores).contains(&t), "items={items} -> {t}");
        }
    }

    #[test]
    fn blocking_queue_is_fifo_across_threads() {
        let q = BlockingQueue::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100u32 {
                    q.push(i).expect("open");
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(i) = q.pop() {
                got.push(i);
            }
            let expect: Vec<u32> = (0..100).collect();
            assert_eq!(got, expect, "single-producer order is preserved");
        });
        // Closed and drained: further pops return None, pushes bounce.
        assert!(q.pop().is_none());
        assert!(q.is_closed());
        assert_eq!(q.push(7), Err(7));
    }

    #[test]
    fn blocking_queue_close_wakes_blocked_consumers() {
        let q: BlockingQueue<u32> = BlockingQueue::new();
        std::thread::scope(|s| {
            let popper = s.spawn(|| q.pop());
            // Give the popper a moment to block, then close.
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(popper.join().expect("no panic"), None);
        });
    }

    #[test]
    fn blocking_queue_deadline_pop_times_out_empty_handed() {
        let q: BlockingQueue<u32> = BlockingQueue::new();
        let t0 = Instant::now();
        let deadline = t0 + std::time::Duration::from_millis(20);
        assert_eq!(q.pop_deadline(deadline), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        // An already-queued item comes back instantly, even with a
        // deadline in the past (size bound beats time bound).
        q.push(5).expect("open");
        assert_eq!(q.pop_deadline(Instant::now()), Some(5));
        assert!(q.is_empty());
    }

    #[test]
    fn uneven_jobs_self_balance() {
        // Jobs of wildly different sizes still come back in order.
        let pool = WorkerPool::new(4);
        let got = pool.run(17, |i| {
            let work = if i % 5 == 0 { 20_000 } else { 10 };
            (0..work).map(|x| x as u64).sum::<u64>() ^ i as u64
        });
        let expect: Vec<u64> = (0..17)
            .map(|i| {
                let work = if i % 5 == 0 { 20_000 } else { 10 };
                (0..work).map(|x| x as u64).sum::<u64>() ^ i as u64
            })
            .collect();
        assert_eq!(got, expect);
    }
}
