//! The sync facade: the one place the serving stack names its
//! synchronisation primitives.
//!
//! Production builds re-export the `std` types unchanged — zero cost,
//! zero behavior change. Under `RUSTFLAGS="--cfg ccindex_check"` the
//! same names resolve to the `check` crate's instrumented shims, so the
//! model-check suites in `crates/check/tests/` explore every bounded
//! interleaving of the *real* `SwapSlot`, `BlockingQueue`, and
//! `WorkerPool` code — not of a re-implementation that could drift.
//!
//! Code that wants to be model-checkable imports from here instead of
//! `std::sync`/`std::time`/`std::thread`:
//!
//! ```
//! use ccindex_parallel::sync::{Arc, Mutex, Condvar, Instant};
//! use ccindex_parallel::sync::atomic::{AtomicU64, Ordering};
//! use ccindex_parallel::sync::thread;
//! # let _ = (Arc::new(Mutex::new(0u64)), Condvar::new(), Instant::now());
//! # let _ = AtomicU64::new(0).load(Ordering::SeqCst);
//! # thread::scope(|_s| {});
//! ```
//!
//! `Ordering` is always the real `std::sync::atomic::Ordering` (the
//! shims take it as-is), so ordering choices written against the facade
//! mean exactly what they say in both modes.

#[cfg(not(ccindex_check))]
mod facade {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::time::Instant;

    /// The real atomics.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// The real threads.
    pub mod thread {
        pub use std::thread::{scope, spawn, JoinHandle, Scope, ScopedJoinHandle};

        /// Worker threads the host can usefully run (the facade's
        /// always-successful form of `std::thread::available_parallelism`).
        pub fn available_parallelism() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(ccindex_check)]
mod facade {
    pub use check::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use check::time::Instant;

    /// The model-checked atomics (`Ordering` is still std's enum).
    pub mod atomic {
        pub use check::sync::{AtomicBool, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }

    /// The model-checked threads.
    pub mod thread {
        pub use check::thread::{scope, spawn, JoinHandle, Scope, ScopedJoinHandle};

        /// Fixed at 2 under the checker so models stay deterministic
        /// and the schedule space stays small.
        pub fn available_parallelism() -> usize {
            check::thread::available_parallelism()
        }
    }
}

pub use facade::*;
