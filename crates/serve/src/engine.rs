//! The engine surface a [`BatchServer`](crate::BatchServer) fronts:
//! anything that can answer coalesced probe batches and replay an owned
//! [`QuerySpec`] — implemented for the unsharded
//! [`Database`](mmdb::Database), the scatter-gather
//! [`ShardedDatabase`](ccindex_shard::ShardedDatabase), and their pinned
//! [`Snapshot`]/[`ShardedSnapshot`] generations, so one serving
//! front-end covers both catalogs, live or pinned.
//!
//! [`ServeSource`] is how the server gets those snapshots: a source
//! hands out one pinned generation per batch-formation window
//! ([`ServeSource::pin`]) and reports the commit-slot counters
//! ([`ServeSource::observe`]) that
//! [`ServeStats`](crate::ServeStats) surfaces.

use crate::request::QuerySpec;
use ccindex_shard::{ShardedDatabase, ShardedHandle, ShardedSnapshot, ShardedState};
use mmdb::{CatalogState, Database, DatabaseHandle, ExecOptions, Result, ResultRows, Value};

/// A query engine the batch-forming server can front. `Sync` because the
/// server's clients run on their own threads while the serving thread
/// executes windows against the shared engine reference.
pub trait ServeEngine: Sync {
    /// The engine's execution knobs — the server sizes its shared
    /// [`WorkerPool`](ccindex_parallel::WorkerPool) from `threads`.
    fn exec_options(&self) -> ExecOptions;

    /// One batched answer for many equality probes on `table.column`:
    /// element `i` is the ascending RID set for `values[i]`.
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>>;

    /// One batched answer for many inclusive range probes on
    /// `table.column`: element `i` is the ascending RID set for
    /// `ranges[i]`.
    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>>;

    /// Replay an owned query spec through the engine's builder.
    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows>;
}

/// Replay a [`QuerySpec`] through either engine's builder — `Query` and
/// `ShardedQuery` expose the same consuming surface but share no trait,
/// so one macro keeps the two `run_spec` impls from drifting apart (a
/// clause added to `QuerySpec` is threaded through both, or neither).
macro_rules! replay_spec {
    ($query:expr, $spec:expr) => {{
        let mut q = $query;
        for f in &$spec.filters {
            q = q.filter(f.clone());
        }
        if let Some((inner, cond)) = &$spec.join {
            q = q.join(inner, cond.clone());
        }
        if let Some((column, agg)) = &$spec.group {
            q = q.group_by(column, agg.clone());
        }
        if let Some(kind) = $spec.forced_kind {
            q = q.using(kind);
        }
        if let Some(exec) = $spec.exec {
            q = q.exec(exec);
        }
        Ok(q.run()?.rows().clone())
    }};
}

impl ServeEngine for Database {
    fn exec_options(&self) -> ExecOptions {
        Database::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        Database::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        Database::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(self.query(spec.table.clone()), spec)
    }
}

// The snapshot impls below call through the state type explicitly
// (`CatalogState::point_probe_batch(self, ..)` rather than
// `self.point_probe_batch(..)`): a pinned guard `Deref`s to its state,
// so the explicit path coerces to the inherent method — the unqualified
// call would resolve to this trait method and recurse forever.

impl ServeEngine for mmdb::Snapshot {
    fn exec_options(&self) -> ExecOptions {
        CatalogState::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        CatalogState::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        CatalogState::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(CatalogState::query(self, spec.table.clone()), spec)
    }
}

impl ServeEngine for ShardedSnapshot {
    fn exec_options(&self) -> ExecOptions {
        ShardedState::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedState::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedState::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(ShardedState::query(self, spec.table.clone()), spec)
    }
}

impl ServeEngine for ShardedDatabase {
    fn exec_options(&self) -> ExecOptions {
        ShardedDatabase::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedDatabase::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedDatabase::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(self.query(spec.table.clone()), spec)
    }
}

// ---------------------------------------------------------------------
// Snapshot sources
// ---------------------------------------------------------------------

/// The commit-slot counters of a [`ServeSource`], read at one instant:
/// the observability [`ServeStats`](crate::ServeStats) carries out of a
/// serving session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Generation number of the currently committed catalog state.
    pub generation: u64,
    /// Generations committed since the catalog was created.
    pub swaps: u64,
    /// Pinned snapshots alive right now, across all generations.
    pub pinned: usize,
}

/// Where a [`BatchServer`](crate::BatchServer) gets the immutable
/// catalog generation each batch-formation window executes against.
///
/// A source pins one snapshot per window ([`ServeSource::pin`]); the
/// window's coalesced probes then run entirely against that pinned
/// generation — zero locks on the probe path, and a writer committing
/// mid-window never changes (or tears) the window's answers. Implemented
/// for the live catalogs ([`Database`], [`ShardedDatabase`]) and for
/// their `Send + Sync` reader handles ([`DatabaseHandle`],
/// [`ShardedHandle`]) — the handle impls are what let a serving session
/// run on one thread while the catalog's owner keeps `&mut` access for
/// commits on another.
pub trait ServeSource: Sync {
    /// The pinned generation type a window executes against.
    type Pinned: ServeEngine;

    /// Pin the current committed generation.
    fn pin(&self) -> Self::Pinned;

    /// The commit slot's counters right now.
    fn observe(&self) -> SnapshotInfo;
}

impl ServeSource for Database {
    type Pinned = mmdb::Snapshot;

    fn pin(&self) -> mmdb::Snapshot {
        self.snapshot()
    }

    fn observe(&self) -> SnapshotInfo {
        SnapshotInfo {
            generation: self.generation(),
            swaps: self.swap_count(),
            pinned: self.pinned_snapshots(),
        }
    }
}

impl ServeSource for DatabaseHandle {
    type Pinned = mmdb::Snapshot;

    fn pin(&self) -> mmdb::Snapshot {
        self.snapshot()
    }

    fn observe(&self) -> SnapshotInfo {
        SnapshotInfo {
            generation: self.generation(),
            swaps: self.swaps(),
            pinned: self.pinned(),
        }
    }
}

impl ServeSource for ShardedDatabase {
    type Pinned = ShardedSnapshot;

    fn pin(&self) -> ShardedSnapshot {
        self.snapshot()
    }

    fn observe(&self) -> SnapshotInfo {
        SnapshotInfo {
            generation: self.generation(),
            swaps: self.swap_count(),
            pinned: self.pinned_snapshots(),
        }
    }
}

impl ServeSource for ShardedHandle {
    type Pinned = ShardedSnapshot;

    fn pin(&self) -> ShardedSnapshot {
        self.snapshot()
    }

    fn observe(&self) -> SnapshotInfo {
        SnapshotInfo {
            generation: self.generation(),
            swaps: self.swaps(),
            pinned: self.pinned(),
        }
    }
}
