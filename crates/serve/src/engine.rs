//! The engine surface a [`BatchServer`](crate::BatchServer) fronts:
//! anything that can answer coalesced probe batches and replay an owned
//! [`QuerySpec`] — implemented for both the unsharded
//! [`Database`](mmdb::Database) and the scatter-gather
//! [`ShardedDatabase`](ccindex_shard::ShardedDatabase), so one serving
//! front-end covers both catalogs.

use crate::request::QuerySpec;
use ccindex_shard::ShardedDatabase;
use mmdb::{Database, ExecOptions, Result, ResultRows, Value};

/// A query engine the batch-forming server can front. `Sync` because the
/// server's clients run on their own threads while the serving thread
/// executes windows against the shared engine reference.
pub trait ServeEngine: Sync {
    /// The engine's execution knobs — the server sizes its shared
    /// [`WorkerPool`](ccindex_parallel::WorkerPool) from `threads`.
    fn exec_options(&self) -> ExecOptions;

    /// One batched answer for many equality probes on `table.column`:
    /// element `i` is the ascending RID set for `values[i]`.
    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>>;

    /// One batched answer for many inclusive range probes on
    /// `table.column`: element `i` is the ascending RID set for
    /// `ranges[i]`.
    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>>;

    /// Replay an owned query spec through the engine's builder.
    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows>;
}

/// Replay a [`QuerySpec`] through either engine's builder — `Query` and
/// `ShardedQuery` expose the same consuming surface but share no trait,
/// so one macro keeps the two `run_spec` impls from drifting apart (a
/// clause added to `QuerySpec` is threaded through both, or neither).
macro_rules! replay_spec {
    ($query:expr, $spec:expr) => {{
        let mut q = $query;
        for f in &$spec.filters {
            q = q.filter(f.clone());
        }
        if let Some((inner, cond)) = &$spec.join {
            q = q.join(inner, cond.clone());
        }
        if let Some((column, agg)) = &$spec.group {
            q = q.group_by(column, agg.clone());
        }
        if let Some(kind) = $spec.forced_kind {
            q = q.using(kind);
        }
        Ok(q.run()?.rows().clone())
    }};
}

impl ServeEngine for Database {
    fn exec_options(&self) -> ExecOptions {
        Database::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        Database::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        Database::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(self.query(spec.table.clone()), spec)
    }
}

impl ServeEngine for ShardedDatabase {
    fn exec_options(&self) -> ExecOptions {
        ShardedDatabase::exec_options(self)
    }

    fn point_probe_batch(
        &self,
        table: &str,
        column: &str,
        values: &[Value],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedDatabase::point_probe_batch(self, table, column, values)
    }

    fn range_probe_batch(
        &self,
        table: &str,
        column: &str,
        ranges: &[(Value, Value)],
    ) -> Result<Vec<Vec<u32>>> {
        ShardedDatabase::range_probe_batch(self, table, column, ranges)
    }

    fn run_spec(&self, spec: &QuerySpec) -> Result<ResultRows> {
        replay_spec!(self.query(spec.table.clone()), spec)
    }
}
