//! # ccindex-serve — batch-formation serving front-end
//!
//! RaoR99's CSS-tree numbers assume a **batch-shaped consumer**: the
//! interleaved multi-lane descent and the partitioned operators only pay
//! off when many probes travel together. Inside one query that batch
//! exists naturally (a join streams thousands of probes); across
//! *clients* it does not — a served system sees N concurrent requests of
//! one probe each. This crate closes that gap: it **forms** the batches,
//! turning concurrent client traffic into the engine's native batch
//! shapes.
//!
//! The pieces:
//!
//! * [`Request`]/[`QuerySpec`] — owned request values (point probe,
//!   range probe, or a full query-builder plan) that cross threads
//!   without borrowing a catalog;
//! * [`ServeEngine`] — the front-able engine surface, implemented for
//!   [`Database`](mmdb::Database) and
//!   [`ShardedDatabase`](ccindex_shard::ShardedDatabase) (sharded
//!   requests scatter through the existing routing);
//! * [`BatchServer`] — accumulates submissions in a **batch-formation
//!   window** (size-bound + time-bound, [`ServeOptions`] with
//!   `CCINDEX_BATCH_MAX`/`CCINDEX_BATCH_WAIT_US` env defaults),
//!   coalesces same-`table.column` probes into single
//!   `search_batch`/`lower_bound_batch` engine calls, executes the
//!   window's jobs over the shared
//!   [`WorkerPool`](ccindex_parallel::WorkerPool), and demultiplexes
//!   per-client answers in submission order;
//! * [`Client`]/[`Pending`] — the cheap handles clients submit through
//!   (synchronous [`call`](Client::call) or pipelined
//!   [`submit`](Client::submit));
//! * [`ShardServer`] — the network entry point: one shard's catalog
//!   behind a `TcpListener` speaking the `ccindex-wire` protocol, the
//!   server half of the remote shards a
//!   [`ShardedDatabase::connect`](ccindex_shard::ShardedDatabase::connect)
//!   coordinator scatters to.
//!
//! Answers are **byte-identical** to executing every request alone, for
//! any window bounds, client count, and either engine — the property
//! `tests/serve_equivalence.rs` asserts and `figures serve` sweeps
//! against the one-probe-at-a-time baseline (`batch_max == 1`).
//!
//! ```
//! use ccindex_serve::{BatchServer, Request, ServeOptions};
//! use mmdb::{Database, IndexKind, ResultRows, TableBuilder};
//!
//! let mut db = Database::new();
//! db.register(
//!     TableBuilder::new("sales")
//!         .int_column("amount", [10, 40, 25, 99])
//!         .build()?,
//! )?;
//! db.create_index("sales", "amount", IndexKind::FullCss)?;
//!
//! // 4 concurrent clients, each one point probe; compatible probes
//! // coalesce into a single batched index descent.
//! let server = BatchServer::with_options(&db, ServeOptions::batch_max(16));
//! let (answers, stats) = server.serve_concurrent(4, |i, client| {
//!     client.call(Request::point("sales", "amount", [10i64, 40, 25, 7][i]))
//! });
//! assert_eq!(answers[1], Ok(ResultRows::Rids(vec![1]))); // amount = 40
//! assert_eq!(answers[3], Ok(ResultRows::Rids(vec![]))); // no row
//! assert_eq!(stats.requests, 4);
//! # Ok::<(), mmdb::MmdbError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod engine;
mod net;
mod request;
mod server;

pub use engine::{ServeEngine, ServeSource, SnapshotInfo};
pub use net::ShardServer;
pub use request::{QuerySpec, Request};
pub use server::{BatchServer, Client, Pending, ServeOptions, ServeStats};

#[cfg(test)]
mod tests {
    use super::*;
    use ccindex_shard::ShardedDatabase;
    use mmdb::{
        between, count, eq, on, sum, Database, IndexKind, MmdbError, ResultRows, TableBuilder,
        Value,
    };
    use std::time::Duration;

    fn catalog() -> Database {
        let mut db = Database::new();
        db.register(
            TableBuilder::new("sales")
                .int_column("cust", (0..60).map(|i| (i * 7) % 20))
                .int_column("amount", (0..60).map(|i| (i * 13) % 100))
                .build()
                .expect("equal columns"),
        )
        .unwrap();
        db.register(
            TableBuilder::new("customers")
                .int_column("id", 0..20i64)
                .str_column("region", (0..20).map(|i| ["e", "w"][i % 2]))
                .build()
                .expect("equal columns"),
        )
        .unwrap();
        db.create_index("sales", "cust", IndexKind::Hash).unwrap();
        db.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        db.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
        db
    }

    fn requests() -> Vec<Request> {
        vec![
            Request::point("sales", "cust", 3i64),
            Request::point("sales", "cust", 14i64),
            Request::range("sales", "amount", 20i64, 60i64),
            Request::point("sales", "cust", 3i64), // duplicate value
            Request::range("sales", "amount", 60i64, 20i64), // inverted
            Request::query(
                QuerySpec::table("sales")
                    .filter(between("amount", 10, 90))
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount")),
            ),
            Request::point("sales", "cust", 999i64), // misses
        ]
    }

    /// One answer per request, equal to running each request alone.
    fn reference(db: &Database) -> Vec<Result<ResultRows, MmdbError>> {
        requests()
            .iter()
            .map(|r| match r {
                Request::Point {
                    table,
                    column,
                    value,
                } => db
                    .query(table.clone())
                    .filter(eq(column, value.clone()))
                    .run()
                    .map(|r| r.rows().clone()),
                Request::Range {
                    table,
                    column,
                    lo,
                    hi,
                } => db
                    .query(table.clone())
                    .filter(between(column, lo.clone(), hi.clone()))
                    .run()
                    .map(|r| r.rows().clone()),
                Request::Query(_) => db
                    .query("sales")
                    .filter(between("amount", 10, 90))
                    .join("customers", on("cust", "id"))
                    .group_by("region", sum("amount"))
                    .run()
                    .map(|r| r.rows().clone()),
            })
            .collect()
    }

    #[test]
    fn run_batch_coalesces_and_demuxes_in_submission_order() {
        let db = catalog();
        let server = BatchServer::with_options(&db, ServeOptions::default());
        assert_eq!(server.run_batch(&requests()), reference(&db));
        // An empty batch answers nothing.
        assert!(server.run_batch(&[]).is_empty());
    }

    #[test]
    fn errors_fail_only_their_own_requests() {
        let db = catalog();
        let server = BatchServer::with_options(&db, ServeOptions::default());
        let batch = vec![
            Request::point("sales", "cust", 3i64),
            Request::point("sales", "nope", 1i64), // unknown column
            Request::range("sales", "cust", 0i64, 5i64), // hash-only: no ordered index
            Request::point("sales", "cust", 14i64),
        ];
        let answers = server.run_batch(&batch);
        assert!(answers[0].is_ok());
        assert_eq!(
            answers[1],
            Err(MmdbError::UnknownColumn {
                table: "sales".into(),
                column: "nope".into()
            })
        );
        assert_eq!(
            answers[2],
            Err(MmdbError::NoOrderedIndex {
                table: "sales".into(),
                column: "cust".into()
            })
        );
        assert!(answers[3].is_ok(), "same coalesced group as request 0");
    }

    #[test]
    fn concurrent_sessions_form_batches_and_answer_identically() {
        let db = catalog();
        let reference = reference(&db);
        for batch_max in [1usize, 4, 64] {
            let server = BatchServer::with_options(
                &db,
                ServeOptions {
                    batch_max,
                    batch_wait: Duration::from_millis(2),
                },
            );
            // Each client pipelines the full request set; every answer
            // must match the per-request reference.
            let (answers, stats) = server.serve_concurrent(6, |_, client| {
                let pending: Vec<_> = requests().into_iter().map(|r| client.submit(r)).collect();
                pending.into_iter().map(Pending::wait).collect::<Vec<_>>()
            });
            for (client_idx, client_answers) in answers.iter().enumerate() {
                assert_eq!(
                    client_answers, &reference,
                    "client {client_idx} batch_max={batch_max}"
                );
            }
            assert_eq!(stats.requests, 6 * requests().len());
            assert!(stats.windows >= 1);
            assert!(stats.largest_window <= batch_max.max(1));
            if batch_max == 1 {
                assert_eq!(stats.windows, stats.requests, "no coalescing at 1");
            }
        }
    }

    #[test]
    fn serves_a_sharded_engine_through_the_same_surface() {
        let mut sdb = ShardedDatabase::hash(3).unwrap();
        let db = catalog();
        sdb.register(db.table("sales").unwrap().clone(), "cust")
            .unwrap();
        sdb.register(db.table("customers").unwrap().clone(), "id")
            .unwrap();
        sdb.create_index("sales", "cust", IndexKind::Hash).unwrap();
        sdb.create_index("sales", "amount", IndexKind::FullCss)
            .unwrap();
        sdb.create_index("customers", "id", IndexKind::LevelCss)
            .unwrap();
        let server = BatchServer::with_options(&sdb, ServeOptions::batch_max(8));
        let (answers, _) = server.serve_concurrent(4, |_, client| {
            requests()
                .into_iter()
                .map(|r| client.call(r))
                .collect::<Vec<_>>()
        });
        let reference = reference(&db);
        for client_answers in &answers {
            assert_eq!(client_answers, &reference, "sharded == unsharded");
        }
    }

    #[test]
    fn group_only_and_forced_kind_specs_replay() {
        let db = catalog();
        let server = BatchServer::with_options(&db, ServeOptions::default());
        let spec = QuerySpec::table("sales")
            .filter(eq("cust", 3))
            .using(IndexKind::Hash);
        let got = server.run_batch(&[Request::query(spec)]);
        let want = db
            .query("sales")
            .filter(eq("cust", 3))
            .using(IndexKind::Hash)
            .run()
            .unwrap();
        assert_eq!(got[0], Ok(want.rows().clone()));
        let spec = QuerySpec::table("customers").group_by("region", count());
        let got = server.run_batch(&[spec.into()]);
        let want = db
            .query("customers")
            .group_by("region", count())
            .run()
            .unwrap();
        assert_eq!(got[0], Ok(want.rows().clone()));
    }

    #[test]
    fn serve_options_env_knobs_parse_strictly() {
        // Under a clean environment both constructors agree and floors
        // hold (the parse rule itself is unit-tested in mmdb).
        let opts = ServeOptions::from_env();
        assert!(opts.batch_max >= 1);
        assert_eq!(ServeOptions::try_from_env().expect("parsable env"), opts);
        let floored = ServeOptions {
            batch_max: 0,
            batch_wait: Duration::ZERO,
        }
        .normalized();
        assert_eq!(floored.batch_max, 1, "a window holds at least one request");
        assert_eq!(
            floored.batch_wait,
            Duration::ZERO,
            "zero wait is meaningful"
        );
    }

    #[test]
    fn zero_clients_and_zero_wait_sessions_terminate() {
        let db = catalog();
        let server = BatchServer::with_options(
            &db,
            ServeOptions {
                batch_max: 4,
                batch_wait: Duration::ZERO,
            },
        );
        let (answers, stats) =
            server.serve_concurrent::<(), _>(0, |_, _| unreachable!("no clients"));
        assert!(answers.is_empty());
        assert_eq!(
            (stats.windows, stats.requests, stats.largest_window),
            (0, 0, 0)
        );
        // The snapshot counters still report the catalog's state: the
        // test catalog committed one generation per register/index call.
        assert_eq!(stats.snapshot.generation, 5);
        assert_eq!(stats.snapshot.pinned, 0, "no window pinned anything");
        // Zero wait still answers everything (windows just close early).
        let (answers, stats) = server.serve_concurrent(2, |_, client| {
            client.call(Request::point("sales", "cust", 3i64))
        });
        assert_eq!(answers[0], answers[1]);
        assert_eq!(stats.requests, 2);
        let rows = answers[0].clone().unwrap();
        assert_eq!(
            rows,
            ResultRows::Rids(
                db.query("sales")
                    .filter(eq("cust", Value::Int(3)))
                    .run()
                    .unwrap()
                    .rids()
                    .to_vec()
            )
        );
    }

    #[test]
    fn shutdown_flushes_every_queued_request() {
        // Clients pipeline a burst of submissions and retire immediately
        // — the queue closes while (almost) all of them are still
        // queued. The serving loop must flush the backlog through its
        // windows, answering every ticket; none may be dropped.
        let db = catalog();
        let per_client = 50;
        let clients = 2;
        let server = BatchServer::with_options(
            &db,
            ServeOptions {
                batch_max: 8,
                batch_wait: Duration::ZERO,
            },
        );
        let (answers, stats) = server.serve_concurrent(clients, |_, client| {
            // Submit everything before waiting on anything: when this
            // closure returns the client retires, and the last client
            // closes the queue with requests still in flight.
            let pending: Vec<_> = (0..per_client)
                .map(|i| client.submit(Request::point("sales", "cust", (i % 20) as i64)))
                .collect();
            pending.into_iter().map(Pending::wait).collect::<Vec<_>>()
        });
        assert_eq!(stats.requests, clients * per_client, "nothing dropped");
        let want: Vec<_> = (0..per_client)
            .map(|i| {
                db.query("sales")
                    .filter(eq("cust", (i % 20) as i64))
                    .run()
                    .map(|r| r.rows().clone())
            })
            .collect();
        for client_answers in &answers {
            assert_eq!(client_answers, &want);
        }
    }

    #[test]
    fn windows_serve_pinned_snapshots_while_a_writer_commits() {
        // The tentpole shape: the serving session runs over a reader
        // handle on one thread while the catalog owner keeps committing
        // replace_column cycles. Every answer must equal the probe's
        // result against *some* committed generation — and since 'cust'
        // never changes, answers here must be byte-stable throughout.
        let mut db = catalog();
        let handle = db.handle();
        let want = db.query("sales").filter(eq("cust", 3)).run().unwrap();
        let want = ResultRows::Rids(want.rids().to_vec());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| {
                let server = BatchServer::with_options(&handle, ServeOptions::batch_max(8));
                server.serve_concurrent(4, |_, client| {
                    (0..100)
                        .map(|_| client.call(Request::point("sales", "cust", 3i64)))
                        .collect::<Vec<_>>()
                })
            });
            // Writer: keep committing new 'amount' generations until the
            // serving session finishes.
            let mut toggle = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                toggle += 1;
                let values: Vec<Value> = (0..60).map(|i| Value::Int((i + toggle) % 100)).collect();
                db.replace_column("sales", "amount", values).unwrap();
                if server_thread.is_finished() {
                    stop.store(true, std::sync::atomic::Ordering::Release);
                }
            }
            let (answers, stats) = server_thread.join().expect("serving thread");
            stop.store(true, std::sync::atomic::Ordering::Release);
            for client_answers in &answers {
                for a in client_answers {
                    assert_eq!(a.as_ref().unwrap(), &want, "torn or stale read");
                }
            }
            assert_eq!(stats.requests, 400);
            assert!(
                stats.snapshot.generation > 5,
                "the writer committed generations during the session: {}",
                stats.snapshot.generation
            );
            assert_eq!(stats.snapshot.pinned, 0, "window snapshots all dropped");
        });
    }

    #[test]
    fn stats_explain_surfaces_snapshot_observability() {
        let mut db = catalog();
        db.replace_column(
            "sales",
            "amount",
            (0..60).map(|i| Value::Int(i % 7)).collect(),
        )
        .unwrap();
        let server = BatchServer::with_options(&db, ServeOptions::batch_max(4));
        let (_, stats) = server.serve_concurrent(2, |_, client| {
            client.call(Request::point("sales", "cust", 3i64))
        });
        assert_eq!(stats.snapshot.generation, db.generation());
        assert_eq!(stats.snapshot.swaps, db.swap_count());
        let text = stats.explain();
        assert!(text.contains("served 2 request(s)"), "{text}");
        assert!(
            text.contains(&format!("catalog generation {}", db.generation())),
            "{text}"
        );
        assert!(text.contains("0 pinned snapshot(s)"), "{text}");
        assert!(
            text.contains(&format!(
                "queue depth {} at last close, high-water {}",
                stats.queue_depth, stats.queue_depth_high_water
            )),
            "{text}"
        );
    }

    #[test]
    fn queue_depth_gauge_tracks_backlog() {
        // One client floods 200 pipelined submissions before waiting on
        // any of them; the serving thread must execute a full window
        // (snapshot pin + pool dispatch) per pop, so the queue backs up
        // and the high-water gauge observes it. By the final window the
        // backlog has fully drained.
        let db = catalog();
        let server = BatchServer::with_options(
            &db,
            ServeOptions {
                batch_max: 4,
                batch_wait: Duration::ZERO,
            },
        );
        let (answers, stats) = server.serve_concurrent(1, |_, client| {
            let pending: Vec<_> = (0..200)
                .map(|i| client.submit(Request::point("sales", "cust", (i % 20) as i64)))
                .collect();
            pending.into_iter().map(Pending::wait).collect::<Vec<_>>()
        });
        assert!(answers[0].iter().all(Result::is_ok));
        assert_eq!(stats.requests, 200);
        assert!(
            stats.queue_depth_high_water >= 1,
            "a flood of pipelined submissions must back the queue up: {stats:?}"
        );
        assert_eq!(
            stats.queue_depth, 0,
            "the last window drains the backlog: {stats:?}"
        );
        // The windowless core never touches a queue.
        let direct = BatchServer::with_options(&db, ServeOptions::default());
        direct.run_batch(&requests());
    }
}
