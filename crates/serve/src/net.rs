//! The network entry point: [`ShardServer`] fronts **one** shard — a
//! whole [`Database`] — behind a [`TcpListener`] speaking the
//! `ccindex-wire` protocol, so a `ShardedDatabase` coordinator can run
//! its scatter-gather over `RemoteShard` clients instead of in-process
//! catalogs.
//!
//! The serving discipline mirrors the in-process split the engine
//! already has:
//!
//! * **reads** (probe batches, selections, join fan-out, group
//!   partials, value decodes, plan compilation) run against a pinned
//!   [`Snapshot`](mmdb::Snapshot) from a lock-free
//!   [`DatabaseHandle`](mmdb::DatabaseHandle) — every request answers
//!   from one committed generation and never waits on a writer;
//! * **mutations** (register/drop, index admin, column replacement)
//!   serialize through a `Mutex<Database>` and publish a new generation
//!   through the same commit slot the handle reads.
//!
//! Both sides dispatch through the *same* `catalog_*` helpers the
//! in-process `LocalShard` uses (see `ccindex_shard`), which is what
//! makes distributed answers byte-identical by construction. One thread
//! per connection, blocking `std::net` I/O, no async runtime. Every
//! socket failure is contained to its connection; a request that fails
//! engine-side answers with the same typed
//! [`MmdbError`](mmdb::MmdbError) the operation would have raised
//! in-process, carried in [`ShardResponse::Err`].

use crate::request::{QuerySpec, Request};
use crate::server::{BatchServer, ServeOptions};
use ccindex_obs as obs;
use ccindex_parallel::sync::Arc as MetricArc;
use ccindex_shard::{
    catalog_column_values, catalog_columns, catalog_compile, catalog_group_partial,
    catalog_join_probe_batch, catalog_select,
};
use ccindex_wire::{self as wire, OneRequest, ShardRequest, ShardResponse, Spec};
use mmdb::plan::{Plan, ProbeStep};
use mmdb::{Database, DatabaseHandle, MmdbError, Result, TableBuilder};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// State shared between the owning [`ShardServer`], the accept loop,
/// and every connection thread.
struct Shared {
    /// The mutation side: one writer at a time, commits publish through
    /// the engine's commit slot.
    db: Mutex<Database>,
    /// The read side: lock-free pinned snapshots of the committed tip.
    handle: DatabaseHandle,
    /// Set once; the accept loop and shutdown paths observe it.
    stop: AtomicBool,
    /// The bound address, for the shutdown self-connect.
    addr: SocketAddr,
    /// One tracked clone per live connection, so shutdown/kill can
    /// sever blocked readers.
    conns: Mutex<Vec<TcpStream>>,
    /// Connection threads, joined on shutdown.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The server's metric registry — scraped over the wire by
    /// [`ShardRequest::Stats`], shared with the `BatchServer` that
    /// executes [`ShardRequest::ExecuteBatch`] windows.
    registry: MetricArc<obs::Registry>,
    /// `server.requests` — framed requests answered.
    requests: MetricArc<obs::Counter>,
    /// `server.execute.ns` — per-request engine execution time.
    execute_ns: MetricArc<obs::Histogram>,
    /// The committed tip serialized once per generation for snapshot
    /// transfer: `(generation, store bytes)`. Chunked `FetchSnapshot`
    /// requests stream off this cache, so a multi-chunk transfer stays
    /// internally consistent even when mutations commit mid-stream, and
    /// queries never contend with it (reads pin through the lock-free
    /// handle, not this mutex).
    snapshot_cache: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
    /// Reassembly state of an inbound `InstallSnapshotChunk` sequence.
    install_buf: Mutex<Option<InstallBuf>>,
}

/// An in-progress inbound snapshot transfer: chunks must arrive in
/// order on one connection; the final chunk installs the catalog.
struct InstallBuf {
    total_chunks: u32,
    next: u32,
    bytes: Vec<u8>,
}

impl Shared {
    /// Ask the accept loop to exit: raise the flag, then self-connect so
    /// a blocked `accept` returns and observes it.
    fn begin_stop(&self) {
        // ORDERING: Release pairs with the accept loop's Acquire load so
        // everything written before the stop request is visible there;
        // the flag itself is a one-way latch, so no stronger order is
        // needed.
        self.stop.store(true, Ordering::Release);
        // A failed self-connect means the listener is already gone —
        // the accept loop has nothing left to unblock.
        drop(TcpStream::connect(self.addr));
    }

    /// Sever every tracked connection so blocked `read_request` calls
    /// return errors and their threads exit.
    fn sever(&self) {
        let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for conn in conns.iter() {
            // An already-closed peer is fine; severing is idempotent.
            drop(conn.shutdown(Shutdown::Both));
        }
    }
}

/// A TCP server fronting one shard's [`Database`]: the remote half of
/// the transport-generic scatter-gather (`RemoteShard` is the client
/// half). Binds loopback by default; [`ShardServer::addr`] is what a
/// coordinator passes to `ShardedDatabase::connect`.
///
/// ```
/// use ccindex_serve::ShardServer;
/// use ccindex_shard::{HashPartitioner, ShardedDatabase};
/// use mmdb::{eq, Database, IndexKind, TableBuilder};
///
/// // Two shard servers, each fronting an (initially empty) catalog.
/// let servers: Vec<ShardServer> = (0..2)
///     .map(|_| ShardServer::spawn(Database::new()))
///     .collect::<Result<_, _>>()?;
/// let addrs: Vec<String> = servers.iter().map(ShardServer::addr).collect();
///
/// // The coordinator registers through the same surface as in-process.
/// let mut db = ShardedDatabase::connect(HashPartitioner::new(2)?, &addrs)?;
/// db.register(
///     TableBuilder::new("sales")
///         .int_column("cust", [1, 2, 1, 3])
///         .build()?,
///     "cust",
/// )?;
/// db.create_index("sales", "cust", IndexKind::Hash)?;
/// assert_eq!(
///     db.query("sales").filter(eq("cust", 1)).run()?.rids(),
///     &[0, 2]
/// );
/// for server in servers {
///     server.shutdown();
/// }
/// # Ok::<(), mmdb::MmdbError>(())
/// ```
pub struct ShardServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ShardServer {
    /// Serve `db` on an OS-assigned loopback port.
    pub fn spawn(db: Database) -> Result<Self> {
        Self::bind(db, "127.0.0.1:0")
    }

    /// Serve `db` on an explicit address.
    pub fn bind(db: Database, bind_addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(bind_addr).map_err(|e| MmdbError::Transport {
            endpoint: bind_addr.to_owned(),
            fault: mmdb::TransportFault::Connect,
            detail: format!("bind: {e}"),
            attempts: 0,
            elapsed_ms: 0,
        })?;
        let addr = listener.local_addr().map_err(|e| MmdbError::Transport {
            endpoint: bind_addr.to_owned(),
            fault: mmdb::TransportFault::Connect,
            detail: format!("local_addr: {e}"),
            attempts: 0,
            elapsed_ms: 0,
        })?;
        let registry = MetricArc::new(obs::Registry::new());
        let shared = Arc::new(Shared {
            handle: db.handle(),
            db: Mutex::new(db),
            stop: AtomicBool::new(false),
            addr,
            conns: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            requests: registry.counter("server.requests"),
            execute_ns: registry.histogram("server.execute.ns"),
            registry,
            snapshot_cache: Mutex::new(None),
            install_buf: Mutex::new(None),
        });
        let accept = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || accept_loop(&listener, &shared)
        });
        Ok(Self {
            shared,
            accept: Some(accept),
        })
    }

    /// The served address, `host:port` — what `RemoteShard::connect`
    /// and `ShardedDatabase::connect` take.
    pub fn addr(&self) -> String {
        self.shared.addr.to_string()
    }

    /// The served socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metric registry (`server.*` names, plus the
    /// `serve.*` window metrics of remote `ExecuteBatch` windows) —
    /// what a [`ShardRequest::Stats`] scrape renders to JSON.
    pub fn registry(&self) -> &MetricArc<obs::Registry> {
        &self.shared.registry
    }

    /// Stop serving: no new connections, existing connections severed,
    /// every server thread joined. In-flight requests either finish
    /// their response write or their client sees a typed transport
    /// error — never a hang.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Abruptly sever the server mid-flight — the failure-injection
    /// twin of [`ShardServer::shutdown`], for exercising the
    /// coordinator's typed [`MmdbError::Transport`] path. (Over
    /// loopback both paths sever the same way; the distinct name keeps
    /// call sites honest about intent.)
    pub fn kill(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.begin_stop();
        self.shared.sever();
        if let Some(accept) = self.accept.take() {
            // A panicked server thread is a bug, but the caller is
            // already tearing down; swallowing the panic here would
            // hide it, so propagate.
            accept.join().expect("shard server accept thread panicked");
        }
        let workers = std::mem::take(
            &mut *self
                .shared
                .workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for worker in workers {
            worker
                .join()
                .expect("shard server connection thread panicked");
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

/// Accept until stopped. Each accepted connection gets its own thread;
/// a failed accept is retried unless the stop flag is up (the shutdown
/// self-connect lands here too, and is discarded by the stop check).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let accepted = listener.accept();
        // ORDERING: Acquire pairs with begin_stop's Release store; after
        // observing the latch this thread only returns, so Acquire is
        // already more than it strictly needs.
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        // Best-effort: probes are small request/response pairs.
        drop(stream.set_nodelay(true));
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let worker = std::thread::spawn({
            let shared = Arc::clone(shared);
            move || serve_conn(&stream, &shared)
        });
        shared
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(worker);
    }
}

/// One connection's request/response loop. A read error means the
/// client hung up (or shutdown severed us) — the thread exits quietly;
/// the connection carries no state a coordinator could lose. A write
/// error likewise ends the connection: the client's own read fails
/// typed on its side.
///
/// When a request frame carries a span id (protocol v2 trace field),
/// the server opens a span under that id, times decode and execute as
/// children, and ships the finished tree back in the response frame —
/// the client grafts it under its own span for one cross-process
/// latency tree.
fn serve_conn(stream: &TcpStream, shared: &Arc<Shared>) {
    let endpoint = match stream.peer_addr() {
        Ok(peer) => peer.to_string(),
        Err(_) => "peer".to_owned(),
    };
    loop {
        let (trace, payload) = match wire::read_frame_traced(&mut &*stream, &endpoint) {
            Ok(frame) => frame,
            Err(
                e @ MmdbError::Transport {
                    fault: mmdb::TransportFault::Version,
                    ..
                },
            ) => {
                // Version negotiation is explicit refusal: best-effort
                // ship the typed error (naming both versions) back
                // before hanging up. A peer too old to parse this frame
                // still raises its own Version error from our frame
                // header, so the skew is named on both sides.
                drop(wire::write_response_traced(
                    &mut &*stream,
                    &endpoint,
                    &ShardResponse::Err(e),
                    None,
                ));
                return;
            }
            Err(_) => return,
        };
        let span_id = match trace.len() {
            0 => 0,
            8 => u64::from_le_bytes(trace[..8].try_into().unwrap_or_default()),
            // A malformed trace is a protocol error; hang up like any
            // other unreadable request.
            _ => return,
        };
        shared.requests.inc();
        let mut span = (span_id != 0).then(|| obs::Span::with_id("server", span_id));
        let decoded = match &mut span {
            Some(span) => span.time("decode", || ShardRequest::decode(&payload, &endpoint)),
            None => ShardRequest::decode(&payload, &endpoint),
        };
        let request = match decoded {
            Ok(request) => request,
            Err(_) => return,
        };
        let stopping = matches!(request, ShardRequest::Shutdown);
        let executing = std::time::Instant::now();
        let response = match &mut span {
            Some(span) => span.time("execute", || respond(shared, request)),
            None => respond(shared, request),
        };
        shared
            .execute_ns
            .record(u64::try_from(executing.elapsed().as_nanos()).unwrap_or(u64::MAX));
        let node = span.map(obs::Span::finish);
        if wire::write_response_traced(&mut &*stream, &endpoint, &response, node.as_ref()).is_err()
        {
            return;
        }
        if stopping {
            shared.begin_stop();
            return;
        }
    }
}

/// `Ok` maps through `f`; `Err` becomes the typed wire error.
fn reply<T>(result: Result<T>, f: impl FnOnce(T) -> ShardResponse) -> ShardResponse {
    match result {
        Ok(value) => f(value),
        Err(e) => ShardResponse::Err(e),
    }
}

/// Execute one request against the shard. Reads pin a snapshot from the
/// lock-free handle and dispatch through the shared `catalog_*`
/// helpers; mutations serialize through the database mutex.
fn respond(shared: &Arc<Shared>, request: ShardRequest) -> ShardResponse {
    use ShardResponse as A;
    match request {
        ShardRequest::Hello => A::Info {
            generation: shared.handle.generation(),
            swaps: shared.handle.swaps(),
            pinned: shared.handle.pinned() as u64,
            exec: shared.handle.snapshot().exec_options(),
        },
        ShardRequest::PointProbeBatch {
            table,
            column,
            values,
        } => reply(
            shared
                .handle
                .snapshot()
                .point_probe_batch(&table, &column, &values),
            A::RidSets,
        ),
        ShardRequest::RangeProbeBatch {
            table,
            column,
            ranges,
        } => reply(
            shared
                .handle
                .snapshot()
                .range_probe_batch(&table, &column, &ranges),
            A::RidSets,
        ),
        ShardRequest::Select {
            table,
            probes,
            exec,
        } => {
            // Rebuild the probes-only plan the coordinator compiled.
            // `ProbeStep::threads` is not carried on the wire; it never
            // changes results, only partitioning, so the shard re-derives
            // it from the plan-wide exec options.
            let plan = Plan {
                table,
                probes: probes
                    .into_iter()
                    .map(|(column, kind, probe)| ProbeStep {
                        column,
                        kind,
                        probe,
                        threads: exec.threads,
                    })
                    .collect(),
                join: None,
                group: None,
                exec,
            };
            reply(catalog_select(&shared.handle.snapshot(), &plan), A::Rids)
        }
        ShardRequest::JoinProbeBatch {
            table,
            column,
            kind,
            values,
            lanes,
            threads,
        } => reply(
            catalog_join_probe_batch(
                &shared.handle.snapshot(),
                &table,
                &column,
                kind,
                &values,
                lanes,
                threads,
            ),
            A::RidSets,
        ),
        ShardRequest::GroupPartial {
            table,
            group_column,
            measure,
            agg,
            rids,
        } => reply(
            catalog_group_partial(
                &shared.handle.snapshot(),
                &table,
                &group_column,
                measure.as_deref(),
                agg,
                rids.as_deref(),
            ),
            A::Groups,
        ),
        ShardRequest::ColumnValues {
            table,
            column,
            rids,
        } => reply(
            catalog_column_values(&shared.handle.snapshot(), &table, &column, rids.as_deref()),
            A::Values,
        ),
        ShardRequest::Columns { table } => {
            reply(catalog_columns(&shared.handle.snapshot(), &table), A::Names)
        }
        ShardRequest::Rows { table } => reply(
            shared.handle.snapshot().table(&table).map(|t| t.rows()),
            |rows| A::Count(rows as u64),
        ),
        ShardRequest::Compile { spec } => {
            reply(catalog_compile(&shared.handle.snapshot(), &spec), A::Plan)
        }
        ShardRequest::RunSpec { spec } => {
            let snapshot = shared.handle.snapshot();
            reply(
                catalog_compile(&snapshot, &spec)
                    .and_then(|plan| Ok(plan.execute_on(&snapshot)?.rows().clone())),
                A::Rows,
            )
        }
        ShardRequest::ExecuteBatch { requests } => {
            let requests: Vec<Request> = requests.into_iter().map(owned_request).collect();
            let server = BatchServer::with_metrics(
                &shared.handle,
                ServeOptions::from_env(),
                MetricArc::clone(&shared.registry),
            );
            A::Batch(server.run_batch(&requests))
        }
        ShardRequest::Register { table, columns } => {
            let mut builder = TableBuilder::new(&table);
            for (name, values) in columns {
                builder = builder.column(&name, values);
            }
            reply(
                builder.build().and_then(|t| lock_db(shared).register(t)),
                |()| A::Unit,
            )
        }
        ShardRequest::DropTable { table } => {
            reply(lock_db(shared).drop_table(&table), |()| A::Unit)
        }
        ShardRequest::CreateIndex {
            table,
            column,
            kind,
        } => reply(lock_db(shared).create_index(&table, &column, kind), |()| {
            A::Unit
        }),
        ShardRequest::DropIndex {
            table,
            column,
            kind,
        } => reply(lock_db(shared).drop_index(&table, &column, kind), |()| {
            A::Unit
        }),
        ShardRequest::ReplaceColumn {
            table,
            column,
            values,
        } => reply(
            lock_db(shared).replace_column(&table, &column, values),
            |r| rebuilt(&r),
        ),
        ShardRequest::RebuildColumn { table, column } => {
            reply(lock_db(shared).rebuild_column(&table, &column), |r| {
                rebuilt(&r)
            })
        }
        ShardRequest::SetExecOptions { exec } => {
            lock_db(shared).set_exec_options(exec);
            A::Unit
        }
        ShardRequest::Stats => A::Stats {
            json: shared.registry.to_json(),
        },
        ShardRequest::FetchSnapshot { chunk } => fetch_snapshot_chunk(shared, chunk),
        ShardRequest::InstallSnapshotChunk {
            chunk,
            total_chunks,
            crc,
            bytes,
        } => install_snapshot_chunk(shared, chunk, total_chunks, crc, &bytes),
        // The connection loop raises the stop flag after this response
        // is on the wire.
        ShardRequest::Shutdown => A::Unit,
    }
}

fn lock_db(shared: &Shared) -> std::sync::MutexGuard<'_, Database> {
    shared.db.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Snapshot transfer chunk size; matches the client side
/// (`ccindex_shard::SNAPSHOT_CHUNK`).
const SNAPSHOT_CHUNK: usize = 4 << 20;

/// A snapshot-transfer protocol violation, typed.
fn transfer_error(fault: mmdb::TransportFault, detail: String) -> ShardResponse {
    ShardResponse::Err(MmdbError::Transport {
        endpoint: "snapshot transfer".to_owned(),
        fault,
        detail,
        attempts: 0,
        elapsed_ms: 0,
    })
}

/// The committed tip as store bytes, serialized at most once per
/// generation. Chunk 0 refreshes the cache against the current tip;
/// later chunks keep streaming the cached generation so one transfer
/// never splices two generations together.
fn snapshot_payload(shared: &Shared, chunk: u32) -> Arc<Vec<u8>> {
    let mut cache = shared
        .snapshot_cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let refresh = match &*cache {
        None => true,
        Some((generation, _)) => chunk == 0 && *generation != shared.handle.generation(),
    };
    if refresh {
        let snapshot = shared.handle.snapshot();
        *cache = Some((
            snapshot.generation(),
            Arc::new(mmdb::catalog_to_bytes(&snapshot)),
        ));
    }
    match &*cache {
        Some((_, bytes)) => Arc::clone(bytes),
        // `refresh` above guarantees the cache is populated.
        None => Arc::new(Vec::new()),
    }
}

/// Answer one `FetchSnapshot` chunk off the serialized committed tip.
fn fetch_snapshot_chunk(shared: &Shared, chunk: u32) -> ShardResponse {
    let bytes = snapshot_payload(shared, chunk);
    let total_chunks = bytes.len().div_ceil(SNAPSHOT_CHUNK).max(1) as u32;
    if chunk >= total_chunks {
        return transfer_error(
            mmdb::TransportFault::Protocol,
            format!("snapshot chunk {chunk} requested; snapshot has {total_chunks} chunk(s)"),
        );
    }
    let start = chunk as usize * SNAPSHOT_CHUNK;
    let end = (start + SNAPSHOT_CHUNK).min(bytes.len());
    let part = bytes[start..end].to_vec();
    ShardResponse::SnapshotChunk {
        chunk,
        total_chunks,
        total_len: bytes.len() as u64,
        crc: wire::crc32(&part),
        bytes: part,
    }
}

/// Accept one `InstallSnapshotChunk`: validate its checksum and
/// sequence position, reassemble, and on the final chunk install the
/// catalog through the engine's ordinary commit cycle. Any violation
/// discards the partial transfer and answers typed.
fn install_snapshot_chunk(
    shared: &Shared,
    chunk: u32,
    total_chunks: u32,
    crc: u32,
    bytes: &[u8],
) -> ShardResponse {
    use ShardResponse as A;
    if total_chunks == 0 || chunk >= total_chunks {
        return transfer_error(
            mmdb::TransportFault::Protocol,
            format!("install chunk {chunk}/{total_chunks} is out of range"),
        );
    }
    if wire::crc32(bytes) != crc {
        return transfer_error(
            mmdb::TransportFault::Checksum,
            format!("install chunk {chunk} failed its payload checksum"),
        );
    }
    let mut buf = shared
        .install_buf
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if chunk == 0 {
        // Chunk 0 begins a transfer, superseding any abandoned one.
        *buf = Some(InstallBuf {
            total_chunks,
            next: 0,
            bytes: Vec::new(),
        });
    }
    let in_sequence = matches!(
        &*buf,
        Some(state) if state.next == chunk && state.total_chunks == total_chunks
    );
    if !in_sequence {
        let detail = match buf.take() {
            Some(state) => format!(
                "install chunk {chunk}/{total_chunks} arrived while expecting chunk {}/{}",
                state.next, state.total_chunks
            ),
            None => format!("install chunk {chunk}/{total_chunks} arrived with no transfer open"),
        };
        return transfer_error(mmdb::TransportFault::Protocol, detail);
    }
    let finished = {
        // `in_sequence` proved the buffer holds an open transfer.
        let Some(state) = buf.as_mut() else {
            return transfer_error(
                mmdb::TransportFault::Protocol,
                "install buffer vanished mid-transfer".to_owned(),
            );
        };
        state.bytes.extend_from_slice(bytes);
        state.next += 1;
        state.next == state.total_chunks
    };
    if !finished {
        return A::Unit;
    }
    let assembled = match buf.take() {
        Some(state) => state.bytes,
        None => Vec::new(),
    };
    drop(buf);
    reply(
        lock_db(shared).restore_from_bytes(&assembled, "snapshot transfer"),
        |()| A::Unit,
    )
}

fn rebuilt(report: &mmdb::RebuildReport) -> ShardResponse {
    ShardResponse::Rebuilt {
        sort_ns: report.sort_time.as_nanos() as u64,
        rebuilds: report
            .rebuilds
            .iter()
            .map(|(kind, d)| (*kind, d.as_nanos() as u64))
            .collect(),
    }
}

/// Lift a wire request into the serving front-end's owned vocabulary.
fn owned_request(request: OneRequest) -> Request {
    match request {
        OneRequest::Point {
            table,
            column,
            value,
        } => Request::Point {
            table,
            column,
            value,
        },
        OneRequest::Range {
            table,
            column,
            lo,
            hi,
        } => Request::Range {
            table,
            column,
            lo,
            hi,
        },
        OneRequest::Query(spec) => Request::Query(owned_spec(spec)),
    }
}

fn owned_spec(spec: Spec) -> QuerySpec {
    QuerySpec {
        table: spec.table,
        filters: spec.filters,
        join: spec.join,
        group: spec.group,
        forced_kind: spec.forced_kind,
        exec: spec.exec,
    }
}
