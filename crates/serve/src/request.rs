//! What a client asks the serving front-end: cheap, owned request
//! values that outlive the borrow-based [`Query`](mmdb::Query) builder.
//!
//! The engine's builders borrow their catalog, which is exactly wrong
//! for a request that crosses a thread boundary into a batch-formation
//! window. [`Request`] and [`QuerySpec`] are the owned mirror: the same
//! declarative vocabulary ([`eq`](mmdb::eq)/[`between`](mmdb::between)
//! predicates, [`on`](mmdb::on) join conditions,
//! [`sum`](mmdb::sum)-style aggregates), resolved against a catalog only
//! when the window executes.

use mmdb::{Agg, ExecOptions, IndexKind, JoinOn, Predicate, Value};

/// An owned, engine-agnostic query description — the
/// [`Query`](mmdb::Query) builder surface (`filter`/`join`/`group_by`/
/// `using`) without the catalog borrow, so it can be queued, shipped
/// across threads, and replayed against a [`Database`](mmdb::Database)
/// or a [`ShardedDatabase`](ccindex_shard::ShardedDatabase) alike.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub(crate) table: String,
    pub(crate) filters: Vec<Predicate>,
    pub(crate) join: Option<(String, JoinOn)>,
    pub(crate) group: Option<(String, Agg)>,
    pub(crate) forced_kind: Option<IndexKind>,
    pub(crate) exec: Option<ExecOptions>,
}

impl QuerySpec {
    /// A query over `table`, initially selecting every row.
    pub fn table(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            filters: Vec::new(),
            join: None,
            group: None,
            forced_kind: None,
            exec: None,
        }
    }

    /// Add a conjunct; multiple filters AND together, exactly like
    /// [`Query::filter`](mmdb::Query::filter).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filters.push(predicate);
        self
    }

    /// Indexed nested-loop join against `inner_table`.
    pub fn join(mut self, inner_table: &str, condition: JoinOn) -> Self {
        self.join = Some((inner_table.to_owned(), condition));
        self
    }

    /// Group the result by `column` and aggregate each group.
    pub fn group_by(mut self, column: &str, agg: Agg) -> Self {
        self.group = Some((column.to_owned(), agg));
        self
    }

    /// Force every probe through one [`IndexKind`].
    pub fn using(mut self, kind: IndexKind) -> Self {
        self.forced_kind = Some(kind);
        self
    }

    /// Override the execution options for this request only, exactly
    /// like [`Query::exec`](mmdb::Query::exec).
    pub fn exec(mut self, options: ExecOptions) -> Self {
        self.exec = Some(options);
        self
    }
}

/// One client request, submitted through a [`Client`](crate::Client)
/// handle and answered with [`ResultRows`](mmdb::ResultRows).
///
/// Point and range probes are the coalescible shapes: requests for the
/// same `table.column` arriving in one batch-formation window merge into
/// a *single* batched index descent
/// (`search_batch`/`lower_bound_batch`). Full [`QuerySpec`]s execute as
/// independent jobs over the shared worker pool.
#[derive(Debug, Clone)]
pub enum Request {
    /// Equality probe: all RIDs where `table.column == value`.
    Point {
        /// Probed table.
        table: String,
        /// Probed (indexed) column.
        column: String,
        /// The probe constant.
        value: Value,
    },
    /// Inclusive range probe: all RIDs where `lo <= table.column <= hi`
    /// (requires an ordered index; an inverted range matches nothing).
    Range {
        /// Probed table.
        table: String,
        /// Probed (ordered-indexed) column.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// A full query-builder plan (selection/join/group-by).
    Query(QuerySpec),
}

impl Request {
    /// Equality probe on `table.column`.
    pub fn point(table: &str, column: &str, value: impl Into<Value>) -> Self {
        Request::Point {
            table: table.to_owned(),
            column: column.to_owned(),
            value: value.into(),
        }
    }

    /// Inclusive range probe on `table.column`.
    pub fn range(table: &str, column: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Request::Range {
            table: table.to_owned(),
            column: column.to_owned(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// A full composed query.
    pub fn query(spec: QuerySpec) -> Self {
        Request::Query(spec)
    }
}

impl From<QuerySpec> for Request {
    fn from(spec: QuerySpec) -> Self {
        Request::Query(spec)
    }
}
