//! The batch-forming server: accumulate concurrent client requests in a
//! size- and time-bounded window, coalesce the compatible ones into the
//! engine's native batch shapes, execute over the shared worker pool,
//! and demultiplex per-client answers in submission order.

use crate::engine::{ServeEngine, ServeSource, SnapshotInfo};
use crate::request::{QuerySpec, Request};
use ccindex_obs as obs;
use ccindex_parallel::sync::atomic::{AtomicUsize, Ordering};
use ccindex_parallel::sync::{thread, Arc, Condvar, Instant, Mutex};
use ccindex_parallel::{BlockingQueue, WorkerPool};
use mmdb::{parse_knob, MmdbError, Result, ResultRows};
use std::collections::BTreeMap;
use std::time::Duration;

// ---------------------------------------------------------------------
// Window knobs
// ---------------------------------------------------------------------

/// The batch-formation window bounds, [`ExecOptions`](mmdb::ExecOptions)
/// style: a window closes as soon as it holds [`batch_max`] requests
/// (the size bound) **or** [`batch_wait`] has elapsed since its first
/// request arrived (the time bound), whichever comes first. A waiting
/// request never waits on an empty window — the first arrival opens it.
///
/// `batch_max == 1` disables coalescing entirely: every request is its
/// own window, which is exactly the one-probe-at-a-time baseline the
/// `figures serve` sweep compares against.
///
/// [`batch_max`]: ServeOptions::batch_max
/// [`batch_wait`]: ServeOptions::batch_wait
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Most requests one window may hold (minimum 1).
    pub batch_max: usize,
    /// Longest a window stays open after its first request.
    pub batch_wait: Duration,
}

impl Default for ServeOptions {
    /// A 64-request window held open at most 200 µs — small enough to
    /// stay invisible next to an index descent, large enough to coalesce
    /// a burst of concurrent clients.
    fn default() -> Self {
        Self {
            batch_max: 64,
            batch_wait: Duration::from_micros(200),
        }
    }
}

impl ServeOptions {
    /// A size-only window: up to `batch_max` requests, default wait.
    pub fn batch_max(batch_max: usize) -> Self {
        Self {
            batch_max,
            ..Self::default()
        }
    }

    /// Read the window bounds from the environment — `CCINDEX_BATCH_MAX`
    /// (requests) and `CCINDEX_BATCH_WAIT_US` (microseconds) — failing
    /// with a typed [`MmdbError::InvalidExecOption`] on a set-yet-
    /// unparsable value, exactly like
    /// [`ExecOptions::try_from_env`](mmdb::ExecOptions::try_from_env).
    /// Unset variables fall back to [`ServeOptions::default`]; parsed
    /// values are normalised ([`ServeOptions::normalized`]).
    pub fn try_from_env() -> Result<Self> {
        let default = Self::default();
        let batch_max = env_knob("CCINDEX_BATCH_MAX")?.unwrap_or(default.batch_max);
        let batch_wait = env_knob("CCINDEX_BATCH_WAIT_US")?
            .map(|us| Duration::from_micros(us as u64))
            .unwrap_or(default.batch_wait);
        Ok(Self {
            batch_max,
            batch_wait,
        }
        .normalized())
    }

    /// The infallible twin of [`ServeOptions::try_from_env`]: what
    /// [`BatchServer::new`] uses, so `CCINDEX_BATCH_MAX=16` switches a
    /// whole process's serving windows without a code change (CI runs
    /// the test suite once that way). An unparsable variable logs the
    /// typed error to stderr and only that knob takes its default — the
    /// other, correctly-set knob keeps its configured value.
    pub fn from_env() -> Self {
        let default = Self::default();
        Self {
            batch_max: env_knob_lenient("CCINDEX_BATCH_MAX").unwrap_or(default.batch_max),
            batch_wait: env_knob_lenient("CCINDEX_BATCH_WAIT_US")
                .map(|us| Duration::from_micros(us as u64))
                .unwrap_or(default.batch_wait),
        }
        .normalized()
    }

    /// Apply the knobs' floors: a window must hold at least one request
    /// (`batch_max.max(1)` — the same treatment the engine knobs get). A
    /// zero wait is meaningful (close the window as soon as the queue
    /// runs dry) and passes through.
    pub fn normalized(self) -> Self {
        Self {
            batch_max: self.batch_max.max(1),
            batch_wait: self.batch_wait,
        }
    }
}

fn env_knob(name: &'static str) -> Result<Option<usize>> {
    parse_knob(name, std::env::var(name).ok())
}

/// [`env_knob`] for the infallible path: an unparsable knob logs its
/// typed error to stderr and reads as unset, so only the offending
/// variable falls back to its default.
fn env_knob_lenient(name: &'static str) -> Option<usize> {
    env_knob(name).unwrap_or_else(|e| {
        eprintln!("ccindex: {e}; using the default for {name}");
        None
    })
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// The serving layer's pre-registered metric handles — resolved once at
/// server construction so the hot loop records through plain atomics
/// and never touches the registry lock.
#[derive(Debug, Clone)]
struct ServeMetrics {
    registry: Arc<obs::Registry>,
    /// `serve.window.wait.ns` — how long each window stayed open
    /// forming (first arrival to close).
    window_wait_ns: Arc<obs::Histogram>,
    /// `serve.window.size` — requests coalesced per window.
    window_size: Arc<obs::Histogram>,
    /// `serve.window.exec.ns` — execution time per window.
    window_exec_ns: Arc<obs::Histogram>,
    /// `serve.latency.ns` — per-request end-to-end latency, submit to
    /// answer.
    latency_ns: Arc<obs::Histogram>,
    /// `serve.queue.depth` — backlog at window close (the high-water
    /// mark is the gauge's own).
    queue_depth: Arc<obs::Gauge>,
    /// `serve.windows` — windows executed.
    windows: Arc<obs::Counter>,
    /// `serve.requests` — requests answered.
    requests: Arc<obs::Counter>,
    /// `catalog.generation` — the source's committed generation at last
    /// observation.
    catalog_generation: Arc<obs::Gauge>,
    /// `catalog.swaps` — generations committed so far.
    catalog_swaps: Arc<obs::Gauge>,
    /// `catalog.pinned` — snapshots pinned right now.
    catalog_pinned: Arc<obs::Gauge>,
}

impl ServeMetrics {
    /// Register (or re-resolve) every serving metric on `registry`.
    fn install(registry: Arc<obs::Registry>) -> Self {
        Self {
            window_wait_ns: registry.histogram("serve.window.wait.ns"),
            window_size: registry.histogram("serve.window.size"),
            window_exec_ns: registry.histogram("serve.window.exec.ns"),
            latency_ns: registry.histogram("serve.latency.ns"),
            queue_depth: registry.gauge("serve.queue.depth"),
            windows: registry.counter("serve.windows"),
            requests: registry.counter("serve.requests"),
            catalog_generation: registry.gauge("catalog.generation"),
            catalog_swaps: registry.gauge("catalog.swaps"),
            catalog_pinned: registry.gauge("catalog.pinned"),
            registry,
        }
    }

    /// Mirror the source's commit-slot counters onto the catalog
    /// gauges.
    fn observe_catalog(&self, info: &SnapshotInfo) {
        self.catalog_generation.set(info.generation);
        self.catalog_swaps.set(info.swaps);
        self.catalog_pinned.set(info.pinned as u64);
    }
}

fn elapsed_ns(since: &Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Client handles
// ---------------------------------------------------------------------

/// One queued request plus the slot its answer lands in.
struct Submission {
    request: Request,
    slot: Arc<Slot>,
    /// When the client enqueued it — the start of the end-to-end
    /// latency the server records when the answer is filled.
    submitted: Instant,
}

/// A one-shot response cell: the server fills it once, the client's
/// [`Pending::wait`] blocks until it does.
#[derive(Debug, Default)]
struct Slot {
    result: Mutex<Option<Result<ResultRows>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, result: Result<ResultRows>) {
        let mut guard = self.result.lock().expect("slot lock poisoned");
        *guard = Some(result);
        drop(guard);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ResultRows> {
        let mut guard = self.result.lock().expect("slot lock poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.ready.wait(guard).expect("slot lock poisoned");
        }
    }
}

/// A submitted request's ticket; [`Pending::wait`] blocks until the
/// server has executed the window the request landed in.
#[must_use = "a pending request resolves only through wait()"]
pub struct Pending {
    slot: Arc<Slot>,
}

impl Pending {
    /// Block until the answer arrives.
    pub fn wait(self) -> Result<ResultRows> {
        self.slot.wait()
    }
}

/// A cheap client handle onto a serving session: [`Client::submit`]
/// enqueues without blocking (pipelining — many requests in flight per
/// client makes windows deeper than the client count),
/// [`Client::call`] is the synchronous submit-then-wait round trip.
#[derive(Clone, Copy)]
pub struct Client<'q> {
    queue: &'q BlockingQueue<Submission>,
}

impl Client<'_> {
    /// Enqueue `request` for the next window and return its ticket.
    pub fn submit(&self, request: Request) -> Pending {
        let slot = Arc::new(Slot::default());
        let pending = Pending { slot: slot.clone() };
        let submission = Submission {
            request,
            slot,
            submitted: Instant::now(),
        };
        if self.queue.push(submission).is_err() {
            // The session is shutting down; fail the ticket rather than
            // leaving its owner blocked forever.
            pending.slot.fill(Err(MmdbError::Unsupported {
                what: "batch server session is shut down".into(),
            }));
        }
        pending
    }

    /// Submit and block for the answer — one synchronous round trip.
    pub fn call(&self, request: Request) -> Result<ResultRows> {
        self.submit(request).wait()
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// What a serving session did, for inspection: how many windows formed,
/// how many requests they carried, how deep the deepest window was
/// (`largest_window > 1` is batch formation observably happening), and
/// the source's commit-slot counters at session end — generation number,
/// total swaps, and still-pinned snapshots ([`SnapshotInfo`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Windows executed.
    pub windows: usize,
    /// Requests answered.
    pub requests: usize,
    /// Requests in the deepest window.
    pub largest_window: usize,
    /// Requests still queued when the last window closed — the
    /// session-end reading of the backlog gauge.
    pub queue_depth: usize,
    /// The deepest backlog observed at any window close: clients
    /// submitting faster than windows drain show up here, so a
    /// persistently high value means the window bounds (or the engine)
    /// are the bottleneck, not the clients.
    pub queue_depth_high_water: usize,
    /// The source's snapshot counters, observed when the session ended.
    pub snapshot: SnapshotInfo,
}

impl ServeStats {
    /// Human-readable rendering, `explain()` style: the window shape on
    /// one line, the snapshot observability on the next.
    pub fn explain(&self) -> String {
        format!(
            "served {} request(s) in {} window(s), largest {}\n\
             queue depth {} at last close, high-water {}\n\
             catalog generation {}, {} swap(s), {} pinned snapshot(s)",
            self.requests,
            self.windows,
            self.largest_window,
            self.queue_depth,
            self.queue_depth_high_water,
            self.snapshot.generation,
            self.snapshot.swaps,
            self.snapshot.pinned,
        )
    }
}

/// The batch-formation serving front-end: fronts any [`ServeSource`]
/// (a [`Database`](mmdb::Database), a
/// [`ShardedDatabase`](ccindex_shard::ShardedDatabase), or one of their
/// reader handles) and turns N concurrent client requests into the
/// engine's native batch shapes.
///
/// Same-`table.column` point probes in one window merge into a single
/// [`point_probe_batch`](ServeEngine::point_probe_batch) call (one
/// batched `search_batch`/`lower_bound_batch` descent), range probes
/// likewise; full [`QuerySpec`] requests run as independent jobs. The
/// coalesced jobs execute over a shared
/// [`WorkerPool`](ccindex_parallel::WorkerPool) sized by the engine's
/// [`ExecOptions`](mmdb::ExecOptions), and each answer lands back in its
/// submitter's slot — per-probe results demultiplex in submission order,
/// byte-identical to running every request alone.
///
/// Every window executes against **one pinned snapshot** of the source,
/// taken when the window closes: the probe path holds no lock and takes
/// no `&mut`, concurrent commits never tear a window's answers (all of
/// a window sees one generation), and serving over a
/// [`DatabaseHandle`](mmdb::DatabaseHandle)/
/// [`ShardedHandle`](ccindex_shard::ShardedHandle) lets a writer thread
/// keep committing batch-rebuild cycles at full speed while this server
/// answers probes against the latest committed generation.
pub struct BatchServer<'e, S: ServeSource + ?Sized> {
    source: &'e S,
    options: ServeOptions,
    metrics: ServeMetrics,
}

impl<'e, S: ServeSource + ?Sized> BatchServer<'e, S> {
    /// A server over `source` with window bounds from the environment
    /// ([`ServeOptions::from_env`]) and its own fresh metric registry.
    pub fn new(source: &'e S) -> Self {
        Self::with_options(source, ServeOptions::from_env())
    }

    /// A server over `source` with explicit window bounds and its own
    /// fresh metric registry.
    pub fn with_options(source: &'e S, options: ServeOptions) -> Self {
        Self::with_metrics(source, options, Arc::new(obs::Registry::new()))
    }

    /// A server recording onto a shared registry — pass
    /// [`Registry::disabled`](obs::Registry::disabled) for a
    /// metrics-off control, or a process-wide registry to aggregate
    /// several servers into one scrape.
    pub fn with_metrics(
        source: &'e S,
        options: ServeOptions,
        registry: Arc<obs::Registry>,
    ) -> Self {
        Self {
            source,
            options: options.normalized(),
            metrics: ServeMetrics::install(registry),
        }
    }

    /// The window bounds this server forms batches under.
    pub fn options(&self) -> ServeOptions {
        self.options
    }

    /// The metric registry this server records onto
    /// (`serve.*`/`catalog.*` names; see the README's Observability
    /// section).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.metrics.registry
    }

    /// Execute one already-formed batch synchronously: pin the current
    /// generation, coalesce, run over the pool, and return one answer
    /// per request in submission order. This is the windowless core —
    /// useful directly when the caller already holds a batch (and what
    /// every formed window runs).
    pub fn run_batch(&self, requests: &[Request]) -> Vec<Result<ResultRows>> {
        let refs: Vec<&Request> = requests.iter().collect();
        self.execute(&self.source.pin(), &refs)
    }

    /// Run a serving session: spawn `clients` scoped client threads,
    /// each running `f(client_index, &client)`, while this thread forms
    /// and executes windows until every client has finished and the
    /// queue has drained. Returns the per-client results (in client
    /// order) and the session's [`ServeStats`].
    ///
    /// The hand-off is the blocking
    /// [`BlockingQueue`](ccindex_parallel::BlockingQueue): clients push
    /// submissions from their threads; the serving thread pops the first
    /// request of a window, then drains follow-ups until the size or
    /// time bound closes it.
    pub fn serve_concurrent<R, F>(&self, clients: usize, f: F) -> (Vec<R>, ServeStats)
    where
        R: Send,
        F: Fn(usize, &Client<'_>) -> R + Sync,
    {
        let queue: BlockingQueue<Submission> = BlockingQueue::new();
        let remaining = AtomicUsize::new(clients);
        if clients == 0 {
            queue.close();
        }
        thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let (queue, remaining, f) = (&queue, &remaining, &f);
                    scope.spawn(move || {
                        // Close the queue when the last client retires —
                        // through a drop guard, so a panicking client
                        // still releases the serving loop below.
                        struct Retire<'a> {
                            remaining: &'a AtomicUsize,
                            queue: &'a BlockingQueue<Submission>,
                        }
                        impl Drop for Retire<'_> {
                            fn drop(&mut self) {
                                // ORDERING: AcqRel — each retiring
                                // client Releases its session work into
                                // the counter; the last one (who sees
                                // 1) Acquires all of it before closing
                                // the queue, so the serving loop's
                                // drain observes every push.
                                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                    self.queue.close();
                                }
                            }
                        }
                        let _retire = Retire { remaining, queue };
                        f(i, &Client { queue })
                    })
                })
                .collect();
            let mut stats = self.serve_loop(&queue);
            stats.snapshot = self.source.observe();
            self.metrics.observe_catalog(&stats.snapshot);
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect();
            (results, stats)
        })
    }

    /// Form and execute windows until the queue closes **and drains**:
    /// `BlockingQueue::pop` keeps returning queued submissions after
    /// close, so requests pipelined just before shutdown are flushed
    /// through their windows, never dropped.
    fn serve_loop(&self, queue: &BlockingQueue<Submission>) -> ServeStats {
        let mut stats = ServeStats::default();
        // The first request opens a window; the window then stays open
        // until the size bound fills it or the time bound expires.
        while let Some(first) = queue.pop() {
            let opened = Instant::now();
            let deadline = opened + self.options.batch_wait;
            let mut batch = vec![first];
            while batch.len() < self.options.batch_max {
                match queue.pop_deadline(deadline) {
                    Some(next) => batch.push(next),
                    None => break,
                }
            }
            self.metrics.window_wait_ns.record(elapsed_ns(&opened));
            // The backlog gauge reads at window close: everything queued
            // here waited a full window without being admitted. The
            // registry gauge is the one source; `ServeStats` reads it
            // back below.
            let depth = queue.len();
            self.metrics.queue_depth.set(depth as u64);
            // One pinned generation per window: the whole window answers
            // from it, lock-free, whatever a writer commits meanwhile.
            let snapshot = self.source.pin();
            let refs: Vec<&Request> = batch.iter().map(|s| &s.request).collect();
            let executing = Instant::now();
            let results = self.execute(&snapshot, &refs);
            self.metrics.window_exec_ns.record(elapsed_ns(&executing));
            self.metrics.window_size.record(batch.len() as u64);
            self.metrics.windows.inc();
            self.metrics.requests.add(batch.len() as u64);
            stats.windows += 1;
            stats.requests += batch.len();
            stats.largest_window = stats.largest_window.max(batch.len());
            stats.queue_depth = depth;
            stats.queue_depth_high_water = stats.queue_depth_high_water.max(depth);
            for (submission, result) in batch.into_iter().zip(results) {
                self.metrics
                    .latency_ns
                    .record(elapsed_ns(&submission.submitted));
                submission.slot.fill(result);
            }
        }
        // The queue-depth fields migrated onto the registry gauge; read
        // them back from it so the gauge is the single source (the
        // local fields remain authoritative only when this server runs
        // with a disabled registry, e.g. a metrics-off control).
        if self.metrics.registry.is_enabled() {
            stats.queue_depth = self.metrics.queue_depth.get() as usize;
            stats.queue_depth_high_water = self.metrics.queue_depth.high_water() as usize;
        }
        stats
    }

    /// Coalesce one window's requests into jobs and execute them over
    /// the shared pool. Point (and range) probes naming the same
    /// `table.column` merge into one batched engine call whose per-value
    /// answers demultiplex back to their submission slots; a failed
    /// coalesced call fails every request it carried with the same typed
    /// error.
    fn execute(&self, engine: &S::Pinned, requests: &[&Request]) -> Vec<Result<ResultRows>> {
        enum Job<'r> {
            Points {
                table: &'r str,
                column: &'r str,
                slots: Vec<usize>,
                values: Vec<mmdb::Value>,
            },
            Ranges {
                table: &'r str,
                column: &'r str,
                slots: Vec<usize>,
                ranges: Vec<(mmdb::Value, mmdb::Value)>,
            },
            Query {
                slot: usize,
                spec: &'r QuerySpec,
            },
        }

        let mut jobs: Vec<Job> = Vec::new();
        let mut point_groups: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        let mut range_groups: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for (slot, request) in requests.iter().enumerate() {
            match request {
                Request::Point {
                    table,
                    column,
                    value,
                } => {
                    let at = *point_groups.entry((table, column)).or_insert_with(|| {
                        jobs.push(Job::Points {
                            table,
                            column,
                            slots: Vec::new(),
                            values: Vec::new(),
                        });
                        jobs.len() - 1
                    });
                    let Job::Points { slots, values, .. } = &mut jobs[at] else {
                        unreachable!("point group indexes a Points job");
                    };
                    slots.push(slot);
                    values.push(value.clone());
                }
                Request::Range {
                    table,
                    column,
                    lo,
                    hi,
                } => {
                    let at = *range_groups.entry((table, column)).or_insert_with(|| {
                        jobs.push(Job::Ranges {
                            table,
                            column,
                            slots: Vec::new(),
                            ranges: Vec::new(),
                        });
                        jobs.len() - 1
                    });
                    let Job::Ranges { slots, ranges, .. } = &mut jobs[at] else {
                        unreachable!("range group indexes a Ranges job");
                    };
                    slots.push(slot);
                    ranges.push((lo.clone(), hi.clone()));
                }
                Request::Query(spec) => jobs.push(Job::Query { slot, spec }),
            }
        }

        // One pool job per coalesced group / query. These are fat jobs
        // (each one a whole batched descent or plan execution), so the
        // pool is sized straight from the engine's thread knob — `0`
        // meaning one worker per core, the same reading the sharded
        // scatter gives it.
        let pool = WorkerPool::new(engine.exec_options().threads);
        let answered: Vec<Vec<(usize, Result<ResultRows>)>> = pool.run(jobs.len(), |i| {
            let rids_results = |slots: &[usize], batched: Result<Vec<Vec<u32>>>| match batched {
                Ok(per_probe) => slots
                    .iter()
                    .copied()
                    .zip(per_probe.into_iter().map(|r| Ok(ResultRows::Rids(r))))
                    .collect(),
                Err(e) => slots.iter().map(|&s| (s, Err(e.clone()))).collect(),
            };
            match &jobs[i] {
                Job::Points {
                    table,
                    column,
                    slots,
                    values,
                } => rids_results(slots, engine.point_probe_batch(table, column, values)),
                Job::Ranges {
                    table,
                    column,
                    slots,
                    ranges,
                } => rids_results(slots, engine.range_probe_batch(table, column, ranges)),
                Job::Query { slot, spec } => vec![(*slot, engine.run_spec(spec))],
            }
        });

        let mut out: Vec<Option<Result<ResultRows>>> = (0..requests.len()).map(|_| None).collect();
        for (slot, result) in answered.into_iter().flatten() {
            debug_assert!(out[slot].is_none(), "one answer per request");
            out[slot] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every request slot answered"))
            .collect()
    }
}
